// VL2 (Greenberg et al., SIGCOMM'09): ToRs dual-homed to an aggregation
// layer that forms a complete bipartite graph with intermediate switches.
// §4.2 discusses Singla et al.'s proposal to rewire ToR uplinks across
// both layers; build_vl2 supports both wirings so E5 can price the
// physical consequences.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "topology/graph.h"

namespace pn {

struct vl2_params {
  int tors = 32;
  int aggs = 8;
  int intermediates = 4;
  int tor_uplinks = 2;    // uplinks per ToR
  int hosts_per_tor = 20;
  gbps link_rate{100.0};
  // If true, ToR uplinks are spread across aggregation *and* intermediate
  // switches (Singla et al.'s modification); otherwise ToRs connect only
  // to aggregation switches (classic VL2).
  bool spread_tor_uplinks = false;
  std::uint64_t seed = 1;
};

[[nodiscard]] network_graph build_vl2(const vl2_params& p);

}  // namespace pn
