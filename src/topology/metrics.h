// Abstract graph metrics — the "traditional goodness" measures the paper
// says are necessary but not sufficient. They feed the deployability
// comparison benches (E5/E8) so that physical costs can be shown *next to*
// the abstract wins that made expanders attractive in the first place.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "topology/distance_cache.h"
#include "topology/graph.h"

namespace pn {

// Unweighted hop distances from src to every node; -1 for unreachable.
// This is the adjacency-list reference implementation; the hot paths
// below route through a distance_cache (CSR snapshot + memoized rows),
// which the property suite holds bit-identical to this.
[[nodiscard]] std::vector<int> bfs_distances(const network_graph& g,
                                             node_id src);

[[nodiscard]] bool is_connected(const network_graph& g);

struct path_length_stats {
  double mean = 0.0;       // over ordered host-facing pairs
  int diameter = 0;        // max over host-facing pairs
  double p99 = 0.0;
  std::vector<double> hop_histogram;  // fraction of pairs at each hop count
};

// Shortest-path statistics between host-facing switches (ToR/expander).
// Host pairs are weighted equally (not by host counts). The cache-taking
// overload reuses (and populates) the cache's host-facing rows; the
// plain overload runs against a private cache.
[[nodiscard]] path_length_stats compute_path_length_stats(
    const network_graph& g);
[[nodiscard]] path_length_stats compute_path_length_stats(
    const network_graph& g, distance_cache& cache);

// The shared tail of both the from-scratch and the incremental path-stat
// computations: derive mean/diameter/p99/histogram from an integer
// histogram of pair distances (count[h] = ordered host-facing pairs at
// hop count h; pairs = their total). Keeping one copy of these float
// expressions is what makes incremental_metrics::path_stats()
// bit-identical to compute_path_length_stats by construction.
[[nodiscard]] path_length_stats path_stats_from_hop_counts(
    std::span<const std::uint64_t> count, std::uint64_t pairs);

// Estimate of the second-largest eigenvalue modulus of the degree-
// normalized adjacency matrix via power iteration with deflation of the
// stationary component. Smaller = better expander. Returns 1.0 for a
// disconnected graph.
[[nodiscard]] double spectral_lambda2(const network_graph& g,
                                      int iterations = 200);
[[nodiscard]] double spectral_lambda2(const network_graph& g,
                                      distance_cache& cache,
                                      int iterations = 200);

// Lower-bound estimate of bisection capacity (Gbps) by sampling `trials`
// random balanced bisections seeded from BFS ball growth and taking the
// minimum observed cut; normalized per host in `per_host`.
struct bisection_estimate {
  double cut_gbps = 0.0;
  double per_host_gbps = 0.0;
};
[[nodiscard]] bisection_estimate estimate_bisection(const network_graph& g,
                                                    std::uint64_t seed,
                                                    int trials = 32);
[[nodiscard]] bisection_estimate estimate_bisection(const network_graph& g,
                                                    std::uint64_t seed,
                                                    int trials,
                                                    distance_cache& cache);

}  // namespace pn
