// Path enumeration and disjointness metrics.
//
// Repair planning (§3.3) and physical-SPOF analysis (§3.1) need to know
// not just distances but how many *independent* ways exist between two
// switches: a drain is safe only if enough disjoint capacity remains.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "topology/graph.h"

namespace pn {

using node_path = std::vector<node_id>;  // s ... t inclusive

// Yen's algorithm on the unweighted switch graph: up to k loopless
// shortest paths, ordered by hop count. Returns fewer when the graph has
// fewer distinct paths.
[[nodiscard]] std::vector<node_path> k_shortest_paths(const network_graph& g,
                                                      node_id s, node_id t,
                                                      int k);

// Maximum number of edge-disjoint paths between s and t (Menger): unit-
// capacity max-flow with BFS augmentation. `cap` bounds the search for
// dense graphs.
[[nodiscard]] int edge_connectivity(const network_graph& g, node_id s,
                                    node_id t, int cap = 64);

// Robustness proxy: minimum edge connectivity over `samples` random
// host-facing pairs — how close the fabric is to a partition.
[[nodiscard]] int sampled_min_edge_connectivity(const network_graph& g,
                                                int samples,
                                                std::uint64_t seed);

}  // namespace pn
