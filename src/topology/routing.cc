#include "topology/routing.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "topology/metrics.h"

namespace pn {

link_load_report compute_ecmp_loads(const network_graph& g,
                                    const traffic_matrix& tm) {
  link_load_report out;
  out.loads_ab.assign(g.edge_count(), 0.0);
  out.loads_ba.assign(g.edge_count(), 0.0);

  const auto& eps = tm.endpoints();
  // Map node -> endpoint index (or npos).
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> ep_of_node(g.node_count(), npos);
  for (std::size_t i = 0; i < eps.size(); ++i) {
    ep_of_node[eps[i].index()] = i;
  }

  // Per destination t: BFS distances *to* t, then push flow from all
  // sources toward t, processing nodes in decreasing distance. At each
  // node, outgoing flow splits equally over neighbors one hop closer.
  std::vector<double> inflow(g.node_count());
  for (std::size_t ti = 0; ti < eps.size(); ++ti) {
    const node_id t = eps[ti];
    const std::vector<int> dist = bfs_distances(g, t);

    std::fill(inflow.begin(), inflow.end(), 0.0);
    bool any = false;
    int max_d = 0;
    for (std::size_t si = 0; si < eps.size(); ++si) {
      if (si == ti) continue;
      const double d = tm.demand(si, ti);
      if (d <= 0.0) continue;
      const node_id s = eps[si];
      PN_CHECK_MSG(dist[s.index()] >= 0, "traffic between disconnected nodes");
      inflow[s.index()] += d;
      max_d = std::max(max_d, dist[s.index()]);
      any = true;
    }
    if (!any) continue;

    // Bucket nodes by distance so we can sweep far-to-near.
    std::vector<std::vector<node_id>> by_dist(
        static_cast<std::size_t>(max_d) + 1);
    for (std::size_t u = 0; u < g.node_count(); ++u) {
      const int d = dist[u];
      if (d > 0 && d <= max_d) by_dist[static_cast<std::size_t>(d)].push_back(node_id{u});
    }

    for (std::size_t d = by_dist.size(); d-- > 1;) {
      for (node_id u : by_dist[d]) {
        const double flow = inflow[u.index()];
        if (flow <= 0.0) continue;
        // Count next hops (neighbors one closer to t).
        int nh = 0;
        for (const auto& e : g.neighbors(u)) {
          if (dist[e.neighbor.index()] == static_cast<int>(d) - 1) ++nh;
        }
        PN_CHECK(nh > 0);
        const double share = flow / nh;
        for (const auto& e : g.neighbors(u)) {
          if (dist[e.neighbor.index()] != static_cast<int>(d) - 1) continue;
          const edge_info& info = g.edge(e.edge);
          if (info.a == u) {
            out.loads_ab[e.edge.index()] += share;
          } else {
            out.loads_ba[e.edge.index()] += share;
          }
          inflow[e.neighbor.index()] += share;
        }
      }
    }
  }

  double total = 0.0;
  std::size_t live = 0;
  for (edge_id e : g.live_edges()) {
    const double m = std::max(out.loads_ab[e.index()], out.loads_ba[e.index()]);
    out.max_load = std::max(out.max_load, m);
    total += out.loads_ab[e.index()] + out.loads_ba[e.index()];
    live += 2;
  }
  out.mean_load = live > 0 ? total / static_cast<double>(live) : 0.0;
  return out;
}

namespace {

throughput_result throughput_from_loads(const network_graph& g,
                                        const link_load_report& loads) {
  throughput_result out;
  double min_headroom = std::numeric_limits<double>::infinity();
  double util_sum = 0.0;
  std::size_t util_n = 0;
  for (edge_id e : g.live_edges()) {
    const double cap = g.edge(e).capacity.value();
    PN_CHECK(cap > 0.0);
    for (const double load :
         {loads.loads_ab[e.index()], loads.loads_ba[e.index()]}) {
      const double util = load / cap;
      out.max_utilization = std::max(out.max_utilization, util);
      util_sum += util;
      ++util_n;
      if (load > 0.0) min_headroom = std::min(min_headroom, cap / load);
    }
  }
  out.alpha = std::isinf(min_headroom) ? 0.0 : min_headroom;
  out.mean_utilization =
      util_n > 0 ? util_sum / static_cast<double>(util_n) : 0.0;
  return out;
}

}  // namespace

throughput_result ecmp_throughput(const network_graph& g,
                                  const traffic_matrix& tm) {
  return throughput_from_loads(g, compute_ecmp_loads(g, tm));
}

link_load_report compute_vlb_loads(const network_graph& g,
                                   const traffic_matrix& tm) {
  const std::size_t n = tm.size();
  PN_CHECK(n > 1);
  // Phase 1: every source spreads its total egress uniformly over all
  // intermediates; phase 2: every destination's total ingress arrives
  // uniformly from all intermediates. Both phases are plain ECMP loads of
  // transformed matrices.
  traffic_matrix phase1(tm.endpoints());
  traffic_matrix phase2(tm.endpoints());
  const double share = 1.0 / static_cast<double>(n - 1);
  for (std::size_t s = 0; s < n; ++s) {
    double egress = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      egress += tm.demand(s, t);
    }
    if (egress <= 0.0) continue;
    for (std::size_t w = 0; w < n; ++w) {
      if (w == s) continue;  // bouncing off yourself is a direct send
      phase1.add_demand(s, w, egress * share);
    }
  }
  for (std::size_t t = 0; t < n; ++t) {
    double ingress = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      ingress += tm.demand(s, t);
    }
    if (ingress <= 0.0) continue;
    for (std::size_t w = 0; w < n; ++w) {
      if (w == t) continue;
      phase2.add_demand(w, t, ingress * share);
    }
  }

  const link_load_report a = compute_ecmp_loads(g, phase1);
  const link_load_report b = compute_ecmp_loads(g, phase2);
  link_load_report out;
  out.loads_ab.resize(g.edge_count());
  out.loads_ba.resize(g.edge_count());
  double total = 0.0;
  std::size_t live = 0;
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    out.loads_ab[e] = a.loads_ab[e] + b.loads_ab[e];
    out.loads_ba[e] = a.loads_ba[e] + b.loads_ba[e];
  }
  for (edge_id e : g.live_edges()) {
    out.max_load = std::max(
        out.max_load,
        std::max(out.loads_ab[e.index()], out.loads_ba[e.index()]));
    total += out.loads_ab[e.index()] + out.loads_ba[e.index()];
    live += 2;
  }
  out.mean_load = live > 0 ? total / static_cast<double>(live) : 0.0;
  return out;
}

throughput_result vlb_throughput(const network_graph& g,
                                 const traffic_matrix& tm) {
  return throughput_from_loads(g, compute_vlb_loads(g, tm));
}

throughput_result best_routing_throughput(const network_graph& g,
                                          const traffic_matrix& tm) {
  const throughput_result direct = ecmp_throughput(g, tm);
  const throughput_result vlb = vlb_throughput(g, tm);
  return vlb.alpha > direct.alpha ? vlb : direct;
}

double mean_ecmp_path_count(const network_graph& g, int cap) {
  const auto sources = g.host_facing_nodes();
  PN_CHECK(!sources.empty());
  double total = 0.0;
  std::size_t pairs = 0;

  std::vector<double> count(g.node_count());
  for (node_id s : sources) {
    const auto dist = bfs_distances(g, s);
    std::fill(count.begin(), count.end(), 0.0);
    count[s.index()] = 1.0;

    // Process nodes in BFS-distance order to accumulate path counts.
    int max_d = 0;
    for (int d : dist) max_d = std::max(max_d, d);
    std::vector<std::vector<node_id>> by_dist(
        static_cast<std::size_t>(max_d) + 1);
    for (std::size_t u = 0; u < g.node_count(); ++u) {
      if (dist[u] >= 0) by_dist[static_cast<std::size_t>(dist[u])].push_back(node_id{u});
    }
    for (std::size_t d = 1; d < by_dist.size(); ++d) {
      for (node_id u : by_dist[d]) {
        double c = 0.0;
        for (const auto& e : g.neighbors(u)) {
          if (dist[e.neighbor.index()] == static_cast<int>(d) - 1) {
            c += count[e.neighbor.index()];
          }
        }
        count[u.index()] = std::min(c, static_cast<double>(cap));
      }
    }
    for (node_id t : sources) {
      if (t == s) continue;
      total += count[t.index()];
      ++pairs;
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace pn
