#include "topology/routing.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "topology/metrics.h"

namespace pn {

// Shared tail of every load computation: max/mean over live edges.
void finalize_link_loads(const network_graph& g, link_load_report& out) {
  double total = 0.0;
  std::size_t live = 0;
  for (edge_id e : g.live_edges()) {
    const double m = std::max(out.loads_ab[e.index()], out.loads_ba[e.index()]);
    out.max_load = std::max(out.max_load, m);
    total += out.loads_ab[e.index()] + out.loads_ba[e.index()];
    live += 2;
  }
  out.mean_load = live > 0 ? total / static_cast<double>(live) : 0.0;
}

link_load_report compute_ecmp_loads_reference(const network_graph& g,
                                              const traffic_matrix& tm) {
  link_load_report out;
  out.loads_ab.assign(g.edge_count(), 0.0);
  out.loads_ba.assign(g.edge_count(), 0.0);

  const auto& eps = tm.endpoints();
  // Map node -> endpoint index (or npos).
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> ep_of_node(g.node_count(), npos);
  for (std::size_t i = 0; i < eps.size(); ++i) {
    ep_of_node[eps[i].index()] = i;
  }

  // Per destination t: BFS distances *to* t, then push flow from all
  // sources toward t, processing nodes in decreasing distance. At each
  // node, outgoing flow splits equally over neighbors one hop closer.
  std::vector<double> inflow(g.node_count());
  for (std::size_t ti = 0; ti < eps.size(); ++ti) {
    const node_id t = eps[ti];
    const std::vector<int> dist = bfs_distances(g, t);

    std::fill(inflow.begin(), inflow.end(), 0.0);
    bool any = false;
    int max_d = 0;
    for (std::size_t si = 0; si < eps.size(); ++si) {
      if (si == ti) continue;
      const double d = tm.demand(si, ti);
      if (d <= 0.0) continue;
      const node_id s = eps[si];
      PN_CHECK_MSG(dist[s.index()] >= 0, "traffic between disconnected nodes");
      inflow[s.index()] += d;
      max_d = std::max(max_d, dist[s.index()]);
      any = true;
    }
    if (!any) continue;

    // Bucket nodes by distance so we can sweep far-to-near.
    std::vector<std::vector<node_id>> by_dist(
        static_cast<std::size_t>(max_d) + 1);
    for (std::size_t u = 0; u < g.node_count(); ++u) {
      const int d = dist[u];
      if (d > 0 && d <= max_d) by_dist[static_cast<std::size_t>(d)].push_back(node_id{u});
    }

    for (std::size_t d = by_dist.size(); d-- > 1;) {
      for (node_id u : by_dist[d]) {
        const double flow = inflow[u.index()];
        if (flow <= 0.0) continue;
        // Count next hops (neighbors one closer to t).
        int nh = 0;
        for (const auto& e : g.neighbors(u)) {
          if (dist[e.neighbor.index()] == static_cast<int>(d) - 1) ++nh;
        }
        PN_CHECK(nh > 0);
        const double share = flow / nh;
        for (const auto& e : g.neighbors(u)) {
          if (dist[e.neighbor.index()] != static_cast<int>(d) - 1) continue;
          const edge_info& info = g.edge(e.edge);
          if (info.a == u) {
            out.loads_ab[e.edge.index()] += share;
          } else {
            out.loads_ba[e.edge.index()] += share;
          }
          inflow[e.neighbor.index()] += share;
        }
      }
    }
  }

  finalize_link_loads(g, out);
  return out;
}

link_load_report compute_ecmp_loads(const network_graph& g,
                                    const traffic_matrix& tm) {
  distance_cache cache(g);
  return compute_ecmp_loads(g, tm, cache);
}

// One destination of the CSR ECMP sweep. The structure (far-to-near over
// distance buckets, neighbors in adjacency order) matches
// compute_ecmp_loads_reference exactly, so the float accumulation order —
// and thus every output bit — is identical.
bool accumulate_ecmp_dest_loads(const csr_graph& csr,
                                const std::vector<int>& dist,
                                const traffic_matrix& tm, std::size_t ti,
                                ecmp_dest_scratch& scratch, double* ab,
                                double* ba) {
  const auto& eps = tm.endpoints();
  const std::size_t n = csr.num_nodes;
  scratch.inflow.assign(n, 0.0);
  scratch.order.resize(n);
  double* const inf = scratch.inflow.data();
  const int* const dp = dist.data();
  const std::uint32_t* const offsets = csr.row_offsets.data();
  const std::uint32_t* const row_end = csr.row_end.data();
  const std::uint32_t* const adj = csr.adjacency.data();
  const std::uint32_t* const arc_edge = csr.arc_edge.data();
  const std::uint8_t* const arc_fwd = csr.arc_forward.data();

  bool any = false;
  int max_d = 0;
  for (std::size_t si = 0; si < eps.size(); ++si) {
    if (si == ti) continue;
    const double d = tm.demand(si, ti);
    if (d <= 0.0) continue;
    const node_id s = eps[si];
    PN_CHECK_MSG(dist[s.index()] >= 0, "traffic between disconnected nodes");
    inf[s.index()] += d;
    max_d = std::max(max_d, dist[s.index()]);
    any = true;
  }
  if (!any) return false;

  // Counting sort of nodes at hop 1..max_d into one flat array (the
  // reference buckets into vector<vector>; same node order per bucket,
  // no per-destination allocation churn here).
  std::vector<std::uint32_t>& bucket_start = scratch.bucket_start;
  std::vector<std::uint32_t>& order = scratch.order;
  std::vector<std::uint32_t>& bucket_fill = scratch.bucket_fill;
  std::vector<std::uint32_t>& downhill = scratch.downhill;
  const auto buckets = static_cast<std::size_t>(max_d) + 1;
  bucket_start.assign(buckets + 1, 0);
  for (std::size_t u = 0; u < n; ++u) {
    const int d = dist[u];
    if (d > 0 && d <= max_d) {
      ++bucket_start[static_cast<std::size_t>(d) + 1];
    }
  }
  for (std::size_t b = 1; b <= buckets; ++b) {
    bucket_start[b] += bucket_start[b - 1];
  }
  bucket_fill.assign(bucket_start.begin(), bucket_start.end() - 1);
  for (std::size_t u = 0; u < n; ++u) {
    const int d = dist[u];
    if (d > 0 && d <= max_d) {
      order[bucket_fill[static_cast<std::size_t>(d)]++] =
          static_cast<std::uint32_t>(u);
    }
  }

  for (std::size_t d = buckets; d-- > 1;) {
    const std::uint32_t lo = bucket_start[d];
    const std::uint32_t hi = bucket_start[d + 1];
    const int want = static_cast<int>(d) - 1;
    for (std::uint32_t idx = lo; idx < hi; ++idx) {
      const std::uint32_t u = order[idx];
      const double flow = inf[u];
      if (flow <= 0.0) continue;
      // Gather next-hop arcs (neighbors one closer to t) once; the
      // distribute pass then walks the short buffer instead of
      // re-scanning every arc's distance. Arc order is unchanged.
      downhill.clear();
      const std::uint32_t arc_end = row_end[u];
      for (std::uint32_t k = offsets[u]; k < arc_end; ++k) {
        if (dp[adj[k]] == want) downhill.push_back(k);
      }
      const int nh = static_cast<int>(downhill.size());
      PN_CHECK(nh > 0);
      const double share = flow / nh;
      for (const std::uint32_t k : downhill) {
        const std::uint32_t e = arc_edge[k];
        if (arc_fwd[k] != 0) {
          ab[e] += share;
        } else {
          ba[e] += share;
        }
        inf[adj[k]] += share;
      }
    }
  }
  return true;
}

link_load_report compute_ecmp_loads(const network_graph& g,
                                    const traffic_matrix& tm,
                                    distance_cache& cache) {
  const csr_graph& csr = cache.csr();
  link_load_report out;
  out.loads_ab.assign(g.edge_count(), 0.0);
  out.loads_ba.assign(g.edge_count(), 0.0);

  const auto& eps = tm.endpoints();
  cache.warm_all(eps, 1);  // batched fill of any missing rows

  // Per-destination accumulation into the shared totals, in endpoint
  // order — the scratch state is reused across destinations.
  ecmp_dest_scratch scratch;
  for (std::size_t ti = 0; ti < eps.size(); ++ti) {
    accumulate_ecmp_dest_loads(csr, cache.row(eps[ti]), tm, ti, scratch,
                               out.loads_ab.data(), out.loads_ba.data());
  }

  finalize_link_loads(g, out);
  return out;
}

throughput_result throughput_from_link_loads(const network_graph& g,
                                             const link_load_report& loads) {
  throughput_result out;
  double min_headroom = std::numeric_limits<double>::infinity();
  double util_sum = 0.0;
  std::size_t util_n = 0;
  for (edge_id e : g.live_edges()) {
    const double cap = g.edge(e).capacity.value();
    PN_CHECK(cap > 0.0);
    for (const double load :
         {loads.loads_ab[e.index()], loads.loads_ba[e.index()]}) {
      const double util = load / cap;
      out.max_utilization = std::max(out.max_utilization, util);
      util_sum += util;
      ++util_n;
      if (load > 0.0) min_headroom = std::min(min_headroom, cap / load);
    }
  }
  out.alpha = std::isinf(min_headroom) ? 0.0 : min_headroom;
  out.mean_utilization =
      util_n > 0 ? util_sum / static_cast<double>(util_n) : 0.0;
  return out;
}

throughput_result ecmp_throughput(const network_graph& g,
                                  const traffic_matrix& tm) {
  distance_cache cache(g);
  return ecmp_throughput(g, tm, cache);
}

throughput_result ecmp_throughput(const network_graph& g,
                                  const traffic_matrix& tm,
                                  distance_cache& cache) {
  return throughput_from_link_loads(g, compute_ecmp_loads(g, tm, cache));
}

link_load_report compute_vlb_loads(const network_graph& g,
                                   const traffic_matrix& tm) {
  distance_cache cache(g);
  return compute_vlb_loads(g, tm, cache);
}

link_load_report compute_vlb_loads(const network_graph& g,
                                   const traffic_matrix& tm,
                                   distance_cache& cache) {
  const std::size_t n = tm.size();
  PN_CHECK(n > 1);
  // Phase 1: every source spreads its total egress uniformly over all
  // intermediates; phase 2: every destination's total ingress arrives
  // uniformly from all intermediates. Both phases are plain ECMP loads of
  // transformed matrices (and share the cache's distance rows — the
  // endpoints are the same).
  traffic_matrix phase1(tm.endpoints());
  traffic_matrix phase2(tm.endpoints());
  const double share = 1.0 / static_cast<double>(n - 1);
  for (std::size_t s = 0; s < n; ++s) {
    double egress = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      egress += tm.demand(s, t);
    }
    if (egress <= 0.0) continue;
    for (std::size_t w = 0; w < n; ++w) {
      if (w == s) continue;  // bouncing off yourself is a direct send
      phase1.add_demand(s, w, egress * share);
    }
  }
  for (std::size_t t = 0; t < n; ++t) {
    double ingress = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      ingress += tm.demand(s, t);
    }
    if (ingress <= 0.0) continue;
    for (std::size_t w = 0; w < n; ++w) {
      if (w == t) continue;
      phase2.add_demand(w, t, ingress * share);
    }
  }

  const link_load_report a = compute_ecmp_loads(g, phase1, cache);
  const link_load_report b = compute_ecmp_loads(g, phase2, cache);
  link_load_report out;
  out.loads_ab.resize(g.edge_count());
  out.loads_ba.resize(g.edge_count());
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    out.loads_ab[e] = a.loads_ab[e] + b.loads_ab[e];
    out.loads_ba[e] = a.loads_ba[e] + b.loads_ba[e];
  }
  finalize_link_loads(g, out);
  return out;
}

throughput_result vlb_throughput(const network_graph& g,
                                 const traffic_matrix& tm) {
  distance_cache cache(g);
  return vlb_throughput(g, tm, cache);
}

throughput_result vlb_throughput(const network_graph& g,
                                 const traffic_matrix& tm,
                                 distance_cache& cache) {
  return throughput_from_link_loads(g, compute_vlb_loads(g, tm, cache));
}

throughput_result best_routing_throughput(const network_graph& g,
                                          const traffic_matrix& tm) {
  // Direct and VLB route the same endpoints, so one cache serves both.
  distance_cache cache(g);
  const throughput_result direct = ecmp_throughput(g, tm, cache);
  const throughput_result vlb = vlb_throughput(g, tm, cache);
  return vlb.alpha > direct.alpha ? vlb : direct;
}

double mean_ecmp_path_count(const network_graph& g, int cap) {
  distance_cache cache(g);
  return mean_ecmp_path_count(g, cache, cap);
}

double mean_ecmp_path_count(const network_graph& g, distance_cache& cache,
                            int cap) {
  const auto sources = g.host_facing_nodes();
  PN_CHECK(!sources.empty());
  cache.warm_all(sources, 1);  // batched fill of any missing rows
  const csr_graph& csr = cache.csr();
  const std::size_t n = g.node_count();
  double total = 0.0;
  std::size_t pairs = 0;

  std::vector<double> count(n);
  std::vector<std::uint32_t> bucket_start;
  std::vector<std::uint32_t> order(n);
  std::vector<std::uint32_t> bucket_fill;
  for (node_id s : sources) {
    const std::vector<int>& dist = cache.row(s);
    std::fill(count.begin(), count.end(), 0.0);
    count[s.index()] = 1.0;

    // Process nodes in BFS-distance order to accumulate path counts
    // (counting sort replaces the reference's vector<vector> buckets;
    // node order per distance is unchanged).
    int max_d = 0;
    for (int d : dist) max_d = std::max(max_d, d);
    const auto buckets = static_cast<std::size_t>(max_d) + 1;
    bucket_start.assign(buckets + 1, 0);
    for (std::size_t u = 0; u < n; ++u) {
      if (dist[u] >= 0) ++bucket_start[static_cast<std::size_t>(dist[u]) + 1];
    }
    for (std::size_t b = 1; b <= buckets; ++b) {
      bucket_start[b] += bucket_start[b - 1];
    }
    bucket_fill.assign(bucket_start.begin(), bucket_start.end() - 1);
    for (std::size_t u = 0; u < n; ++u) {
      if (dist[u] >= 0) {
        order[bucket_fill[static_cast<std::size_t>(dist[u])]++] =
            static_cast<std::uint32_t>(u);
      }
    }

    for (std::size_t d = 1; d < buckets; ++d) {
      const std::uint32_t lo = bucket_start[d];
      const std::uint32_t hi = bucket_start[d + 1];
      for (std::uint32_t idx = lo; idx < hi; ++idx) {
        const std::uint32_t u = order[idx];
        double c = 0.0;
        const std::uint32_t arc_end = csr.arc_end(u);
        for (std::uint32_t k = csr.arc_begin(u); k < arc_end; ++k) {
          const std::uint32_t v = csr.adjacency[k];
          if (dist[v] == static_cast<int>(d) - 1) {
            c += count[v];
          }
        }
        count[u] = std::min(c, static_cast<double>(cap));
      }
    }
    for (node_id t : sources) {
      if (t == s) continue;
      total += count[t.index()];
      ++pairs;
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace pn
