#include "topology/distance_cache.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "common/thread_pool.h"

namespace pn {

namespace {

// Per-row repair slack the cache asks of its CSR snapshots: enough for a
// few expansion steps between rebuilds without inflating the arrays.
constexpr std::uint32_t kRowSlack = 4;

// Multi-source BFS over up to 64 sources at once (the MS-BFS idea from
// Then et al. / the batched sweeps in Ligra-style engines): each node
// carries one frontier bit per source, so a level expands all sources
// with one pass over the arcs instead of 64. Distance rows are extracted
// as bits first appear; BFS levels are unique, so every row is identical
// to a single-source run.
void fill_rows_batched(const csr_graph& g,
                       std::span<const std::uint32_t> sources,
                       std::vector<int>** rows) {
  const std::size_t n = g.num_nodes;
  const std::size_t batch = sources.size();
  PN_CHECK(batch >= 1 && batch <= 64);
  for (std::size_t b = 0; b < batch; ++b) {
    rows[b]->assign(n, -1);
    (*rows[b])[sources[b]] = 0;
  }

  std::vector<std::uint64_t> visited(n, 0);
  std::vector<std::uint64_t> current(n, 0);
  std::vector<std::uint64_t> next(n, 0);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::uint64_t bit = std::uint64_t{1} << b;
    visited[sources[b]] |= bit;
    current[sources[b]] |= bit;
  }

  const std::uint32_t* const offsets = g.row_offsets.data();
  const std::uint32_t* const ends = g.row_end.data();
  const std::uint32_t* const adj = g.adjacency.data();
  std::uint64_t* const vis = visited.data();
  std::uint64_t* const cur = current.data();
  std::uint64_t* const nxt = next.data();

  for (int level = 1;; ++level) {
    for (std::size_t u = 0; u < n; ++u) {
      const std::uint64_t m = cur[u];
      if (m == 0) continue;
      const std::uint32_t end = ends[u];
      for (std::uint32_t k = offsets[u]; k < end; ++k) {
        nxt[adj[k]] |= m;
      }
    }
    bool any = false;
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t fresh = nxt[v] & ~vis[v];
      nxt[v] = 0;
      cur[v] = fresh;
      if (fresh == 0) continue;
      any = true;
      vis[v] |= fresh;
      while (fresh != 0) {
        const int b = std::countr_zero(fresh);
        fresh &= fresh - 1;
        (*rows[static_cast<std::size_t>(b)])[v] = level;
      }
    }
    if (!any) break;
  }
}

// Row-survival check: the cached BFS row `d` (from some source s, taken
// at the old epoch) still equals BFS on the *current* graph iff every
// net flip passes its test against the current adjacency:
//
//   up (edge alive now): keep iff |d[a]-d[b]| <= 1 and the edge does not
//     bridge into an unreachable region (exactly one endpoint at -1).
//     Non-tight surviving edges carry no shortcut, so no distance can
//     drop; a one-sided -1 would make new nodes reachable.
//   down (edge dead now): only *tight* edges (|d[a]-d[b]| == 1, both
//     reachable) were possible BFS-tree arcs. Keep iff the far endpoint
//     w still has some live neighbor y with d[y] == d[w]-1 — an
//     alternative parent certifying d[w] by induction on depth. Equal-
//     distance edges never carried the level relation, so their removal
//     cannot change anything.
//
// Both tests evaluate against the final graph only: intermediate states
// inside the window are irrelevant because validity is equality with a
// from-scratch BFS on the final graph (asserted exhaustively by
// tests/property/delta_eval_property_test.cc).
bool row_survives(const std::vector<int>& d,
                  std::span<const edge_flip> flips,
                  const network_graph& g) {
  for (const edge_flip& f : flips) {
    const int da = d[f.a.index()];
    const int db = d[f.b.index()];
    if (da < 0 && db < 0) continue;  // flip entirely inside the dark side
    if (f.alive) {
      if (da < 0 || db < 0) return false;
      if (da - db > 1 || db - da > 1) return false;
    } else {
      const int diff = da - db;
      if (diff != 1 && diff != -1) continue;  // slack edge, never a parent
      const node_id far = diff > 0 ? f.a : f.b;
      const int dfar = diff > 0 ? da : db;
      bool support = false;
      for (const auto& e : g.neighbors(far)) {
        if (d[e.neighbor.index()] == dfar - 1) {
          support = true;
          break;
        }
      }
      if (!support) return false;
    }
  }
  return true;
}

}  // namespace

void bfs_workspace::run(const csr_graph& g, std::uint32_t src,
                        std::vector<int>& dist) {
  // Callers seeded dist: -1 = unseen, -2 = blocked (counts as visited).
  frontier_.clear();
  next_frontier_.clear();
  dist[src] = 0;
  frontier_.push_back(src);

  const std::uint32_t* const offsets = g.row_offsets.data();
  const std::uint32_t* const ends = g.row_end.data();
  const std::uint32_t* const adj = g.adjacency.data();
  int* const d = dist.data();

  for (int level = 1; !frontier_.empty(); ++level) {
    for (const std::uint32_t u : frontier_) {
      const std::uint32_t end = ends[u];
      for (std::uint32_t k = offsets[u]; k < end; ++k) {
        const std::uint32_t v = adj[k];
        if (d[v] != -1) continue;
        d[v] = level;
        next_frontier_.push_back(v);
      }
    }
    frontier_.swap(next_frontier_);
    next_frontier_.clear();
  }
}

void bfs_workspace::distances(const csr_graph& g, std::uint32_t src,
                              std::vector<int>& dist) {
  PN_CHECK(src < g.num_nodes);
  dist.assign(g.num_nodes, -1);
  run(g, src, dist);
}

void bfs_workspace::distances_masked(const csr_graph& g, std::uint32_t src,
                                     std::span<const std::uint8_t> blocked,
                                     std::vector<int>& dist) {
  PN_CHECK(src < g.num_nodes);
  PN_CHECK(blocked.size() >= g.num_nodes);
  dist.assign(g.num_nodes, -1);
  if (blocked[src] != 0) return;
  // Blocked nodes are pre-marked with the visited sentinel: never
  // entered, never labeled, and reported as unreachable (-1) at the end.
  for (std::uint32_t u = 0; u < g.num_nodes; ++u) {
    if (blocked[u] != 0) dist[u] = -2;
  }
  run(g, src, dist);
  for (std::uint32_t u = 0; u < g.num_nodes; ++u) {
    if (dist[u] == -2) dist[u] = -1;
  }
}

distance_cache::distance_cache(const network_graph& g) : g_(&g) {
  csr_ = csr_graph::build(g, kRowSlack);
  rows_.resize(g.node_count());
  row_valid_.assign(g.node_count(), 0);
  row_version_.assign(g.node_count(), 0);
}

void distance_cache::invalidate_all_rows() {
  for (std::size_t u = 0; u < row_valid_.size(); ++u) {
    if (row_valid_[u] == 0) continue;
    row_valid_[u] = 0;
    ++row_version_[u];
  }
  rows_.resize(g_->node_count());
  row_valid_.resize(g_->node_count(), 0);
  row_version_.resize(g_->node_count(), 0);
}

void distance_cache::refresh() {
  if (!csr_.stale(*g_)) return;
  const auto window = g_->deltas_since(csr_.epoch);
  if (!window.has_value()) {
    // Torn journal (compaction or a node add): wholesale fallback.
    csr_ = csr_graph::build(*g_, kRowSlack);
    invalidate_all_rows();
    ++full_invalidations_;
    return;
  }
  const std::vector<edge_flip> flips = net_edge_flips(*window);
  if (!csr_.try_repair(*g_, flips)) {
    // Slack exhausted: re-snapshot, but rows are still judged per flip —
    // their validity never depended on the CSR layout.
    csr_ = csr_graph::build(*g_, kRowSlack);
  }
  ++delta_refreshes_;
  for (std::size_t u = 0; u < row_valid_.size(); ++u) {
    if (row_valid_[u] == 0) continue;
    if (row_survives(rows_[u], flips, *g_)) {
      ++rows_kept_;
      continue;
    }
    row_valid_[u] = 0;
    ++row_version_[u];
    ++rows_dropped_;
  }
}

const csr_graph& distance_cache::csr() {
  refresh();
  return csr_;
}

void distance_cache::fill_row(std::uint32_t src, bfs_workspace& ws) {
  ws.distances(csr_, src, rows_[src]);
  row_valid_[src] = 1;
  ++row_version_[src];
}

const std::vector<int>& distance_cache::row(node_id src) {
  refresh();
  PN_CHECK(src.index() < rows_.size());
  const auto i = static_cast<std::uint32_t>(src.index());
  if (row_valid_[i] != 0) {
    ++hits_;
  } else {
    ++misses_;
    fill_row(i, ws_);
  }
  return rows_[i];
}

std::uint64_t distance_cache::row_version(node_id src) const {
  PN_CHECK(src.index() < row_version_.size());
  return row_version_[src.index()];
}

void distance_cache::warm_all(std::span<const node_id> sources, int threads) {
  refresh();
  std::vector<std::uint32_t> todo;
  todo.reserve(sources.size());
  for (node_id s : sources) {
    PN_CHECK(s.index() < rows_.size());
    const auto i = static_cast<std::uint32_t>(s.index());
    if (row_valid_[i] == 0) todo.push_back(i);
  }
  misses_ += todo.size();
  if (todo.empty()) return;

  // Sources are grouped into 64-wide MS-BFS batches; each worker owns its
  // batch scratch, and rows are disjoint slots of a pre-sized vector, so
  // workers never touch the same memory.
  if (threads == 0) threads = default_thread_count();
  const std::size_t batches = (todo.size() + 63) / 64;
  const int workers = std::max(
      1, std::min(threads, static_cast<int>(batches)));
  parallel_for(workers, batches,
               [&](std::size_t b) { fill_batch(todo, b); });
}

void distance_cache::fill_batch(const std::vector<std::uint32_t>& todo,
                                std::size_t batch_index) {
  const std::size_t lo = batch_index * 64;
  const std::size_t hi = std::min(todo.size(), lo + 64);
  std::vector<int>* rows[64];
  for (std::size_t k = lo; k < hi; ++k) rows[k - lo] = &rows_[todo[k]];
  fill_rows_batched(csr_, std::span(todo).subspan(lo, hi - lo), rows);
  for (std::size_t k = lo; k < hi; ++k) {
    row_valid_[todo[k]] = 1;
    ++row_version_[todo[k]];
  }
}

void distance_cache::warm_all(std::span<const node_id> sources,
                              thread_pool& pool) {
  refresh();
  std::vector<std::uint32_t> todo;
  todo.reserve(sources.size());
  for (node_id s : sources) {
    PN_CHECK(s.index() < rows_.size());
    const auto i = static_cast<std::uint32_t>(s.index());
    if (row_valid_[i] == 0) todo.push_back(i);
  }
  misses_ += todo.size();
  if (todo.empty()) return;

  const std::size_t batches = (todo.size() + 63) / 64;
  for (std::size_t b = 0; b < batches; ++b) {
    pool.submit([this, &todo, b] { fill_batch(todo, b); });
  }
  pool.wait_idle();
}

std::size_t distance_cache::rows_cached() const {
  return static_cast<std::size_t>(
      std::count(row_valid_.begin(), row_valid_.end(), std::uint8_t{1}));
}

}  // namespace pn
