#include "topology/distance_cache.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "common/thread_pool.h"

namespace pn {

namespace {

// Multi-source BFS over up to 64 sources at once (the MS-BFS idea from
// Then et al. / the batched sweeps in Ligra-style engines): each node
// carries one frontier bit per source, so a level expands all sources
// with one pass over the arcs instead of 64. Distance rows are extracted
// as bits first appear; BFS levels are unique, so every row is identical
// to a single-source run.
void fill_rows_batched(const csr_graph& g,
                       std::span<const std::uint32_t> sources,
                       std::vector<int>** rows) {
  const std::size_t n = g.num_nodes;
  const std::size_t batch = sources.size();
  PN_CHECK(batch >= 1 && batch <= 64);
  for (std::size_t b = 0; b < batch; ++b) {
    rows[b]->assign(n, -1);
    (*rows[b])[sources[b]] = 0;
  }

  std::vector<std::uint64_t> visited(n, 0);
  std::vector<std::uint64_t> current(n, 0);
  std::vector<std::uint64_t> next(n, 0);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::uint64_t bit = std::uint64_t{1} << b;
    visited[sources[b]] |= bit;
    current[sources[b]] |= bit;
  }

  const std::uint32_t* const offsets = g.row_offsets.data();
  const std::uint32_t* const adj = g.adjacency.data();
  std::uint64_t* const vis = visited.data();
  std::uint64_t* const cur = current.data();
  std::uint64_t* const nxt = next.data();

  for (int level = 1;; ++level) {
    for (std::size_t u = 0; u < n; ++u) {
      const std::uint64_t m = cur[u];
      if (m == 0) continue;
      const std::uint32_t end = offsets[u + 1];
      for (std::uint32_t k = offsets[u]; k < end; ++k) {
        nxt[adj[k]] |= m;
      }
    }
    bool any = false;
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t fresh = nxt[v] & ~vis[v];
      nxt[v] = 0;
      cur[v] = fresh;
      if (fresh == 0) continue;
      any = true;
      vis[v] |= fresh;
      while (fresh != 0) {
        const int b = std::countr_zero(fresh);
        fresh &= fresh - 1;
        (*rows[static_cast<std::size_t>(b)])[v] = level;
      }
    }
    if (!any) break;
  }
}

}  // namespace

void bfs_workspace::distances(const csr_graph& g, std::uint32_t src,
                              std::vector<int>& dist) {
  PN_CHECK(src < g.num_nodes);
  dist.assign(g.num_nodes, -1);
  frontier_.resize(g.num_nodes);
  // Raw pointers keep the sweep in registers: dist writes (int*) may
  // alias the std::uint32_t arrays as far as the compiler knows, which
  // otherwise forces a data-pointer reload per hop.
  const std::uint32_t* const offsets = g.row_offsets.data();
  const std::uint32_t* const adj = g.adjacency.data();
  std::uint32_t* const frontier = frontier_.data();
  int* const d = dist.data();
  std::uint32_t head = 0;
  std::uint32_t tail = 0;
  d[src] = 0;
  frontier[tail++] = src;
  while (head < tail) {
    const std::uint32_t u = frontier[head++];
    const int du = d[u];
    const std::uint32_t end = offsets[u + 1];
    for (std::uint32_t k = offsets[u]; k < end; ++k) {
      const std::uint32_t v = adj[k];
      if (d[v] == -1) {
        d[v] = du + 1;
        frontier[tail++] = v;
      }
    }
  }
}

void bfs_workspace::distances_masked(const csr_graph& g, std::uint32_t src,
                                     std::span<const std::uint8_t> blocked,
                                     std::vector<int>& dist) {
  PN_CHECK(src < g.num_nodes);
  PN_CHECK(blocked.size() >= g.num_nodes);
  dist.assign(g.num_nodes, -1);
  if (blocked[src] != 0) return;
  frontier_.resize(g.num_nodes);
  const std::uint32_t* const offsets = g.row_offsets.data();
  const std::uint32_t* const adj = g.adjacency.data();
  const std::uint8_t* const block = blocked.data();
  std::uint32_t* const frontier = frontier_.data();
  int* const d = dist.data();
  std::uint32_t head = 0;
  std::uint32_t tail = 0;
  d[src] = 0;
  frontier[tail++] = src;
  while (head < tail) {
    const std::uint32_t u = frontier[head++];
    const int du = d[u];
    const std::uint32_t end = offsets[u + 1];
    for (std::uint32_t k = offsets[u]; k < end; ++k) {
      const std::uint32_t v = adj[k];
      if (d[v] == -1 && block[v] == 0) {
        d[v] = du + 1;
        frontier[tail++] = v;
      }
    }
  }
}

distance_cache::distance_cache(const network_graph& g) : g_(&g) {
  csr_ = csr_graph::build(g);
  rows_.resize(g.node_count());
  row_valid_.assign(g.node_count(), 0);
}

void distance_cache::refresh() {
  if (!csr_.stale(*g_)) return;
  csr_ = csr_graph::build(*g_);
  rows_.assign(g_->node_count(), {});
  row_valid_.assign(g_->node_count(), 0);
}

const csr_graph& distance_cache::csr() {
  refresh();
  return csr_;
}

void distance_cache::fill_row(std::uint32_t src, bfs_workspace& ws) {
  ws.distances(csr_, src, rows_[src]);
  row_valid_[src] = 1;
}

const std::vector<int>& distance_cache::row(node_id src) {
  refresh();
  PN_CHECK(src.index() < rows_.size());
  const auto i = static_cast<std::uint32_t>(src.index());
  if (row_valid_[i] != 0) {
    ++hits_;
  } else {
    ++misses_;
    fill_row(i, ws_);
  }
  return rows_[i];
}

void distance_cache::warm_all(std::span<const node_id> sources, int threads) {
  refresh();
  std::vector<std::uint32_t> todo;
  todo.reserve(sources.size());
  for (node_id s : sources) {
    PN_CHECK(s.index() < rows_.size());
    const auto i = static_cast<std::uint32_t>(s.index());
    if (row_valid_[i] == 0) todo.push_back(i);
  }
  misses_ += todo.size();
  if (todo.empty()) return;

  // Sources are grouped into 64-wide MS-BFS batches; each worker owns its
  // batch scratch, and rows are disjoint slots of a pre-sized vector, so
  // workers never touch the same memory.
  if (threads == 0) threads = default_thread_count();
  const std::size_t batches = (todo.size() + 63) / 64;
  const int workers = std::max(
      1, std::min(threads, static_cast<int>(batches)));
  parallel_for(workers, batches,
               [&](std::size_t b) { fill_batch(todo, b); });
}

void distance_cache::fill_batch(const std::vector<std::uint32_t>& todo,
                                std::size_t batch_index) {
  const std::size_t lo = batch_index * 64;
  const std::size_t hi = std::min(todo.size(), lo + 64);
  std::vector<int>* rows[64];
  for (std::size_t k = lo; k < hi; ++k) rows[k - lo] = &rows_[todo[k]];
  fill_rows_batched(csr_, std::span(todo).subspan(lo, hi - lo), rows);
  for (std::size_t k = lo; k < hi; ++k) row_valid_[todo[k]] = 1;
}

void distance_cache::warm_all(std::span<const node_id> sources,
                              thread_pool& pool) {
  refresh();
  std::vector<std::uint32_t> todo;
  todo.reserve(sources.size());
  for (node_id s : sources) {
    PN_CHECK(s.index() < rows_.size());
    const auto i = static_cast<std::uint32_t>(s.index());
    if (row_valid_[i] == 0) todo.push_back(i);
  }
  misses_ += todo.size();
  if (todo.empty()) return;

  const std::size_t batches = (todo.size() + 63) / 64;
  for (std::size_t b = 0; b < batches; ++b) {
    pool.submit([this, &todo, b] { fill_batch(todo, b); });
  }
  pool.wait_idle();
}

std::size_t distance_cache::rows_cached() const {
  return static_cast<std::size_t>(
      std::count(row_valid_.begin(), row_valid_.end(), std::uint8_t{1}));
}

}  // namespace pn
