// Switch-level network multigraph.
//
// Nodes are switches; hosts are not graph nodes but counted per-ToR
// (host_ports), matching how the topology papers the paper discusses
// (Jellyfish, Xpander, fat-tree) account for servers. Edges are individual
// inter-switch links with a capacity; parallel links between the same pair
// of switches are distinct edges (a multigraph), because physically they
// are distinct cables — which is the whole point of this library.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace pn {

// One edge-journal entry: which edge flipped and how. Endpoints are
// denormalized so delta consumers never re-look-up edge_info.
enum class edge_delta_kind : std::uint8_t {
  added,    // brand-new edge id came into existence (alive)
  removed,  // live edge marked dead
  revived,  // dead edge brought back (re-appended to adjacency lists)
};

struct edge_delta {
  edge_id edge;
  edge_delta_kind kind;
  node_id a;
  node_id b;
};

// The *net* effect of a delta window on one edge: `alive` is the final
// state, and the prior state is the opposite (no-net-change edges are
// dropped). An edge that was removed and later revived within the window
// yields BOTH a down flip and an up flip — its adjacency-list position
// moved to the end, and consumers that preserve neighbor order (CSR
// repair, ECMP dirtiness) must see the move even though liveness is
// unchanged. Ordering contract: down flips first (ascending edge id),
// then up flips in the order the edges were (re)appended to the
// adjacency lists — replaying ups in output order reproduces the
// graph's current neighbor order exactly.
struct edge_flip {
  edge_id edge;
  node_id a;
  node_id b;
  bool alive = false;  // final state: true = came up, false = went down
};

[[nodiscard]] std::vector<edge_flip> net_edge_flips(
    std::span<const edge_delta> deltas);

enum class node_kind : std::uint8_t {
  tor,           // top-of-rack / leaf (has host-facing ports)
  aggregation,   // pod/agg-block middle stage
  spine,         // spine / core
  expander,      // switch in a flat/expander fabric (ToR-like, direct-wired)
};

[[nodiscard]] const char* node_kind_name(node_kind k);

// Inverse of node_kind_name (for twin design decoding).
[[nodiscard]] std::optional<node_kind> node_kind_from_name(
    std::string_view name);

struct node_info {
  std::string name;
  node_kind kind = node_kind::tor;
  int radix = 0;        // total ports on the switch
  gbps port_rate;       // line rate of each port
  int host_ports = 0;   // ports reserved for servers (ToRs only)
  int layer = 0;        // 0 = ToR layer, increasing upward
  int block = 0;        // pod / aggregation-block / group index
};

struct edge_info {
  node_id a;
  node_id b;
  gbps capacity;        // one direction; links are full duplex
  bool via_indirection = false;  // passes through a patch panel / OCS layer
  int indirection_unit = -1;     // which panel/OCS carries it (if any)
};

class network_graph {
 public:
  node_id add_node(node_info info);
  edge_id add_edge(node_id a, node_id b, gbps capacity);
  edge_id add_edge(edge_info e);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const node_info& node(node_id n) const;
  [[nodiscard]] node_info& node(node_id n);
  [[nodiscard]] const edge_info& edge(edge_id e) const;
  [[nodiscard]] edge_info& edge(edge_id e);

  struct adjacency_entry {
    node_id neighbor;
    edge_id edge;
  };
  [[nodiscard]] std::span<const adjacency_entry> neighbors(node_id n) const;

  // Inter-switch degree (number of incident edges).
  [[nodiscard]] int degree(node_id n) const;
  // Ports not used by hosts or inter-switch links.
  [[nodiscard]] int free_ports(node_id n) const;

  [[nodiscard]] std::vector<node_id> nodes_of_kind(node_kind k) const;
  // ToRs plus expander switches — everything that sources host traffic.
  [[nodiscard]] std::vector<node_id> host_facing_nodes() const;
  [[nodiscard]] std::size_t total_hosts() const;

  // Monotonic mutation counter, bumped by every add_node/add_edge/
  // remove_edge. Derived snapshots (csr_graph, distance_cache) record the
  // epoch they were built at and compare it against this to detect
  // staleness — a cached result can never silently outlive the graph
  // state it was computed from.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  // Removes an edge (marks it dead; ids remain stable). Dead edges are
  // skipped by neighbors()/degree(). Used by rewiring planners.
  void remove_edge(edge_id e);
  // Brings a dead edge back. Its adjacency entries are re-appended at the
  // end of both endpoint lists — exactly where a fresh add_edge would put
  // them — so order-sensitive consumers (CSR, ECMP) see a revived edge
  // and a re-added edge identically.
  void revive_edge(edge_id e);
  [[nodiscard]] bool edge_alive(edge_id e) const;
  [[nodiscard]] std::vector<edge_id> live_edges() const;

  // ---- edge-diff journal ------------------------------------------------
  // Every edge mutation (add/remove/revive) appends one edge_delta; the
  // journal entries cover epochs (journal_floor(), epoch()]. deltas_since
  // returns the suffix of entries after `epoch`, or nullopt when the
  // window is torn — `epoch` predates the compaction floor, which moves
  // forward when the journal overflows its capacity or when add_node
  // bumps the epoch without an edge entry (node adds resize every
  // per-node structure; delta consumers must rebuild). A torn window is
  // a fallback signal, never UB.
  [[nodiscard]] std::optional<std::span<const edge_delta>> deltas_since(
      std::uint64_t epoch) const;
  [[nodiscard]] std::uint64_t journal_floor() const { return journal_floor_; }
  // Caps the journal length (oldest entries are dropped, raising the
  // floor). Mainly for tests exercising the torn-window fallback.
  void set_journal_capacity(std::size_t cap);

  // True if an edge a-b (either direction, alive) exists.
  [[nodiscard]] bool has_edge_between(node_id a, node_id b) const;

  // Checks structural invariants: no node exceeds its radix, no self loops.
  // Returns a human-readable problem description, or empty if valid.
  [[nodiscard]] std::string validate() const;

  // Descriptive family label set by generators ("clos", "jellyfish", ...).
  std::string family;

 private:
  void journal_append(edge_id e, edge_delta_kind kind);

  std::vector<node_info> nodes_;
  std::vector<edge_info> edges_;
  std::vector<bool> edge_dead_;
  std::vector<std::vector<adjacency_entry>> adj_;  // maintained eagerly
  std::uint64_t epoch_ = 0;
  // Entry i covers epoch journal_floor_ + i + 1; see deltas_since().
  std::vector<edge_delta> journal_;
  std::uint64_t journal_floor_ = 0;
  std::size_t journal_capacity_ = 4096;
};

}  // namespace pn
