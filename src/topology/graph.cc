#include "topology/graph.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace pn {

const char* node_kind_name(node_kind k) {
  switch (k) {
    case node_kind::tor:
      return "tor";
    case node_kind::aggregation:
      return "aggregation";
    case node_kind::spine:
      return "spine";
    case node_kind::expander:
      return "expander";
  }
  return "unknown";
}

std::optional<node_kind> node_kind_from_name(std::string_view name) {
  for (const node_kind k : {node_kind::tor, node_kind::aggregation,
                            node_kind::spine, node_kind::expander}) {
    if (name == node_kind_name(k)) return k;
  }
  return std::nullopt;
}

node_id network_graph::add_node(node_info info) {
  PN_CHECK_MSG(info.radix > 0, "node " << info.name << " has no ports");
  PN_CHECK_MSG(info.host_ports >= 0 && info.host_ports <= info.radix,
               "node " << info.name << " host_ports out of range");
  nodes_.push_back(std::move(info));
  adj_.emplace_back();
  ++epoch_;
  // A node add has no edge_delta representation and resizes every
  // per-node structure downstream: tear the journal so delta consumers
  // fall back to a full rebuild.
  journal_.clear();
  journal_floor_ = epoch_;
  return node_id{nodes_.size() - 1};
}

edge_id network_graph::add_edge(node_id a, node_id b, gbps capacity) {
  return add_edge(edge_info{a, b, capacity, false, -1});
}

edge_id network_graph::add_edge(edge_info e) {
  PN_CHECK(e.a.index() < nodes_.size() && e.b.index() < nodes_.size());
  PN_CHECK_MSG(e.a != e.b, "self loop on node " << nodes_[e.a.index()].name);
  const edge_id id{edges_.size()};
  edges_.push_back(e);
  edge_dead_.push_back(false);
  adj_[e.a.index()].push_back({e.b, id});
  adj_[e.b.index()].push_back({e.a, id});
  ++epoch_;
  journal_append(id, edge_delta_kind::added);
  return id;
}

const node_info& network_graph::node(node_id n) const {
  PN_CHECK(n.index() < nodes_.size());
  return nodes_[n.index()];
}

node_info& network_graph::node(node_id n) {
  PN_CHECK(n.index() < nodes_.size());
  return nodes_[n.index()];
}

const edge_info& network_graph::edge(edge_id e) const {
  PN_CHECK(e.index() < edges_.size());
  return edges_[e.index()];
}

edge_info& network_graph::edge(edge_id e) {
  PN_CHECK(e.index() < edges_.size());
  return edges_[e.index()];
}

std::span<const network_graph::adjacency_entry> network_graph::neighbors(
    node_id n) const {
  PN_CHECK(n.index() < adj_.size());
  return adj_[n.index()];
}

int network_graph::degree(node_id n) const {
  return static_cast<int>(neighbors(n).size());
}

int network_graph::free_ports(node_id n) const {
  const node_info& info = node(n);
  return info.radix - info.host_ports - degree(n);
}

std::vector<node_id> network_graph::nodes_of_kind(node_kind k) const {
  std::vector<node_id> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == k) out.push_back(node_id{i});
  }
  return out;
}

std::vector<node_id> network_graph::host_facing_nodes() const {
  std::vector<node_id> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].host_ports > 0) out.push_back(node_id{i});
  }
  return out;
}

std::size_t network_graph::total_hosts() const {
  std::size_t total = 0;
  for (const auto& n : nodes_) {
    total += static_cast<std::size_t>(n.host_ports);
  }
  return total;
}

void network_graph::remove_edge(edge_id e) {
  PN_CHECK(e.index() < edges_.size());
  PN_CHECK_MSG(!edge_dead_[e.index()], "edge already removed");
  edge_dead_[e.index()] = true;
  const edge_info& info = edges_[e.index()];
  auto scrub = [&](node_id n) {
    auto& lst = adj_[n.index()];
    lst.erase(std::remove_if(lst.begin(), lst.end(),
                             [&](const adjacency_entry& a) {
                               return a.edge == e;
                             }),
              lst.end());
  };
  scrub(info.a);
  scrub(info.b);
  ++epoch_;
  journal_append(e, edge_delta_kind::removed);
}

void network_graph::revive_edge(edge_id e) {
  PN_CHECK(e.index() < edges_.size());
  PN_CHECK_MSG(edge_dead_[e.index()], "edge is already alive");
  edge_dead_[e.index()] = false;
  const edge_info& info = edges_[e.index()];
  adj_[info.a.index()].push_back({info.b, e});
  adj_[info.b.index()].push_back({info.a, e});
  ++epoch_;
  journal_append(e, edge_delta_kind::revived);
}

void network_graph::journal_append(edge_id e, edge_delta_kind kind) {
  if (journal_.size() >= journal_capacity_) {
    // Drop the oldest half in one move; the floor advances past them.
    const std::size_t drop = journal_.size() / 2 + 1;
    journal_.erase(journal_.begin(),
                   journal_.begin() + static_cast<std::ptrdiff_t>(drop));
  }
  const edge_info& info = edges_[e.index()];
  journal_.push_back(edge_delta{e, kind, info.a, info.b});
  journal_floor_ = epoch_ - journal_.size();
}

std::optional<std::span<const edge_delta>> network_graph::deltas_since(
    std::uint64_t epoch) const {
  PN_CHECK(epoch <= epoch_);
  if (epoch < journal_floor_) return std::nullopt;  // torn window
  const auto skip = static_cast<std::size_t>(epoch - journal_floor_);
  return std::span<const edge_delta>(journal_).subspan(skip);
}

void network_graph::set_journal_capacity(std::size_t cap) {
  PN_CHECK(cap >= 1);
  journal_capacity_ = cap;
  if (journal_.size() > cap) {
    const std::size_t drop = journal_.size() - cap;
    journal_.erase(journal_.begin(),
                   journal_.begin() + static_cast<std::ptrdiff_t>(drop));
    journal_floor_ = epoch_ - journal_.size();
  }
}

std::vector<edge_flip> net_edge_flips(std::span<const edge_delta> deltas) {
  // Group the window's entries per edge, preserving arrival order inside
  // each group: the first entry tells the prior state, the last tells the
  // final state (and, for edges that end alive, where they now sit in the
  // adjacency lists).
  std::vector<std::size_t> idx(deltas.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t x, std::size_t y) {
                     return deltas[x].edge < deltas[y].edge;
                   });

  std::vector<edge_flip> down;
  std::vector<std::pair<std::size_t, edge_flip>> up;  // (last seq, flip)
  for (std::size_t i = 0; i < idx.size();) {
    std::size_t j = i;
    while (j < idx.size() && deltas[idx[j]].edge == deltas[idx[i]].edge) ++j;
    const edge_delta& first = deltas[idx[i]];
    const std::size_t last_seq = idx[j - 1];
    const edge_delta& last = deltas[last_seq];
    const bool prior_alive = first.kind == edge_delta_kind::removed;
    const bool final_alive = last.kind != edge_delta_kind::removed;
    if (final_alive) {
      // Any touched edge that ends alive was (re)appended at last_seq, so
      // its position changed; if it also existed before, emit the down
      // flip that vacates its old slot.
      if (prior_alive) {
        down.push_back(edge_flip{first.edge, first.a, first.b, false});
      }
      up.emplace_back(last_seq,
                      edge_flip{last.edge, last.a, last.b, true});
    } else if (prior_alive) {
      down.push_back(edge_flip{first.edge, first.a, first.b, false});
    }
    // prior dead/nonexistent and final dead: invisible to consumers.
    i = j;
  }
  std::sort(up.begin(), up.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });

  std::vector<edge_flip> out;
  out.reserve(down.size() + up.size());
  out.insert(out.end(), down.begin(), down.end());
  for (const auto& [seq, flip] : up) out.push_back(flip);
  return out;
}

bool network_graph::edge_alive(edge_id e) const {
  PN_CHECK(e.index() < edges_.size());
  return !edge_dead_[e.index()];
}

std::vector<edge_id> network_graph::live_edges() const {
  std::vector<edge_id> out;
  out.reserve(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (!edge_dead_[i]) out.push_back(edge_id{i});
  }
  return out;
}

bool network_graph::has_edge_between(node_id a, node_id b) const {
  for (const auto& e : neighbors(a)) {
    if (e.neighbor == b) return true;
  }
  return false;
}

std::string network_graph::validate() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const node_info& n = nodes_[i];
    const int used = n.host_ports + static_cast<int>(adj_[i].size());
    if (used > n.radix) {
      return str_format("node %s uses %d ports but radix is %d",
                        n.name.c_str(), used, n.radix);
    }
  }
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edge_dead_[i]) continue;
    if (edges_[i].a == edges_[i].b) {
      return str_format("edge %zu is a self loop", i);
    }
  }
  return {};
}

}  // namespace pn
