// Reusable BFS workspace and a per-graph-epoch distance-row cache.
//
// Every metric in the topology hot path (path-length stats, ECMP loads,
// path counts, bisection seeding, repair reachability) needs "hop
// distances from node s" — and within one evaluation they keep asking for
// the *same* rows: the host-facing switches. bfs_workspace makes one BFS
// allocation-free after warm-up (flat ring-buffer frontier, no std::queue
// node churn); distance_cache memoizes whole rows keyed on
// (source, graph epoch) so the second consumer of a row pays a lookup,
// not a traversal.
//
// Staleness is impossible by construction: every access re-checks the
// graph's mutation epoch and drops the snapshot plus all rows when it
// moved (tests/topology/csr_test.cc asserts this). The cache is not
// internally synchronized — share it within one evaluation thread, or
// fill it up front with warm_all() and then treat it as read-only.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "topology/csr.h"
#include "topology/graph.h"

namespace pn {

class thread_pool;

// Flat single-source BFS over a CSR snapshot. The frontier is an index
// ring laid out in one vector sized to the node count; repeated runs
// reuse the storage.
class bfs_workspace {
 public:
  // Fills dist (resized to g.num_nodes) with hop counts from src; -1 for
  // unreachable. Visits neighbors in CSR (= adjacency list) order, so the
  // resulting distances — and any float accumulation driven by them — are
  // identical to bfs_distances() on the source graph.
  void distances(const csr_graph& g, std::uint32_t src,
                 std::vector<int>& dist);

  // Same, but nodes with blocked[u] != 0 are treated as removed (never
  // enqueued; src itself may be blocked, yielding an all -1 row). Used by
  // the repair simulator's post-drain reachability checks.
  void distances_masked(const csr_graph& g, std::uint32_t src,
                        std::span<const std::uint8_t> blocked,
                        std::vector<int>& dist);

 private:
  std::vector<std::uint32_t> frontier_;
};

// Lazily-filled all-sources distance table over one network_graph.
//
// row(s) computes and memoizes the BFS row for s at the current graph
// epoch; warm_all() fills many rows in parallel (each worker gets its own
// bfs_workspace; rows are disjoint slots, so no synchronization is
// needed beyond the pool's join). After any graph mutation the next
// access observes the epoch change, rebuilds the CSR snapshot, and
// discards every cached row.
class distance_cache {
 public:
  explicit distance_cache(const network_graph& g);

  // The CSR snapshot, rebuilt first if the graph mutated.
  [[nodiscard]] const csr_graph& csr();

  // Distance row from src, computed on first use. The reference is valid
  // until the next graph mutation is observed (any later row()/csr()/
  // warm_all() call).
  [[nodiscard]] const std::vector<int>& row(node_id src);

  // Computes any missing rows for `sources`, grouping them into 64-wide
  // multi-source BFS batches spread over `threads` workers (0 = one per
  // hardware thread, 1 = inline). Results are identical for every thread
  // count — and to filling each row with a single-source BFS.
  void warm_all(std::span<const node_id> sources, int threads);
  // Same, submitting one task per batch to an existing pool.
  void warm_all(std::span<const node_id> sources, thread_pool& pool);

  // Observability: rows currently cached, and row() calls served from /
  // missing the cache since construction.
  [[nodiscard]] std::size_t rows_cached() const;
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }

 private:
  // Re-snapshots and clears all rows if the graph epoch moved.
  void refresh();
  void fill_row(std::uint32_t src, bfs_workspace& ws);
  // Fills batch `batch_index` (64 sources) of `todo` via multi-source BFS.
  void fill_batch(const std::vector<std::uint32_t>& todo,
                  std::size_t batch_index);

  const network_graph* g_;
  csr_graph csr_;
  std::vector<std::vector<int>> rows_;   // indexed by node
  std::vector<std::uint8_t> row_valid_;  // indexed by node
  bfs_workspace ws_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace pn
