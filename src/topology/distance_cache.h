// Reusable BFS workspace and a delta-aware per-graph-epoch distance-row
// cache.
//
// Every metric in the topology hot path (path-length stats, ECMP loads,
// path counts, bisection seeding, repair reachability) needs "hop
// distances from node s" — and within one evaluation they keep asking for
// the *same* rows: the host-facing switches. bfs_workspace makes one BFS
// allocation-free after warm-up (word-parallel bitset frontier, the
// single-source cut of the MS-BFS batch sweep below); distance_cache
// memoizes whole rows keyed on (source, graph epoch) so the second
// consumer of a row pays a lookup, not a traversal.
//
// Staleness is impossible by construction: every access re-checks the
// graph's mutation epoch. When the epoch moved, the cache first asks the
// graph's edge-diff journal for the net flips since its snapshot. If the
// window is intact it *repairs* instead of rebuilding: the CSR is patched
// in place (csr_graph::try_repair) and each cached row is kept iff the
// flips provably cannot change it — see DESIGN.md §12 for the invariant
// and its proof sketch. A torn journal (compaction, node adds) or
// exhausted CSR slack falls back to the wholesale rebuild, never UB.
// The cache is not internally synchronized — share it within one
// evaluation thread, or fill it up front with warm_all() and then treat
// it as read-only.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "topology/csr.h"
#include "topology/graph.h"

namespace pn {

class thread_pool;

// Single-source BFS over a CSR snapshot. The dist row doubles as the
// visited marker (-1 = unseen, exactly like the adjacency-list
// reference), and the frontier is two reused flat node vectors, so the
// inner loop touches one int per arc and nothing else. The previous
// word-parallel bitset frontier scanned every bitset word per level,
// which on small graphs cost more than the traversal itself and left
// bm_bfs_csr trailing the reference; this form beats it at every size.
// distances_masked pre-seeds blocked nodes with a -2 sentinel (visited,
// never enqueued) and sweeps it back to -1 afterward. Level sets are
// unique, so the rows match the reference bit for bit either way.
class bfs_workspace {
 public:
  // Fills dist (resized to g.num_nodes) with hop counts from src; -1 for
  // unreachable. Visits neighbors in CSR (= adjacency list) order, so the
  // resulting distances — and any float accumulation driven by them — are
  // identical to bfs_distances() on the source graph.
  void distances(const csr_graph& g, std::uint32_t src,
                 std::vector<int>& dist);

  // Same, but nodes with blocked[u] != 0 are treated as removed (never
  // enqueued; src itself may be blocked, yielding an all -1 row). Used by
  // the repair simulator's post-drain reachability checks.
  void distances_masked(const csr_graph& g, std::uint32_t src,
                        std::span<const std::uint8_t> blocked,
                        std::vector<int>& dist);

 private:
  void run(const csr_graph& g, std::uint32_t src, std::vector<int>& dist);

  std::vector<std::uint32_t> frontier_;
  std::vector<std::uint32_t> next_frontier_;
};

// Lazily-filled all-sources distance table over one network_graph.
//
// row(s) computes and memoizes the BFS row for s at the current graph
// epoch; warm_all() fills many rows in parallel (each worker gets its own
// bfs_workspace; rows are disjoint slots, so no synchronization is
// needed beyond the pool's join). After a graph mutation the next access
// repairs the snapshot from the edge-diff journal and keeps every row
// the flips cannot have changed; rows that might have changed are
// dropped and refilled on demand.
class distance_cache {
 public:
  explicit distance_cache(const network_graph& g);

  // The CSR snapshot, repaired/rebuilt first if the graph mutated.
  [[nodiscard]] const csr_graph& csr();

  // Distance row from src, computed on first use. The reference is valid
  // until the next graph mutation is observed (any later row()/csr()/
  // warm_all() call).
  [[nodiscard]] const std::vector<int>& row(node_id src);

  // Computes any missing rows for `sources`, grouping them into 64-wide
  // multi-source BFS batches spread over `threads` workers (0 = one per
  // hardware thread, 1 = inline). Results are identical for every thread
  // count — and to filling each row with a single-source BFS.
  void warm_all(std::span<const node_id> sources, int threads);
  // Same, submitting one task per batch to an existing pool.
  void warm_all(std::span<const node_id> sources, thread_pool& pool);

  // Monotonic per-row change counter: bumped whenever the row's contents
  // may differ from what a previous reader saw (invalidation or refill).
  // Incremental consumers cache the version at read time and recompute
  // their derived state only for rows whose version moved.
  [[nodiscard]] std::uint64_t row_version(node_id src) const;

  // Observability: rows currently cached, and row() calls served from /
  // missing the cache since construction.
  [[nodiscard]] std::size_t rows_cached() const;
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }
  // Delta-refresh accounting: epoch moves absorbed via the journal, rows
  // carried across them untouched vs dropped, and wholesale fallbacks
  // (torn journal / node adds / slack exhausted + rebuilt CSR).
  [[nodiscard]] std::size_t delta_refreshes() const {
    return delta_refreshes_;
  }
  [[nodiscard]] std::size_t rows_kept() const { return rows_kept_; }
  [[nodiscard]] std::size_t rows_dropped() const { return rows_dropped_; }
  [[nodiscard]] std::size_t full_invalidations() const {
    return full_invalidations_;
  }

 private:
  // Repairs or re-snapshots, dropping rows as needed, if the epoch moved.
  void refresh();
  void invalidate_all_rows();
  void fill_row(std::uint32_t src, bfs_workspace& ws);
  // Fills batch `batch_index` (64 sources) of `todo` via multi-source BFS.
  void fill_batch(const std::vector<std::uint32_t>& todo,
                  std::size_t batch_index);

  const network_graph* g_;
  csr_graph csr_;
  std::vector<std::vector<int>> rows_;   // indexed by node
  std::vector<std::uint8_t> row_valid_;  // indexed by node
  std::vector<std::uint64_t> row_version_;
  bfs_workspace ws_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t delta_refreshes_ = 0;
  std::size_t rows_kept_ = 0;
  std::size_t rows_dropped_ = 0;
  std::size_t full_invalidations_ = 0;
};

}  // namespace pn
