// ECMP shortest-path routing and the uniform-scaling throughput proxy.
//
// We do not simulate packets: the comparisons the paper cares about
// (Jellyfish/Xpander vs. Clos) were made with flow-level throughput, and
// the deployability question only needs a consistent proxy. The proxy is
// "max alpha such that alpha * TM, split over ECMP shortest paths, fits
// all link capacities" — deterministic and identical across topologies.
#pragma once

#include <vector>

#include "common/ids.h"
#include "topology/distance_cache.h"
#include "topology/graph.h"
#include "topology/traffic.h"

namespace pn {

struct link_load_report {
  // Directed load per live edge, Gbps, for the *unscaled* TM.
  // loads_ab[e] is flow from edge(e).a to edge(e).b.
  std::vector<double> loads_ab;
  std::vector<double> loads_ba;
  double max_load = 0.0;
  double mean_load = 0.0;
};

// Splits the matrix over ECMP shortest paths (equal split across
// next hops at every node, per destination) and accumulates link loads.
// The cache-taking overload reuses per-destination distance rows (the
// same rows path-length stats need); the plain overload runs against a
// private cache.
[[nodiscard]] link_load_report compute_ecmp_loads(const network_graph& g,
                                                  const traffic_matrix& tm);
[[nodiscard]] link_load_report compute_ecmp_loads(const network_graph& g,
                                                  const traffic_matrix& tm,
                                                  distance_cache& cache);

// Adjacency-list reference implementation (the pre-CSR code path), kept
// for differential testing: the property suite asserts the CSR-backed
// version above is bit-identical to this on randomized graphs.
[[nodiscard]] link_load_report compute_ecmp_loads_reference(
    const network_graph& g, const traffic_matrix& tm);

// ---- incremental building blocks ---------------------------------------
// One destination's worth of the ECMP sweep, exposed so the incremental
// evaluator (topology/incremental.h) can cache per-destination
// contribution arrays and re-accumulate them in ascending destination
// order. Each destination's partial sums start from whatever is already
// in ab/ba (compute_ecmp_loads passes its running totals; the
// incremental path passes zeroed per-destination arrays) — and since
// 0.0 + x == x bitwise for the nonnegative shares involved, both
// assemblies reproduce the exact float addition order of the
// from-scratch loop. Returns false (adding nothing) when no endpoint
// sends positive demand to ti.
struct ecmp_dest_scratch {
  std::vector<double> inflow;
  std::vector<std::uint32_t> bucket_start;
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> bucket_fill;
  std::vector<std::uint32_t> downhill;
};
bool accumulate_ecmp_dest_loads(const csr_graph& csr,
                                const std::vector<int>& dist,
                                const traffic_matrix& tm, std::size_t ti,
                                ecmp_dest_scratch& scratch, double* ab,
                                double* ba);

// Fills max/mean from the per-edge loads (the shared tail of every load
// computation here).
void finalize_link_loads(const network_graph& g, link_load_report& out);

struct throughput_result {
  // Largest alpha with alpha*TM feasible. >1 means the TM fits with slack.
  double alpha = 0.0;
  // Utilization of the most loaded direction of any link at alpha=1.
  double max_utilization = 0.0;
  double mean_utilization = 0.0;
};

// The throughput proxy: alpha = min over directed links of cap/load.
[[nodiscard]] throughput_result ecmp_throughput(const network_graph& g,
                                                const traffic_matrix& tm);
[[nodiscard]] throughput_result ecmp_throughput(const network_graph& g,
                                                const traffic_matrix& tm,
                                                distance_cache& cache);
// Same proxy over loads computed elsewhere (e.g. incrementally).
[[nodiscard]] throughput_result throughput_from_link_loads(
    const network_graph& g, const link_load_report& loads);

// All-pairs ECMP path diversity: number of distinct shortest paths between
// two nodes (capped to avoid overflow on expanders).
[[nodiscard]] double mean_ecmp_path_count(const network_graph& g,
                                          int cap = 1024);
[[nodiscard]] double mean_ecmp_path_count(const network_graph& g,
                                          distance_cache& cache,
                                          int cap = 1024);

// Valiant load balancing: every flow is split over two ECMP phases,
// s -> w -> t, uniformly across all host-facing intermediates w. This is
// the routing family expanders and Jupiter's direct-connect mesh actually
// run (§4.2 cites Harsh et al.: shortest-path-only routing is why flat
// topologies underperformed on real hardware; §4.3's direct mesh relies
// on non-minimal routing through intermediate blocks).
[[nodiscard]] link_load_report compute_vlb_loads(const network_graph& g,
                                                 const traffic_matrix& tm);
[[nodiscard]] link_load_report compute_vlb_loads(const network_graph& g,
                                                 const traffic_matrix& tm,
                                                 distance_cache& cache);

[[nodiscard]] throughput_result vlb_throughput(const network_graph& g,
                                               const traffic_matrix& tm);
[[nodiscard]] throughput_result vlb_throughput(const network_graph& g,
                                               const traffic_matrix& tm,
                                               distance_cache& cache);

// Best of direct ECMP and VLB per the usual hybrid argument (route
// minimally when the matrix is benign, bounce when it is adversarial).
[[nodiscard]] throughput_result best_routing_throughput(
    const network_graph& g, const traffic_matrix& tm);

}  // namespace pn
