#include "topology/paths.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/check.h"
#include "common/rng.h"

namespace pn {

namespace {

// BFS shortest path avoiding masked nodes/edges; empty if unreachable.
node_path bfs_path(const network_graph& g, node_id s, node_id t,
                   const std::vector<bool>& node_masked,
                   // pn_lint: allow(hot-assoc) sparse Yen's-mask lookups, not per-node state
                   const std::set<std::pair<node_id, node_id>>& edge_masked) {
  if (node_masked[s.index()] || node_masked[t.index()]) return {};
  std::vector<node_id> prev(g.node_count(), node_id{});
  std::vector<bool> seen(g.node_count(), false);
  std::queue<node_id> q;
  q.push(s);
  seen[s.index()] = true;
  while (!q.empty()) {
    const node_id u = q.front();
    q.pop();
    if (u == t) break;
    for (const auto& adj : g.neighbors(u)) {
      const node_id v = adj.neighbor;
      if (seen[v.index()] || node_masked[v.index()]) continue;
      if (edge_masked.contains({u, v}) || edge_masked.contains({v, u})) {
        continue;
      }
      seen[v.index()] = true;
      prev[v.index()] = u;
      q.push(v);
    }
  }
  if (!seen[t.index()]) return {};
  node_path path;
  for (node_id u = t; u != s; u = prev[u.index()]) {
    path.push_back(u);
  }
  path.push_back(s);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::vector<node_path> k_shortest_paths(const network_graph& g, node_id s,
                                        node_id t, int k) {
  PN_CHECK(k >= 1);
  PN_CHECK(s != t);
  std::vector<node_path> result;
  std::vector<bool> no_mask(g.node_count(), false);

  const node_path first = bfs_path(g, s, t, no_mask, {});
  if (first.empty()) return result;
  result.push_back(first);

  // Candidate set ordered by (length, path) for determinism.
  // pn_lint: allow(hot-assoc) ordered iteration is the determinism contract
  std::set<std::pair<std::size_t, node_path>> candidates;

  while (static_cast<int>(result.size()) < k) {
    const node_path& last = result.back();
    // For each spur node in the previous path, mask the shared root's
    // outgoing edges used by existing paths and the root nodes.
    for (std::size_t i = 0; i + 1 < last.size(); ++i) {
      const node_id spur = last[i];
      const node_path root(last.begin(),
                           last.begin() + static_cast<std::ptrdiff_t>(i + 1));

      // pn_lint: allow(hot-assoc) tiny per-spur mask, ordered for determinism
      std::set<std::pair<node_id, node_id>> masked_edges;
      for (const node_path& p : result) {
        if (p.size() > i &&
            std::equal(root.begin(), root.end(), p.begin())) {
          masked_edges.insert({p[i], p[i + 1]});
        }
      }
      std::vector<bool> masked_nodes(g.node_count(), false);
      for (std::size_t j = 0; j < i; ++j) {
        masked_nodes[root[j].index()] = true;
      }

      const node_path spur_path =
          bfs_path(g, spur, t, masked_nodes, masked_edges);
      if (spur_path.empty()) continue;
      node_path total = root;
      total.pop_back();
      total.insert(total.end(), spur_path.begin(), spur_path.end());
      candidates.insert({total.size(), std::move(total)});
    }
    if (candidates.empty()) break;
    auto best = candidates.begin();
    // Skip duplicates of already-selected paths.
    while (best != candidates.end() &&
           std::find(result.begin(), result.end(), best->second) !=
               result.end()) {
      best = candidates.erase(best);
    }
    if (best == candidates.end()) break;
    result.push_back(best->second);
    candidates.erase(best);
  }
  return result;
}

int edge_connectivity(const network_graph& g, node_id s, node_id t,
                      int cap) {
  PN_CHECK(s != t);
  // Unit-capacity undirected max flow: residual use count per (edge,dir).
  // flow[e] in {-1, 0, +1}: +1 = used a->b, -1 = used b->a.
  std::vector<int> flow(g.edge_count(), 0);
  int total = 0;

  while (total < cap) {
    // BFS over residual edges.
    std::vector<edge_id> via(g.node_count());
    std::vector<node_id> prev(g.node_count(), node_id{});
    std::vector<bool> seen(g.node_count(), false);
    std::queue<node_id> q;
    q.push(s);
    seen[s.index()] = true;
    while (!q.empty() && !seen[t.index()]) {
      const node_id u = q.front();
      q.pop();
      for (const auto& adj : g.neighbors(u)) {
        const node_id v = adj.neighbor;
        if (seen[v.index()]) continue;
        const edge_info& info = g.edge(adj.edge);
        const int dir = info.a == u ? 1 : -1;
        // Residual capacity exists unless this direction already carries
        // a unit of flow.
        if (flow[adj.edge.index()] == dir) continue;
        seen[v.index()] = true;
        via[v.index()] = adj.edge;
        prev[v.index()] = u;
        q.push(v);
      }
    }
    if (!seen[t.index()]) break;
    // Augment along the path.
    for (node_id u = t; u != s; u = prev[u.index()]) {
      const edge_id e = via[u.index()];
      const edge_info& info = g.edge(e);
      flow[e.index()] += info.b == u ? 1 : -1;
    }
    ++total;
  }
  return total;
}

int sampled_min_edge_connectivity(const network_graph& g, int samples,
                                  std::uint64_t seed) {
  const auto hosts = g.host_facing_nodes();
  PN_CHECK(hosts.size() >= 2);
  rng r(seed);
  int min_conn = std::numeric_limits<int>::max();
  for (int i = 0; i < samples; ++i) {
    const node_id a = hosts[r.next_index(hosts.size())];
    node_id b = a;
    while (b == a) {
      b = hosts[r.next_index(hosts.size())];
    }
    min_conn = std::min(min_conn, edge_connectivity(g, a, b));
  }
  return min_conn;
}

}  // namespace pn
