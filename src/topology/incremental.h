// Delta-aware incremental evaluation of the topology hot metrics.
//
// The lifetime scenarios the paper cares about (expansion, repair,
// migration, decommission) mutate a handful of edges per step, then ask
// for the same global metrics again. incremental_metrics binds to one
// evolving graph and maintains, across mutations:
//
//   * a persistent distance_cache whose rows survive mutations that
//     provably cannot change them (see distance_cache / DESIGN.md §12);
//   * per-source path-length histograms over host-facing targets, with a
//     running global histogram updated by subtract-old/add-new for the
//     sources whose rows actually changed — integer arithmetic, so the
//     total is order-independent and the derived float stats go through
//     the same path_stats_from_hop_counts expressions as the reference;
//   * per-destination ECMP contribution arrays re-accumulated into total
//     loads in ascending destination order — the reference's exact float
//     addition order, so the loads are bit-identical.
//
// Bit-identity against the from-scratch implementations is the contract,
// not an aspiration: tests/property/delta_eval_property_test.cc drives
// thousands of randomized mutate/evaluate interleavings and compares
// every output bit.
//
// Not internally synchronized; use from one thread, like distance_cache.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "topology/distance_cache.h"
#include "topology/graph.h"
#include "topology/metrics.h"
#include "topology/routing.h"
#include "topology/traffic.h"

namespace pn {

class incremental_metrics {
 public:
  // Binds to `g` (whose node set must stay fixed while bound; edge
  // mutations are what this class is for). `traffic_per_host` configures
  // the uniform traffic matrix used by ecmp_loads()/ecmp_throughput() —
  // the same matrix uniform_traffic(g, rate) builds.
  incremental_metrics(const network_graph& g, gbps traffic_per_host);

  [[nodiscard]] const network_graph& graph() const { return *g_; }
  [[nodiscard]] distance_cache& dcache() { return dcache_; }
  [[nodiscard]] gbps traffic_per_host() const { return traffic_per_host_; }

  // Bit-identical to compute_path_length_stats(g, cache).
  [[nodiscard]] path_length_stats path_stats();

  // Bit-identical to compute_ecmp_loads(g, uniform_traffic(g, rate)) /
  // ecmp_throughput(...) on the current graph.
  [[nodiscard]] link_load_report ecmp_loads();
  [[nodiscard]] throughput_result ecmp_throughput();

  // Observability: how much work the deltas actually forced.
  [[nodiscard]] std::size_t stat_sources_recomputed() const {
    return stat_sources_recomputed_;
  }
  [[nodiscard]] std::size_t ecmp_dests_recomputed() const {
    return ecmp_dests_recomputed_;
  }

 private:
  const network_graph* g_;
  gbps traffic_per_host_;
  distance_cache dcache_;
  std::vector<node_id> endpoints_;  // host-facing, fixed while bound
  traffic_matrix tm_;

  // Path-stat state: per-source histograms over host-facing targets and
  // their running sum. hist_version_[si] is the dcache row version the
  // histogram was computed from; rows whose version did not move have
  // bit-identical contents, so their histograms are reused as-is.
  std::vector<std::vector<std::uint64_t>> hist_;       // [si][hop]
  std::vector<std::uint8_t> hist_valid_;               // [si]
  std::vector<std::uint64_t> hist_version_;            // [si]
  std::vector<std::uint64_t> hist_total_;              // [hop]

  // ECMP state: per-destination directed contribution arrays (dense over
  // edge ids) and the row version each was computed from. ecmp_epoch_ is
  // the graph epoch every valid contribution is current for (each
  // ecmp_loads() call brings all of them to the same epoch); nullopt
  // until the first call. A destination is recomputed when its row
  // version moved, or when a net flip since ecmp_epoch_ is *tight* in
  // its (unchanged) row — only tight edges are downhill arcs and can
  // carry or split flow.
  std::vector<std::vector<double>> contrib_ab_;        // [ti][edge]
  std::vector<std::vector<double>> contrib_ba_;        // [ti][edge]
  std::vector<std::uint8_t> contrib_valid_;            // [ti]
  std::vector<std::uint64_t> contrib_version_;         // [ti]
  std::optional<std::uint64_t> ecmp_epoch_;
  ecmp_dest_scratch scratch_;

  std::size_t stat_sources_recomputed_ = 0;
  std::size_t ecmp_dests_recomputed_ = 0;
};

}  // namespace pn
