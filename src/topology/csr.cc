#include "topology/csr.h"

#include <algorithm>

#include "common/check.h"

namespace pn {

csr_graph csr_graph::build(const network_graph& g, std::uint32_t row_slack) {
  csr_graph out;
  out.epoch = g.epoch();
  out.num_nodes = static_cast<std::uint32_t>(g.node_count());

  // The adjacency lists already exclude dead edges (remove_edge scrubs
  // them), so a single pass over them yields the live-only CSR with the
  // per-node neighbor order preserved. Each row is sized degree +
  // row_slack; the slack slots sit between row_end[u] and
  // row_offsets[u+1] and hold zeros until try_repair appends into them.
  std::size_t capacity = 0;
  for (std::size_t u = 0; u < g.node_count(); ++u) {
    capacity += g.neighbors(node_id{u}).size() + row_slack;
  }
  out.row_offsets.resize(g.node_count() + 1);
  out.row_end.resize(g.node_count());
  out.adjacency.assign(capacity, 0);
  out.arc_edge.assign(capacity, 0);
  out.arc_forward.assign(capacity, 0);

  std::uint32_t cursor = 0;
  for (std::size_t u = 0; u < g.node_count(); ++u) {
    out.row_offsets[u] = cursor;
    for (const auto& e : g.neighbors(node_id{u})) {
      out.adjacency[cursor] = static_cast<std::uint32_t>(e.neighbor.index());
      out.arc_edge[cursor] = static_cast<std::uint32_t>(e.edge.index());
      out.arc_forward[cursor] =
          g.edge(e.edge).a == node_id{u} ? std::uint8_t{1} : std::uint8_t{0};
      ++cursor;
    }
    out.row_end[u] = cursor;
    cursor += row_slack;
  }
  out.row_offsets[g.node_count()] = cursor;
  PN_CHECK(cursor == capacity);

  out.edge_capacity.resize(g.edge_count(), 0.0);
  out.live_edge_ids.reserve(g.edge_count());
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    out.edge_capacity[e] = g.edge(edge_id{e}).capacity.value();
    if (g.edge_alive(edge_id{e})) {
      out.live_edge_ids.push_back(static_cast<std::uint32_t>(e));
    }
  }
  return out;
}

bool csr_graph::try_repair(const network_graph& g,
                           std::span<const edge_flip> flips) {
  if (static_cast<std::size_t>(num_nodes) != g.node_count()) return false;

  // Feasibility first, mutation second: a mid-flight bail-out would leave
  // the arrays half-patched. Down flips free a slot in each endpoint row
  // before any up flip lands (net_edge_flips orders downs first), so the
  // check is on the *net* per-row arc count.
  std::vector<std::int32_t> delta(num_nodes, 0);
  for (const edge_flip& f : flips) {
    const int d = f.alive ? 1 : -1;
    delta[f.a.index()] += d;
    delta[f.b.index()] += d;
  }
  for (std::uint32_t u = 0; u < num_nodes; ++u) {
    if (delta[u] == 0) continue;
    const std::int64_t want =
        static_cast<std::int64_t>(row_end[u]) + delta[u];
    if (want > static_cast<std::int64_t>(row_offsets[u + 1])) return false;
  }

  auto drop_arc = [&](std::uint32_t u, std::uint32_t e) {
    // Order-preserving shift-left, mirroring the erase/remove_if
    // compaction network_graph::remove_edge applies to its list.
    const std::uint32_t lo = row_offsets[u];
    const std::uint32_t hi = row_end[u];
    std::uint32_t k = lo;
    while (k < hi && arc_edge[k] != e) ++k;
    PN_CHECK_MSG(k < hi, "repair: arc for edge " << e << " missing");
    for (std::uint32_t j = k; j + 1 < hi; ++j) {
      adjacency[j] = adjacency[j + 1];
      arc_edge[j] = arc_edge[j + 1];
      arc_forward[j] = arc_forward[j + 1];
    }
    row_end[u] = hi - 1;
  };
  auto append_arc = [&](std::uint32_t u, std::uint32_t head,
                        std::uint32_t e, std::uint8_t fwd) {
    const std::uint32_t k = row_end[u];
    adjacency[k] = head;
    arc_edge[k] = e;
    arc_forward[k] = fwd;
    row_end[u] = k + 1;
  };

  for (const edge_flip& f : flips) {
    const auto e = static_cast<std::uint32_t>(f.edge.index());
    const auto a = static_cast<std::uint32_t>(f.a.index());
    const auto b = static_cast<std::uint32_t>(f.b.index());
    auto it = std::lower_bound(live_edge_ids.begin(), live_edge_ids.end(), e);
    if (f.alive) {
      // a-side first, then b-side — the order add_edge/revive_edge append.
      append_arc(a, b, e, 1);
      append_arc(b, a, e, 0);
      PN_CHECK(it == live_edge_ids.end() || *it != e);
      live_edge_ids.insert(it, e);
    } else {
      drop_arc(a, e);
      drop_arc(b, e);
      PN_CHECK(it != live_edge_ids.end() && *it == e);
      live_edge_ids.erase(it);
    }
  }

  // New edge ids (including ones whose add was net-cancelled by a removal)
  // extend the dense capacity table.
  if (g.edge_count() > edge_capacity.size()) {
    const std::size_t old = edge_capacity.size();
    edge_capacity.resize(g.edge_count(), 0.0);
    for (std::size_t e = old; e < g.edge_count(); ++e) {
      edge_capacity[e] = g.edge(edge_id{e}).capacity.value();
    }
  }
  epoch = g.epoch();
  return true;
}

}  // namespace pn
