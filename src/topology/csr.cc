#include "topology/csr.h"

#include "common/check.h"

namespace pn {

csr_graph csr_graph::build(const network_graph& g) {
  csr_graph out;
  out.epoch = g.epoch();
  out.num_nodes = static_cast<std::uint32_t>(g.node_count());

  // The adjacency lists already exclude dead edges (remove_edge scrubs
  // them), so a single pass over them yields the live-only CSR with the
  // per-node neighbor order preserved.
  std::size_t arcs = 0;
  for (std::size_t u = 0; u < g.node_count(); ++u) {
    arcs += g.neighbors(node_id{u}).size();
  }
  out.row_offsets.resize(g.node_count() + 1);
  out.adjacency.resize(arcs);
  out.arc_edge.resize(arcs);
  out.arc_forward.resize(arcs);

  std::uint32_t cursor = 0;
  for (std::size_t u = 0; u < g.node_count(); ++u) {
    out.row_offsets[u] = cursor;
    for (const auto& e : g.neighbors(node_id{u})) {
      out.adjacency[cursor] = static_cast<std::uint32_t>(e.neighbor.index());
      out.arc_edge[cursor] = static_cast<std::uint32_t>(e.edge.index());
      out.arc_forward[cursor] =
          g.edge(e.edge).a == node_id{u} ? std::uint8_t{1} : std::uint8_t{0};
      ++cursor;
    }
  }
  out.row_offsets[g.node_count()] = cursor;
  PN_CHECK(cursor == arcs);

  out.edge_capacity.resize(g.edge_count(), 0.0);
  out.live_edge_ids.reserve(g.edge_count());
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    out.edge_capacity[e] = g.edge(edge_id{e}).capacity.value();
    if (g.edge_alive(edge_id{e})) {
      out.live_edge_ids.push_back(static_cast<std::uint32_t>(e));
    }
  }
  return out;
}

}  // namespace pn
