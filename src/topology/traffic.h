// Traffic matrices over host-facing switches.
//
// §4.1: "inter-rack and inter-block demands are often persistently and
// highly non-uniform; networks need the flexibility to cope with
// time-varying non-uniformity." Generators below produce the uniform,
// permutation, skewed, and hotspot matrices used by the throughput proxy.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "topology/graph.h"

namespace pn {

// Dense demand matrix between host-facing switches, in Gbps.
class traffic_matrix {
 public:
  explicit traffic_matrix(std::vector<node_id> endpoints);

  [[nodiscard]] const std::vector<node_id>& endpoints() const {
    return endpoints_;
  }
  [[nodiscard]] std::size_t size() const { return endpoints_.size(); }

  [[nodiscard]] double demand(std::size_t src, std::size_t dst) const;
  void set_demand(std::size_t src, std::size_t dst, double demand_gbps);
  void add_demand(std::size_t src, std::size_t dst, double demand_gbps);

  [[nodiscard]] double total_demand() const;
  // Scale every entry by s.
  void scale(double s);

 private:
  std::vector<node_id> endpoints_;
  std::vector<double> demand_;  // row-major size() x size()
};

// All-to-all: every ordered pair of distinct endpoints gets demand
// proportional to the product of their host counts, normalized so each
// host sources `per_host` of traffic in total.
[[nodiscard]] traffic_matrix uniform_traffic(const network_graph& g,
                                             gbps per_host);

// Random permutation: each endpoint sends all of its hosts' traffic to a
// single distinct endpoint (a worst-ish case for Clos, favorable for
// expanders in the literature).
[[nodiscard]] traffic_matrix permutation_traffic(const network_graph& g,
                                                 gbps per_host,
                                                 std::uint64_t seed);

// Skewed: destination popularity follows a Zipf-like law with exponent
// `alpha`; each host still sources `per_host`.
[[nodiscard]] traffic_matrix skewed_traffic(const network_graph& g,
                                            gbps per_host, double alpha,
                                            std::uint64_t seed);

// Hotspot: `hot_fraction` of endpoints receive `hot_share` of all traffic
// (the ML-induced imbalance of §3.4); the rest is uniform.
[[nodiscard]] traffic_matrix hotspot_traffic(const network_graph& g,
                                             gbps per_host,
                                             double hot_fraction,
                                             double hot_share,
                                             std::uint64_t seed);

}  // namespace pn
