// Immutable CSR (compressed sparse row) snapshot of a network_graph.
//
// network_graph stores adjacency as vector<vector<adjacency_entry>> —
// convenient for incremental construction and rewiring, but every BFS
// hop chases a pointer into a separately-allocated list. The metrics the
// evaluator runs per design point (path-length stats, ECMP loads, path
// counts, bisection sampling) are all BFS-shaped, so the topology stage
// flattens the graph once into three parallel arrays (offsets, neighbor
// node indices, edge ids) and sweeps those — the structure-of-arrays
// layout graph engines (Ligra, GAP) use for exactly this access pattern.
//
// The snapshot covers *live* edges only and records the graph epoch it
// was built at (network_graph::epoch()); holders compare epochs to detect
// staleness instead of guessing. Per-node neighbor order is preserved
// exactly from the adjacency lists, so algorithms that accumulate floats
// in neighbor order produce bit-identical results on either
// representation (asserted by tests/property/csr_property_test.cc).
//
// Delta path: build() can reserve per-row slack, and try_repair() applies
// a net edge-flip set in place — removals shift a row left (the same
// order-preserving compaction network_graph::remove_edge performs on its
// adjacency list), additions append into the slack (where add_edge/
// revive_edge append). A repaired snapshot is arc-for-arc identical to a
// fresh build of the mutated graph, so float accumulation order — and
// every downstream bit — is unchanged (asserted by csr tests).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "topology/graph.h"

namespace pn {

struct csr_graph {
  std::uint64_t epoch = 0;       // graph epoch at build time
  std::uint32_t num_nodes = 0;

  // Arcs: both directions of every live edge, grouped by tail node.
  // Arc k for node u lives at indices [row_offsets[u], row_end[u]);
  // [row_end[u], row_offsets[u+1]) is that row's unused repair slack
  // (empty when built with row_slack = 0).
  std::vector<std::uint32_t> row_offsets;  // num_nodes + 1 (row capacity)
  std::vector<std::uint32_t> row_end;      // num_nodes (live arc count end)
  std::vector<std::uint32_t> adjacency;    // head node index per arc
  std::vector<std::uint32_t> arc_edge;     // edge id per arc
  std::vector<std::uint8_t> arc_forward;   // 1 iff the arc's tail is edge.a

  // Live edge ids in ascending order, and per-edge capacity (indexed by
  // edge id over *all* edges, dead slots included, so edge_id indexing
  // stays direct).
  std::vector<std::uint32_t> live_edge_ids;
  std::vector<double> edge_capacity;

  [[nodiscard]] static csr_graph build(const network_graph& g,
                                       std::uint32_t row_slack = 0);

  // Applies the net flips of a journal window in place and bumps the
  // epoch to g.epoch(). Returns false — leaving the snapshot untouched —
  // when repair is impossible: the node count changed or some row's
  // additions exceed its slack; the caller rebuilds instead.
  [[nodiscard]] bool try_repair(const network_graph& g,
                                std::span<const edge_flip> flips);

  [[nodiscard]] bool stale(const network_graph& g) const {
    return epoch != g.epoch();
  }

  [[nodiscard]] std::uint32_t arc_begin(std::uint32_t u) const {
    return row_offsets[u];
  }
  [[nodiscard]] std::uint32_t arc_end(std::uint32_t u) const {
    return row_end[u];
  }

  [[nodiscard]] std::span<const std::uint32_t> neighbors(
      std::uint32_t u) const {
    return {adjacency.data() + row_offsets[u],
            adjacency.data() + row_end[u]};
  }

  [[nodiscard]] std::uint32_t degree(std::uint32_t u) const {
    return row_end[u] - row_offsets[u];
  }

  [[nodiscard]] std::size_t live_edge_count() const {
    return live_edge_ids.size();
  }
};

}  // namespace pn
