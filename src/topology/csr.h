// Immutable CSR (compressed sparse row) snapshot of a network_graph.
//
// network_graph stores adjacency as vector<vector<adjacency_entry>> —
// convenient for incremental construction and rewiring, but every BFS
// hop chases a pointer into a separately-allocated list. The metrics the
// evaluator runs per design point (path-length stats, ECMP loads, path
// counts, bisection sampling) are all BFS-shaped, so the topology stage
// flattens the graph once into three parallel arrays (offsets, neighbor
// node indices, edge ids) and sweeps those — the structure-of-arrays
// layout graph engines (Ligra, GAP) use for exactly this access pattern.
//
// The snapshot covers *live* edges only and records the graph epoch it
// was built at (network_graph::epoch()); holders compare epochs to detect
// staleness instead of guessing. Per-node neighbor order is preserved
// exactly from the adjacency lists, so algorithms that accumulate floats
// in neighbor order produce bit-identical results on either
// representation (asserted by tests/property/csr_property_test.cc).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "topology/graph.h"

namespace pn {

struct csr_graph {
  std::uint64_t epoch = 0;       // graph epoch at build time
  std::uint32_t num_nodes = 0;

  // Arcs: both directions of every live edge, grouped by tail node.
  // Arc k for node u lives at indices [row_offsets[u], row_offsets[u+1]).
  std::vector<std::uint32_t> row_offsets;  // num_nodes + 1
  std::vector<std::uint32_t> adjacency;    // head node index per arc
  std::vector<std::uint32_t> arc_edge;     // edge id per arc
  std::vector<std::uint8_t> arc_forward;   // 1 iff the arc's tail is edge.a

  // Live edge ids in ascending order, and per-edge capacity (indexed by
  // edge id over *all* edges, dead slots included, so edge_id indexing
  // stays direct).
  std::vector<std::uint32_t> live_edge_ids;
  std::vector<double> edge_capacity;

  [[nodiscard]] static csr_graph build(const network_graph& g);

  [[nodiscard]] bool stale(const network_graph& g) const {
    return epoch != g.epoch();
  }

  [[nodiscard]] std::span<const std::uint32_t> neighbors(
      std::uint32_t u) const {
    return {adjacency.data() + row_offsets[u],
            adjacency.data() + row_offsets[u + 1]};
  }

  [[nodiscard]] std::uint32_t degree(std::uint32_t u) const {
    return row_offsets[u + 1] - row_offsets[u];
  }

  [[nodiscard]] std::size_t live_edge_count() const {
    return live_edge_ids.size();
  }
};

}  // namespace pn
