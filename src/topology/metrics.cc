#include "topology/metrics.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace pn {

std::vector<int> bfs_distances(const network_graph& g, node_id src) {
  std::vector<int> dist(g.node_count(), -1);
  std::queue<node_id> q;
  dist[src.index()] = 0;
  q.push(src);
  while (!q.empty()) {
    const node_id u = q.front();
    q.pop();
    for (const auto& e : g.neighbors(u)) {
      if (dist[e.neighbor.index()] == -1) {
        dist[e.neighbor.index()] = dist[u.index()] + 1;
        q.push(e.neighbor);
      }
    }
  }
  return dist;
}

bool is_connected(const network_graph& g) {
  if (g.node_count() == 0) return true;
  const auto dist = bfs_distances(g, node_id{0});
  return std::none_of(dist.begin(), dist.end(),
                      [](int d) { return d < 0; });
}

path_length_stats compute_path_length_stats(const network_graph& g) {
  distance_cache cache(g);
  return compute_path_length_stats(g, cache);
}

path_length_stats compute_path_length_stats(const network_graph& g,
                                            distance_cache& cache) {
  const auto sources = g.host_facing_nodes();
  PN_CHECK_MSG(!sources.empty(), "graph has no host-facing nodes");
  cache.warm_all(sources, 1);  // batched fill of any missing rows

  // Integer histogram of pair distances instead of a flat sample vector:
  // every statistic sample_stats would derive — mean, max, interpolated
  // percentile, normalized histogram — is recomputed from the counts with
  // the same floating-point expressions. Hop counts are small integers, so
  // the sequential double sum sample_stats keeps is exact and equals the
  // integer total here; the outputs are bit-identical.
  std::vector<std::uint64_t> count(g.node_count(), 0);
  for (node_id s : sources) {
    const std::vector<int>& dist = cache.row(s);
    const int* const d = dist.data();
    for (node_id t : sources) {
      if (s == t) continue;
      const int dt = d[t.index()];
      PN_CHECK_MSG(dt >= 0, "graph is disconnected");
      ++count[static_cast<std::size_t>(dt)];
    }
  }
  const auto pairs = static_cast<std::uint64_t>(sources.size()) *
                     static_cast<std::uint64_t>(sources.size() - 1);
  PN_CHECK_MSG(pairs > 0, "need at least two host-facing nodes");
  return path_stats_from_hop_counts(count, pairs);
}

path_length_stats path_stats_from_hop_counts(
    std::span<const std::uint64_t> count, std::uint64_t pairs) {
  PN_CHECK(pairs > 0);
  path_length_stats out;
  std::uint64_t total_hops = 0;
  for (std::size_t h = 0; h < count.size(); ++h) {
    if (count[h] == 0) continue;
    out.diameter = static_cast<int>(h);
    total_hops += h * count[h];
  }
  out.mean =
      static_cast<double>(total_hops) / static_cast<double>(pairs);

  // sorted[k] of the pair-distance multiset is the smallest h whose
  // cumulative count exceeds k; interpolate exactly like
  // sample_stats::percentile does over the sorted samples.
  const auto order_stat = [&count, &out](std::uint64_t k) -> double {
    std::uint64_t cum = 0;
    for (std::size_t h = 0; h < count.size(); ++h) {
      cum += count[h];
      if (cum > k) return static_cast<double>(h);
    }
    return static_cast<double>(out.diameter);
  };
  if (pairs == 1) {
    out.p99 = order_stat(0);
  } else {
    const double pos = 0.99 * static_cast<double>(pairs - 1);
    const auto lo = static_cast<std::uint64_t>(std::floor(pos));
    const auto hi = static_cast<std::uint64_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    out.p99 = order_stat(lo) * (1.0 - frac) + order_stat(hi) * frac;
  }

  out.hop_histogram.assign(static_cast<std::size_t>(out.diameter) + 1, 0.0);
  for (std::size_t h = 0; h < out.hop_histogram.size(); ++h) {
    out.hop_histogram[h] =
        static_cast<double>(count[h]) / static_cast<double>(pairs);
  }
  return out;
}

double spectral_lambda2(const network_graph& g, int iterations) {
  distance_cache cache(g);
  return spectral_lambda2(g, cache, iterations);
}

double spectral_lambda2(const network_graph& g, distance_cache& cache,
                        int iterations) {
  const std::size_t n = g.node_count();
  if (n < 2) return 1.0;
  const csr_graph& csr = cache.csr();
  {
    const std::vector<int>& from0 = cache.row(node_id{0});
    if (std::any_of(from0.begin(), from0.end(),
                    [](int d) { return d < 0; })) {
      return 1.0;  // disconnected
    }
  }

  // Random-walk matrix P = D^-1 A. Its top eigenvector (eigenvalue 1) is
  // uniform in the degree measure; we deflate it and power-iterate.
  std::vector<double> deg(n, 0.0);
  double total_deg = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t d = csr.degree(static_cast<std::uint32_t>(i));
    if (d == 0) return 1.0;  // isolated switch: not an expander
    deg[i] = static_cast<double>(d);
    total_deg += deg[i];
  }

  rng r(0x5eedULL);
  std::vector<double> v(n), next(n);
  for (auto& x : v) x = r.next_double() - 0.5;

  auto deflate = [&](std::vector<double>& x) {
    // Remove the component along the stationary distribution pi_i =
    // deg_i / total_deg (left eigenvector), using the inner product in
    // which P is self-adjoint for the symmetrized walk.
    double dot = 0.0;
    for (std::size_t i = 0; i < n; ++i) dot += x[i] * deg[i];
    dot /= total_deg;
    for (std::size_t i = 0; i < n; ++i) x[i] -= dot;
  };
  auto norm = [&](const std::vector<double>& x) {
    double s = 0.0;
    for (double a : x) s += a * a;
    return std::sqrt(s);
  };

  deflate(v);
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::uint32_t i = 0; i < csr.num_nodes; ++i) {
      const double share = v[i] / deg[i];
      const std::uint32_t end = csr.arc_end(i);
      for (std::uint32_t k = csr.arc_begin(i); k < end; ++k) {
        next[csr.adjacency[k]] += share;
      }
    }
    deflate(next);
    const double nn = norm(next);
    if (nn < 1e-12) return 0.0;
    lambda = nn / norm(v);
    for (std::size_t i = 0; i < n; ++i) v[i] = next[i] / nn;
  }
  return std::min(lambda, 1.0);
}

bisection_estimate estimate_bisection(const network_graph& g,
                                      std::uint64_t seed, int trials) {
  distance_cache cache(g);
  return estimate_bisection(g, seed, trials, cache);
}

bisection_estimate estimate_bisection(const network_graph& g,
                                      std::uint64_t seed, int trials,
                                      distance_cache& cache) {
  const std::size_t n = g.node_count();
  PN_CHECK(n >= 2);
  const csr_graph& csr = cache.csr();
  rng r(seed);
  double best_cut = std::numeric_limits<double>::infinity();

  // Flat BFS frontier and membership bitmap, reused across trials; the
  // live-edge list comes from the snapshot instead of being re-gathered
  // (it used to be allocated inside this loop) per trial.
  std::vector<std::uint32_t> frontier(n);
  std::vector<bool> in_a;
  for (int t = 0; t < trials; ++t) {
    // Grow a BFS ball from a random seed to n/2 nodes: this finds locality
    // cuts (the weak bisections) far better than uniform random halves.
    in_a.assign(n, false);
    std::size_t size_a = 0;
    std::uint32_t head = 0;
    std::uint32_t tail = 0;
    const auto start = static_cast<std::uint32_t>(r.next_index(n));
    frontier[tail++] = start;
    in_a[start] = true;
    ++size_a;
    while (size_a < n / 2 && head < tail) {
      const std::uint32_t u = frontier[head++];
      const std::uint32_t end = csr.arc_end(u);
      for (std::uint32_t k = csr.arc_begin(u); k < end; ++k) {
        if (size_a >= n / 2) break;
        const std::uint32_t v = csr.adjacency[k];
        if (!in_a[v]) {
          in_a[v] = true;
          ++size_a;
          frontier[tail++] = v;
        }
      }
    }
    // Top up with random nodes if BFS stalled (disconnected remainder).
    while (size_a < n / 2) {
      const std::size_t u = r.next_index(n);
      if (!in_a[u]) {
        in_a[u] = true;
        ++size_a;
      }
    }

    double cut = 0.0;
    for (const std::uint32_t e : csr.live_edge_ids) {
      const edge_info& info = g.edge(edge_id{e});
      if (in_a[info.a.index()] != in_a[info.b.index()]) {
        cut += csr.edge_capacity[e];
      }
    }
    best_cut = std::min(best_cut, cut);
  }

  bisection_estimate out;
  out.cut_gbps = best_cut;
  const auto hosts = static_cast<double>(g.total_hosts());
  out.per_host_gbps = hosts > 0 ? best_cut / (hosts / 2.0) : 0.0;
  return out;
}

}  // namespace pn
