#include "topology/metrics.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace pn {

std::vector<int> bfs_distances(const network_graph& g, node_id src) {
  std::vector<int> dist(g.node_count(), -1);
  std::queue<node_id> q;
  dist[src.index()] = 0;
  q.push(src);
  while (!q.empty()) {
    const node_id u = q.front();
    q.pop();
    for (const auto& e : g.neighbors(u)) {
      if (dist[e.neighbor.index()] == -1) {
        dist[e.neighbor.index()] = dist[u.index()] + 1;
        q.push(e.neighbor);
      }
    }
  }
  return dist;
}

bool is_connected(const network_graph& g) {
  if (g.node_count() == 0) return true;
  const auto dist = bfs_distances(g, node_id{0});
  return std::none_of(dist.begin(), dist.end(),
                      [](int d) { return d < 0; });
}

path_length_stats compute_path_length_stats(const network_graph& g) {
  const auto sources = g.host_facing_nodes();
  PN_CHECK_MSG(!sources.empty(), "graph has no host-facing nodes");

  path_length_stats out;
  sample_stats hops;
  std::vector<bool> is_source(g.node_count(), false);
  for (node_id n : sources) is_source[n.index()] = true;

  for (node_id s : sources) {
    const auto dist = bfs_distances(g, s);
    for (node_id t : sources) {
      if (s == t) continue;
      PN_CHECK_MSG(dist[t.index()] >= 0, "graph is disconnected");
      hops.add(static_cast<double>(dist[t.index()]));
    }
  }
  out.mean = hops.mean();
  out.diameter = static_cast<int>(hops.max());
  out.p99 = hops.percentile(0.99);
  out.hop_histogram.assign(static_cast<std::size_t>(out.diameter) + 1, 0.0);
  for (double h : hops.samples()) {
    out.hop_histogram[static_cast<std::size_t>(h)] += 1.0;
  }
  for (double& f : out.hop_histogram) {
    f /= static_cast<double>(hops.count());
  }
  return out;
}

double spectral_lambda2(const network_graph& g, int iterations) {
  const std::size_t n = g.node_count();
  if (n < 2 || !is_connected(g)) return 1.0;

  // Random-walk matrix P = D^-1 A. Its top eigenvector (eigenvalue 1) is
  // uniform in the degree measure; we deflate it and power-iterate.
  std::vector<double> deg(n, 0.0);
  double total_deg = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    deg[i] = static_cast<double>(g.degree(node_id{i}));
    total_deg += deg[i];
    if (deg[i] == 0.0) return 1.0;  // isolated switch: not an expander
  }

  rng r(0x5eedULL);
  std::vector<double> v(n), next(n);
  for (auto& x : v) x = r.next_double() - 0.5;

  auto deflate = [&](std::vector<double>& x) {
    // Remove the component along the stationary distribution pi_i =
    // deg_i / total_deg (left eigenvector), using the inner product in
    // which P is self-adjoint for the symmetrized walk.
    double dot = 0.0;
    for (std::size_t i = 0; i < n; ++i) dot += x[i] * deg[i];
    dot /= total_deg;
    for (std::size_t i = 0; i < n; ++i) x[i] -= dot;
  };
  auto norm = [&](const std::vector<double>& x) {
    double s = 0.0;
    for (double a : x) s += a * a;
    return std::sqrt(s);
  };

  deflate(v);
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double share = v[i] / deg[i];
      for (const auto& e : g.neighbors(node_id{i})) {
        next[e.neighbor.index()] += share;
      }
    }
    deflate(next);
    const double nn = norm(next);
    if (nn < 1e-12) return 0.0;
    lambda = nn / norm(v);
    for (std::size_t i = 0; i < n; ++i) v[i] = next[i] / nn;
  }
  return std::min(lambda, 1.0);
}

bisection_estimate estimate_bisection(const network_graph& g,
                                      std::uint64_t seed, int trials) {
  const std::size_t n = g.node_count();
  PN_CHECK(n >= 2);
  rng r(seed);
  double best_cut = std::numeric_limits<double>::infinity();

  for (int t = 0; t < trials; ++t) {
    // Grow a BFS ball from a random seed to n/2 nodes: this finds locality
    // cuts (the weak bisections) far better than uniform random halves.
    std::vector<bool> in_a(n, false);
    std::size_t size_a = 0;
    std::queue<node_id> q;
    const node_id start{r.next_index(n)};
    q.push(start);
    in_a[start.index()] = true;
    ++size_a;
    std::vector<node_id> frontier_overflow;
    while (size_a < n / 2 && !q.empty()) {
      const node_id u = q.front();
      q.pop();
      for (const auto& e : g.neighbors(u)) {
        if (size_a >= n / 2) break;
        if (!in_a[e.neighbor.index()]) {
          in_a[e.neighbor.index()] = true;
          ++size_a;
          q.push(e.neighbor);
        }
      }
    }
    // Top up with random nodes if BFS stalled (disconnected remainder).
    while (size_a < n / 2) {
      const node_id u{r.next_index(n)};
      if (!in_a[u.index()]) {
        in_a[u.index()] = true;
        ++size_a;
      }
    }

    double cut = 0.0;
    for (edge_id e : g.live_edges()) {
      const edge_info& info = g.edge(e);
      if (in_a[info.a.index()] != in_a[info.b.index()]) {
        cut += info.capacity.value();
      }
    }
    best_cut = std::min(best_cut, cut);
  }

  bisection_estimate out;
  out.cut_gbps = best_cut;
  const auto hosts = static_cast<double>(g.total_hosts());
  out.per_host_gbps = hosts > 0 ? best_cut / (hosts / 2.0) : 0.0;
  return out;
}

}  // namespace pn
