// Graphviz DOT export of switch graphs, for design review and debugging
// of generated fabrics.
#pragma once

#include <string>

#include "topology/graph.h"

namespace pn {

struct dot_options {
  bool color_by_layer = true;  // ToR / aggregation / spine shades
  bool label_capacity = false; // annotate edges with Gbps
  // Collapse parallel edges into one with a multiplicity label.
  bool merge_parallel = true;
};

[[nodiscard]] std::string to_dot(const network_graph& g,
                                 const dot_options& opt = {});

}  // namespace pn
