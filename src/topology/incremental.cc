#include "topology/incremental.h"

#include "common/check.h"

namespace pn {

incremental_metrics::incremental_metrics(const network_graph& g,
                                         gbps traffic_per_host)
    : g_(&g),
      traffic_per_host_(traffic_per_host),
      dcache_(g),
      endpoints_(g.host_facing_nodes()),
      tm_(uniform_traffic(g, traffic_per_host)) {
  PN_CHECK_MSG(!endpoints_.empty(), "graph has no host-facing nodes");
  const std::size_t s = endpoints_.size();
  hist_.resize(s);
  hist_valid_.assign(s, 0);
  hist_version_.assign(s, 0);
  hist_total_.assign(g.node_count(), 0);
  contrib_ab_.resize(s);
  contrib_ba_.resize(s);
  contrib_valid_.assign(s, 0);
  contrib_version_.assign(s, 0);
}

path_length_stats incremental_metrics::path_stats() {
  PN_CHECK_MSG(g_->node_count() == hist_total_.size(),
               "node set changed under incremental_metrics");
  dcache_.warm_all(endpoints_, 1);
  const std::size_t n = g_->node_count();
  for (std::size_t si = 0; si < endpoints_.size(); ++si) {
    const node_id s = endpoints_[si];
    const std::uint64_t v = dcache_.row_version(s);
    if (hist_valid_[si] != 0 && hist_version_[si] == v) continue;
    const std::vector<int>& row = dcache_.row(s);
    std::vector<std::uint64_t>& h = hist_[si];
    if (hist_valid_[si] != 0) {
      // Retire this source's old contribution; integer counts make the
      // subtract/re-add exact and order-independent.
      for (std::size_t k = 0; k < h.size(); ++k) hist_total_[k] -= h[k];
    }
    h.assign(n, 0);
    for (node_id t : endpoints_) {
      if (t == s) continue;
      const int dt = row[t.index()];
      PN_CHECK_MSG(dt >= 0, "graph is disconnected");
      ++h[static_cast<std::size_t>(dt)];
    }
    for (std::size_t k = 0; k < n; ++k) hist_total_[k] += h[k];
    hist_valid_[si] = 1;
    hist_version_[si] = v;
    ++stat_sources_recomputed_;
  }
  const auto pairs = static_cast<std::uint64_t>(endpoints_.size()) *
                     static_cast<std::uint64_t>(endpoints_.size() - 1);
  PN_CHECK_MSG(pairs > 0, "need at least two host-facing nodes");
  return path_stats_from_hop_counts(hist_total_, pairs);
}

link_load_report incremental_metrics::ecmp_loads() {
  dcache_.warm_all(endpoints_, 1);
  const std::uint64_t now = g_->epoch();
  const std::size_t edges = g_->edge_count();

  // Net flips since the epoch all valid contributions are current for; a
  // torn window dirties everything (conservative, never wrong).
  bool torn = !ecmp_epoch_.has_value();
  std::vector<edge_flip> flips;
  if (!torn && *ecmp_epoch_ != now) {
    const auto window = g_->deltas_since(*ecmp_epoch_);
    if (window.has_value()) {
      flips = net_edge_flips(*window);
    } else {
      torn = true;
    }
  }

  for (std::size_t ti = 0; ti < endpoints_.size(); ++ti) {
    const node_id t = endpoints_[ti];
    const std::vector<int>& row = dcache_.row(t);
    const std::uint64_t v = dcache_.row_version(t);
    bool dirty =
        torn || contrib_valid_[ti] == 0 || contrib_version_[ti] != v;
    if (!dirty) {
      for (const edge_flip& f : flips) {
        const int da = row[f.a.index()];
        const int db = row[f.b.index()];
        if (da < 0 || db < 0) continue;  // no flow enters the dark side
        const int diff = da - db;
        if (diff == 1 || diff == -1) {  // tight: a downhill arc moved
          dirty = true;
          break;
        }
      }
    }
    if (dirty) {
      contrib_ab_[ti].assign(edges, 0.0);
      contrib_ba_[ti].assign(edges, 0.0);
      accumulate_ecmp_dest_loads(dcache_.csr(), row, tm_, ti, scratch_,
                                 contrib_ab_[ti].data(),
                                 contrib_ba_[ti].data());
      contrib_valid_[ti] = 1;
      contrib_version_[ti] = v;
      ++ecmp_dests_recomputed_;
    } else if (contrib_ab_[ti].size() != edges) {
      // Edges added since this contribution was computed carry no flow
      // for it (they are not tight in this row), so extend with zeros.
      contrib_ab_[ti].resize(edges, 0.0);
      contrib_ba_[ti].resize(edges, 0.0);
    }
  }
  ecmp_epoch_ = now;

  // Re-accumulate totals in ascending destination order. Each directed
  // arc receives at most one share per destination, contributions are
  // nonnegative, and x + 0.0 == x bitwise for nonnegative x — so this
  // sum replays the reference's float additions exactly (the zeros
  // interleaved for non-contributing destinations change no bits).
  link_load_report out;
  out.loads_ab.assign(edges, 0.0);
  out.loads_ba.assign(edges, 0.0);
  double* const ab = out.loads_ab.data();
  double* const ba = out.loads_ba.data();
  for (std::size_t ti = 0; ti < endpoints_.size(); ++ti) {
    const double* const cab = contrib_ab_[ti].data();
    const double* const cba = contrib_ba_[ti].data();
    for (std::size_t e = 0; e < edges; ++e) {
      ab[e] += cab[e];
      ba[e] += cba[e];
    }
  }
  finalize_link_loads(*g_, out);
  return out;
}

throughput_result incremental_metrics::ecmp_throughput() {
  return throughput_from_link_loads(*g_, ecmp_loads());
}

}  // namespace pn
