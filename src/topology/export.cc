#include "topology/export.h"

#include <map>
#include <sstream>

#include "common/strings.h"

namespace pn {

namespace {

const char* layer_color(int layer) {
  switch (layer) {
    case 0:
      return "#8ecae6";  // ToR
    case 1:
      return "#ffb703";  // aggregation
    default:
      return "#fb8500";  // spine and above
  }
}

}  // namespace

std::string to_dot(const network_graph& g, const dot_options& opt) {
  std::ostringstream out;
  out << "graph \"" << g.family << "\" {\n";
  out << "  node [shape=box, style=filled];\n";
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const node_info& n = g.node(node_id{i});
    out << "  n" << i << " [label=\"" << n.name << "\"";
    if (opt.color_by_layer) {
      out << ", fillcolor=\"" << layer_color(n.layer) << "\"";
    }
    out << "];\n";
  }

  if (opt.merge_parallel) {
    // pn_lint: allow(hot-assoc) export writes edges in key order by contract
    std::map<std::pair<node_id, node_id>, std::pair<int, double>> merged;
    for (edge_id e : g.live_edges()) {
      const edge_info& info = g.edge(e);
      auto key = std::minmax(info.a, info.b);
      auto& [count, capacity] = merged[key];
      ++count;
      capacity += info.capacity.value();
    }
    for (const auto& [key, cc] : merged) {
      out << "  n" << key.first.index() << " -- n" << key.second.index();
      std::string label;
      if (cc.first > 1) label = str_format("x%d", cc.first);
      if (opt.label_capacity) {
        if (!label.empty()) label += " ";
        label += str_format("%.0fG", cc.second);
      }
      if (!label.empty()) out << " [label=\"" << label << "\"]";
      out << ";\n";
    }
  } else {
    for (edge_id e : g.live_edges()) {
      const edge_info& info = g.edge(e);
      out << "  n" << info.a.index() << " -- n" << info.b.index();
      if (opt.label_capacity) {
        out << " [label=\"" << str_format("%.0fG", info.capacity.value())
            << "\"]";
      }
      out << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace pn
