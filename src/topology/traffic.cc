#include "topology/traffic.h"

#include <numeric>

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace pn {

traffic_matrix::traffic_matrix(std::vector<node_id> endpoints)
    : endpoints_(std::move(endpoints)),
      demand_(endpoints_.size() * endpoints_.size(), 0.0) {
  PN_CHECK(!endpoints_.empty());
}

double traffic_matrix::demand(std::size_t src, std::size_t dst) const {
  PN_CHECK(src < size() && dst < size());
  return demand_[src * size() + dst];
}

void traffic_matrix::set_demand(std::size_t src, std::size_t dst,
                                double demand_gbps) {
  PN_CHECK(src < size() && dst < size());
  PN_CHECK(demand_gbps >= 0.0);
  demand_[src * size() + dst] = demand_gbps;
}

void traffic_matrix::add_demand(std::size_t src, std::size_t dst,
                                double demand_gbps) {
  set_demand(src, dst, demand(src, dst) + demand_gbps);
}

double traffic_matrix::total_demand() const {
  double total = 0.0;
  for (double d : demand_) total += d;
  return total;
}

void traffic_matrix::scale(double s) {
  PN_CHECK(s >= 0.0);
  for (double& d : demand_) d *= s;
}

namespace {

std::vector<double> host_counts(const network_graph& g,
                                const std::vector<node_id>& eps) {
  std::vector<double> h;
  h.reserve(eps.size());
  for (node_id n : eps) {
    h.push_back(static_cast<double>(g.node(n).host_ports));
  }
  return h;
}

}  // namespace

traffic_matrix uniform_traffic(const network_graph& g, gbps per_host) {
  const auto eps = g.host_facing_nodes();
  traffic_matrix tm(eps);
  const auto hosts = host_counts(g, eps);
  const double total_hosts =
      std::accumulate(hosts.begin(), hosts.end(), 0.0);
  for (std::size_t s = 0; s < eps.size(); ++s) {
    const double source_total = hosts[s] * per_host.value();
    const double other_hosts = total_hosts - hosts[s];
    if (other_hosts <= 0.0) continue;
    for (std::size_t t = 0; t < eps.size(); ++t) {
      if (s == t) continue;
      tm.set_demand(s, t, source_total * hosts[t] / other_hosts);
    }
  }
  return tm;
}

traffic_matrix permutation_traffic(const network_graph& g, gbps per_host,
                                   std::uint64_t seed) {
  const auto eps = g.host_facing_nodes();
  traffic_matrix tm(eps);
  const auto hosts = host_counts(g, eps);
  rng r(seed);

  // Random derangement by shuffling until no fixed point (expected ~e tries).
  std::vector<std::size_t> perm(eps.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    r.shuffle(perm);
    bool fixed = false;
    for (std::size_t i = 0; i < perm.size(); ++i) {
      if (perm[i] == i) {
        fixed = true;
        break;
      }
    }
    if (!fixed) break;
  }
  for (std::size_t s = 0; s < eps.size(); ++s) {
    if (perm[s] == s) continue;  // give up on stray fixed points
    tm.set_demand(s, perm[s], hosts[s] * per_host.value());
  }
  return tm;
}

traffic_matrix skewed_traffic(const network_graph& g, gbps per_host,
                              double alpha, std::uint64_t seed) {
  PN_CHECK(alpha >= 0.0);
  const auto eps = g.host_facing_nodes();
  traffic_matrix tm(eps);
  const auto hosts = host_counts(g, eps);
  rng r(seed);

  // Random rank assignment, Zipf weights by rank.
  std::vector<std::size_t> rank(eps.size());
  for (std::size_t i = 0; i < rank.size(); ++i) rank[i] = i;
  r.shuffle(rank);
  std::vector<double> weight(eps.size());
  for (std::size_t i = 0; i < eps.size(); ++i) {
    weight[i] = 1.0 / std::pow(static_cast<double>(rank[i]) + 1.0, alpha);
  }

  for (std::size_t s = 0; s < eps.size(); ++s) {
    const double source_total = hosts[s] * per_host.value();
    double wsum = 0.0;
    for (std::size_t t = 0; t < eps.size(); ++t) {
      if (t != s) wsum += weight[t];
    }
    if (wsum <= 0.0) continue;
    for (std::size_t t = 0; t < eps.size(); ++t) {
      if (s == t) continue;
      tm.set_demand(s, t, source_total * weight[t] / wsum);
    }
  }
  return tm;
}

traffic_matrix hotspot_traffic(const network_graph& g, gbps per_host,
                               double hot_fraction, double hot_share,
                               std::uint64_t seed) {
  PN_CHECK(hot_fraction > 0.0 && hot_fraction <= 1.0);
  PN_CHECK(hot_share >= 0.0 && hot_share <= 1.0);
  const auto eps = g.host_facing_nodes();
  traffic_matrix tm(eps);
  const auto hosts = host_counts(g, eps);
  rng r(seed);

  std::vector<std::size_t> order(eps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  r.shuffle(order);
  const auto hot_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(hot_fraction *
                                  static_cast<double>(eps.size())));
  std::vector<bool> hot(eps.size(), false);
  for (std::size_t i = 0; i < hot_count; ++i) hot[order[i]] = true;

  for (std::size_t s = 0; s < eps.size(); ++s) {
    const double source_total = hosts[s] * per_host.value();
    double hot_targets = 0.0;
    double cold_targets = 0.0;
    for (std::size_t t = 0; t < eps.size(); ++t) {
      if (t == s) continue;
      (hot[t] ? hot_targets : cold_targets) += 1.0;
    }
    for (std::size_t t = 0; t < eps.size(); ++t) {
      if (s == t) continue;
      double share;
      if (hot[t]) {
        share = hot_targets > 0 ? hot_share / hot_targets : 0.0;
      } else {
        share = cold_targets > 0 ? (1.0 - hot_share) / cold_targets : 0.0;
      }
      tm.set_demand(s, t, source_total * share);
    }
  }
  return tm;
}

}  // namespace pn
