// Capacity planning the §2.3/§5.4 way: pick a fabric not just by day-1
// price but by lifecycle cost, materials risk, and how it behaves while
// being grown and repaired.
//
// Walks one planning cycle: (1) lifecycle TCO for two candidate fabrics;
// (2) the procurement order book and a vendor-outage stress test; (3) a
// growth campaign scheduled into drain windows under an availability
// floor; (4) the fabric's resilience while the repair queue is deep.
#include <iostream>

#include "core/physnet.h"

int main() {
  using namespace pn;
  using namespace pn::literals;

  // --- Candidates: a 3-tier fat-tree vs a 2-tier leaf-spine. ---
  const network_graph ft = build_fat_tree(12, 100_gbps);
  leaf_spine_params lsp;
  lsp.leaves = 27;
  lsp.spines = 16;
  lsp.hosts_per_leaf = 16;
  const network_graph ls = build_leaf_spine(lsp);

  // (1) Lifecycle: 6 years, three expansions for the fat-tree (the
  // leaf-spine cannot grow past its spine radix — its expansion story is
  // a forklift, which is the §5.4 point).
  clos_expansion_params grow;
  grow.from_pods = 4;
  grow.to_pods = 8;
  grow.wiring = spine_wiring::patch_panel;

  std::vector<lifecycle_cost> costs;
  {
    lifecycle_options opt;
    opt.evaluation.run_throughput = false;
    opt.expansions = {grow, grow, grow};
    auto lc = compute_lifecycle_cost(ft, "fat-tree k=12 (+3 expansions)",
                                     opt);
    if (!lc.is_ok()) {
      std::cerr << lc.error().to_string() << "\n";
      return 1;
    }
    costs.push_back(lc.value());
    lifecycle_options flat;
    flat.evaluation.run_throughput = false;
    auto lc2 = compute_lifecycle_cost(ls, "leaf-spine 27x16 (no growth "
                                          "path)",
                                      flat);
    costs.push_back(lc2.value());
  }
  lifecycle_table(costs).print(std::cout, "(1) 6-year lifecycle cost");

  // (2) Materials & supply chain for the fat-tree.
  evaluation_options eopt;
  eopt.run_repair_sim = false;
  eopt.run_throughput = false;
  const auto ev = evaluate_design(ft, "ft12", eopt);
  const procurement_order order =
      build_procurement_order(ev.value().cables, {});
  std::cout << "\n(2) materials: " << order.skus.size() << " SKUs, "
            << order.total_cables << " cables, "
            << human_dollars(order.total_cost.value())
            << ", longest lead " << order.max_lead_time_days << " days, "
            << order.sole_source_skus << " sole-source SKUs\n";
  const auto outage = assess_vendor_outage(order, "PhotonCord", 45.0);
  std::cout << "    PhotonCord outage (45d): " << outage.blocked_skus
            << " SKUs blocked -> " << outage.delay_days
            << " days of schedule risk (no second source for active "
               "optics)\n";

  // (3) The growth campaign as drain windows: each patch-panel drain
  // takes a slice of the fabric down; keep >= 90% capacity up.
  const expansion_plan plan = plan_clos_expansion(grow);
  std::vector<drain_item> drains;
  for (int i = 0; i < plan.drain_windows; ++i) {
    drains.push_back({str_format("panel%02d", i),
                      1.0 / (2.0 * plan.drain_windows),
                      hours_from_minutes(20.0), 2});
  }
  drain_schedule_params dsp;
  dsp.capacity_floor = 0.90;
  dsp.technicians_available = 8;
  const auto schedule = schedule_drains(drains, dsp);
  if (schedule.is_ok()) {
    std::cout << "\n(3) expansion campaign: " << plan.drain_windows
              << " panel drains packed into "
              << schedule.value().waves.size() << " waves, makespan "
              << schedule.value().makespan.value()
              << " h, worst concurrent drain "
              << schedule.value().peak_drained_share * 100.0 << "%\n";
  }

  // (4) Resilience while repairs queue up.
  const traffic_matrix tm = uniform_traffic(ft, 10_gbps);
  for (const int concurrent : {1, 3, 6}) {
    degradation_params dp;
    dp.concurrent_switch_failures = concurrent;
    dp.samples = 30;
    const auto rep = analyze_degradation(ft, tm, dp);
    std::cout << (concurrent == 1 ? "\n(4) " : "    ") << concurrent
              << " concurrent failures: mean capacity "
              << rep.mean_capacity_retention * 100.0 << "%, worst "
              << rep.worst_capacity_retention * 100.0 << "%\n";
  }

  std::cout << "\nDecision inputs the paper says to demand (§5.4): the "
               "day-1 sticker is only\none row of this output.\n";
  return 0;
}
