// The §4.3 case study: converting a live Jupiter-style fabric from
// fat-tree (aggregation blocks -> spine blocks via OCS) to direct
// aggregation-to-aggregation connectivity, one drained OCS rack at a
// time, and what the indirection layer buys during the redesign.
#include <iostream>

#include "core/physnet.h"

int main() {
  using namespace pn;
  using namespace pn::literals;

  jupiter_params params;
  params.agg_blocks = 16;
  params.tors_per_block = 8;
  params.mbs_per_block = 4;
  params.uplinks_per_mb = 16;
  params.spine_blocks = 8;
  params.ocs_count = 16;
  params.link_rate = 200_gbps;

  const jupiter_fabric before = build_jupiter(params);
  jupiter_params direct_params = params;
  direct_params.mode = jupiter_mode::direct;
  const jupiter_fabric after = build_jupiter(direct_params);

  // What the redesign changes in the abstract graph.
  const auto before_stats = compute_path_length_stats(before.graph);
  const auto after_stats = compute_path_length_stats(after.graph);
  text_table shape({"fabric", "switches", "fabric links", "mean path",
                    "diameter"});
  shape.row()
      .cell("fat-tree (spine blocks)")
      .cell(before.graph.node_count())
      .cell(before.graph.edge_count())
      .cell(before_stats.mean, 2)
      .cell(before_stats.diameter);
  shape.row()
      .cell("direct (OCS mesh)")
      .cell(after.graph.node_count())
      .cell(after.graph.edge_count())
      .cell(after_stats.mean, 2)
      .cell(after_stats.diameter);
  shape.print(std::cout, "before / after the redesign");

  // The physical conversion plan, at three drain concurrencies.
  text_table plan({"concurrent drains", "fiber ops", "labor h",
                   "labor h/rack", "elapsed h", "capacity floor",
                   "miswires caught"});
  for (int concurrent : {1, 2, 4}) {
    migration_params mp;
    mp.concurrent_drains = concurrent;
    const migration_report rep = plan_jupiter_migration(before, mp);
    plan.row()
        .cell(concurrent)
        .cell(rep.fiber_disconnects + rep.fiber_connects)
        .cell(rep.labor.value(), 1)
        .cell(rep.labor_per_rack.value(), 1)
        .cell(rep.elapsed.value(), 1)
        .cell_pct(rep.min_residual_capacity)
        .cell(rep.miswires_caught);
  }
  plan.print(std::cout,
             "live conversion plan (drain one OCS rack, move fibers, "
             "validate, un-drain)");

  std::cout << "\nLessons from §4.3, reproduced:\n"
               "  1. indirection made the redesign possible at all — every\n"
               "     fiber move happens at an OCS shelf, not across the "
               "floor;\n"
               "  2. the control plane segments the work into low-impact "
               "chunks:\n"
               "     more concurrency finishes sooner but cuts the capacity "
               "floor.\n";
  return 0;
}
