// Quickstart: evaluate the physical deployability of one design.
//
// Builds a k=8 fat-tree, runs the full pipeline (placement -> cabling ->
// deployment simulation -> repair simulation) and prints the report the
// paper argues should accompany every topology proposal.
#include <iostream>

#include "core/physnet.h"

int main() {
  using namespace pn;
  using namespace pn::literals;

  // 1. An abstract design: 8-ary fat-tree, 128 hosts, 100G links.
  const network_graph g = build_fat_tree(8, 100_gbps);
  std::cout << "design: " << g.family << " with " << g.node_count()
            << " switches, " << g.total_hosts() << " hosts, "
            << g.edge_count() << " links\n";

  // 2. Evaluate with default physical assumptions (auto-sized floor,
  //    block placement, pre-built bundles, 8 technicians).
  evaluation_options opt;
  opt.repair.horizon = hours{3.0 * 365 * 24};
  const auto ev = evaluate_design(g, "fat-tree k=8", opt);
  if (!ev.is_ok()) {
    std::cerr << "evaluation failed: " << ev.error().to_string() << "\n";
    return 1;
  }

  // 3. The deployability report.
  const std::vector<deployability_report> reports{ev.value().report};
  abstract_metrics_table(reports).print(std::cout, "abstract metrics");
  cost_table(reports).print(std::cout, "capital cost & power");
  deployability_table(reports).print(std::cout, "physical deployability");
  operations_table(reports).print(std::cout, "operations");

  // 4. A few details the tables summarize.
  const evaluation& e = ev.value();
  std::cout << "\nfloor: " << e.floor.params().rows << " rows x "
            << e.floor.params().racks_per_row << " racks\n";
  std::cout << "bundles: " << e.bundles.viable_bundles << " pre-buildable ("
            << e.bundles.distinct_skus << " SKUs), saving "
            << (e.bundles.loose_install_time - e.bundles.bundled_install_time)
                   .value()
            << " install hours vs loose cables\n";
  std::cout << "deployment: " << e.deployment.defects_introduced
            << " defects introduced, " << e.deployment.defects_caught
            << " caught by link tests\n";
  return 0;
}
