// Change review the declarative way (§5.2 / Al-Fares et al.):
// the current network is a model, the proposed network is a model, the
// change is their diff — compiled to an executable plan and dry-run
// before any hardware order is placed.
//
// Scenario: upgrade pod 0 of a fat-tree from 100G to 400G gear, retiring
// one spine along the way.
#include <iostream>

#include "core/physnet.h"

int main() {
  using namespace pn;
  using namespace pn::literals;

  // The network of record.
  const network_graph g = build_fat_tree(8, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  const auto ev = evaluate_design(g, "ft8", opt);
  if (!ev.is_ok()) {
    std::cerr << ev.error().to_string() << "\n";
    return 1;
  }
  const twin_model current = build_network_twin(
      g, ev.value().place, ev.value().floor, ev.value().cables,
      ev.value().cat);

  // The proposal, authored as a model edit (what a design tool would
  // emit): pod-0 switches move to 400G, spine0/sw3 is retired.
  twin_model proposed = current;
  int upgraded = 0;
  for (entity_id sw : proposed.entities_of_kind("switch")) {
    const std::string& name = proposed.entity(sw).name;
    if (name.rfind("pod0/", 0) == 0) {
      proposed.set_attr(sw, "port_rate_gbps", 400.0);
      ++upgraded;
    }
  }
  {
    const auto victim = proposed.find("switch", "spine0/sw3");
    if (victim.has_value()) {
      // Detach everything, then retire (the model refuses otherwise).
      for (const twin_relation* r : proposed.relations_of(*victim)) {
        const twin_relation copy = *r;
        (void)proposed.remove_relation(copy.kind, copy.from, copy.to);
      }
      (void)proposed.remove_entity(*victim);
    }
  }

  // The review artifact: a structural diff.
  const twin_diff diff = diff_twins(current, proposed);
  std::cout << "change review: " << diff.size() << " deltas\n";
  std::cout << "  attr changes: " << diff.changed_attrs.size() << " (e.g. "
            << (diff.changed_attrs.empty() ? "none"
                                           : diff.changed_attrs.front())
            << ")\n";
  std::cout << "  entities removed: " << diff.removed_entities.size()
            << ", relations removed: " << diff.removed_relations.size()
            << "\n";
  std::cout << "  (" << upgraded << " switches upgraded to 400G)\n\n";

  // Compile to an executable plan and dry-run it.
  const auto plan = diff_to_ops(current, proposed);
  const twin_schema schema = twin_schema::network_schema();
  dry_run_engine engine(current, &schema);
  dry_run_options dopt;
  dopt.validate_each_step = false;
  const auto report = engine.run(plan, dopt);
  std::cout << "compiled plan: " << plan.size() << " steps, dry run "
            << (report.ok ? "PASSED" : "FAILED") << "\n";
  for (std::size_t i = 0; i < report.failures.size() && i < 4; ++i) {
    std::cout << "  step " << report.failures[i].step << " ("
              << report.failures[i].description
              << "): " << report.failures[i].op_status.to_string() << "\n";
    for (const auto& v : report.failures[i].violations) {
      std::cout << "    " << v.rule << ": " << v.detail << "\n";
      break;
    }
  }

  if (report.ok) {
    std::cout << "\nresidual diff after replay: "
              << diff_twins(engine.model(), proposed).size()
              << " (0 = the plan reproduces the proposal exactly)\n";
  } else {
    std::cout << "\nThe dry run rejected the proposal before any hardware "
                 "was ordered —\nfix the plan, not the datacenter.\n";
  }
  return report.ok ? 0 : 1;
}
