// The §4.2 question as a runnable study: "why aren't expanders in wide
// use?" Builds a Clos and two expander fabrics at comparable host counts
// and puts their abstract wins next to their physical-deployability costs,
// then checks each against a Clos-only automation capability envelope.
#include <iostream>

#include "core/physnet.h"

namespace {

pn::evaluation_options study_options() {
  pn::evaluation_options opt;
  opt.repair.horizon = pn::hours{2.0 * 365 * 24};
  return opt;
}

}  // namespace

int main() {
  using namespace pn;
  using namespace pn::literals;

  // Comparable fabrics: ~128 hosts each, 100G links.
  const network_graph clos = build_fat_tree(8, 100_gbps);

  jellyfish_params jf;
  jf.switches = 64;
  jf.radix = 8;
  jf.hosts_per_switch = 2;
  jf.seed = 1;
  const network_graph jelly = build_jellyfish(jf);

  xpander_params xp;
  xp.degree = 6;
  xp.lift_size = 9;  // 63 switches
  xp.hosts_per_switch = 2;
  xp.seed = 1;
  const network_graph xpander = build_xpander(xp);

  std::vector<deployability_report> reports;
  std::vector<std::pair<std::string, const network_graph*>> designs{
      {"fat-tree k=8", &clos},
      {"jellyfish", &jelly},
      {"xpander", &xpander}};

  std::vector<std::string> envelope_notes;
  for (const auto& [name, g] : designs) {
    auto ev = evaluate_design(*g, name, study_options());
    if (!ev.is_ok()) {
      std::cerr << name << ": " << ev.error().to_string() << "\n";
      return 1;
    }
    reports.push_back(ev.value().report);

    // Would a Clos-only automation stack even accept this design?
    const auto findings = capability_envelope::clos_automation().check_design(
        *g, ev.value().cables);
    std::string note = name + ": ";
    if (findings.empty()) {
      note += "within the Clos automation envelope";
    } else {
      note += "OUT of envelope (";
      for (std::size_t i = 0; i < findings.size(); ++i) {
        if (i > 0) note += "; ";
        note += findings[i].dimension;
      }
      note += ")";
    }
    envelope_notes.push_back(note);
  }

  std::cout << "Why aren't expanders in wide use? (§4.2)\n";
  abstract_metrics_table(reports).print(std::cout,
                                        "what the papers show (abstract)");
  deployability_table(reports).print(std::cout,
                                     "what the floor sees (physical)");
  cost_table(reports).print(std::cout, "what the CFO sees");

  std::cout << "\ncapability envelopes (§5.2):\n";
  for (const auto& note : envelope_notes) {
    std::cout << "  - " << note << "\n";
  }
  std::cout << "\nReading: the expanders win mean path length, but look at "
               "bundleability,\nSKU count and the envelope check — that is "
               "the deployment gap the paper describes.\n";
  return 0;
}
