// Digital-twin dry runs for decommissioning (§2.1 + §5.3).
//
// Builds a fabric, mirrors it into the declarative twin, then dry-runs
// two decom plans for the same spine switch: a naive per-asset plan and a
// dependency-aware one. The naive plan's failures are exactly the
// in-service cables a twin-less decom would have yanked.
#include <iostream>

#include "core/physnet.h"

int main() {
  using namespace pn;
  using namespace pn::literals;

  const network_graph g = build_fat_tree(8, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = false;
  const auto ev = evaluate_design(g, "ft8", opt);
  if (!ev.is_ok()) {
    std::cerr << ev.error().to_string() << "\n";
    return 1;
  }

  const twin_model twin = build_network_twin(
      g, ev.value().place, ev.value().floor, ev.value().cables,
      catalog::standard());
  const twin_schema schema = twin_schema::network_schema();
  std::cout << "twin: " << twin.live_entity_count() << " entities, "
            << twin.live_relation_count() << " relations\n";

  const std::vector<std::string> victims{"spine0/sw0", "spine0/sw1"};
  std::cout << "decommissioning: ";
  for (const auto& v : victims) std::cout << v << " ";
  std::cout << "\n\n";

  const auto blockers = blocking_cables(twin, victims);
  std::cout << blockers.size()
            << " cables still serve in-service peers and must be drained "
               "first\n\n";

  for (const bool naive : {true, false}) {
    const auto plan = naive ? naive_decom_plan(twin, victims)
                            : safe_decom_plan(twin, victims);
    dry_run_engine engine(twin, &schema);
    dry_run_options dopt;
    dopt.validate_each_step = false;  // big model; validate at the end
    const auto report = engine.run(plan, dopt);
    std::cout << (naive ? "naive" : "safe") << " plan: " << plan.size()
              << " steps, dry run "
              << (report.ok ? "PASSED" : "FAILED") << "\n";
    for (std::size_t i = 0; i < report.failures.size() && i < 3; ++i) {
      const auto& f = report.failures[i];
      std::cout << "    step " << f.step << " (" << f.description
                << "): " << f.op_status.to_string() << "\n";
    }
    if (report.failures.size() > 3) {
      std::cout << "    ... and " << report.failures.size() - 3
                << " more failures\n";
    }
  }

  std::cout << "\nThe twin caught the naive plan before anyone touched a "
               "rack — §5.3's\n\"almost all of [our mistakes] could have "
               "been averted\" in practice.\n";
  return 0;
}
