#!/usr/bin/env bash
# Lifetime-campaign smoke test for physnet_campaign.
#
# Proves, end to end through the CLI, the campaign replay contract:
#   1. --delta and --no-delta replays are byte-identical (trajectory
#      and summary CSVs), across grow/upgrade/churn events.
#   2. A deterministically interrupted replay (--cancel-after +
#      --checkpoint) resumes to byte-identical CSVs, exit 130 -> 0.
#   3. A real SIGINT drains cleanly; timing-dependent, so the leg
#      tolerates the replay finishing before the signal lands.
#   4. --via-serve through a live physnet_serve worker matches the
#      local replay byte for byte (churn-free campaign: the wire
#      format canonicalizes adjacency order, so revived edges may
#      legally perturb the bisection estimate — see physnet_campaign).
#   5. The committed example campaigns parse, compile, and replay.
#
# Usage: scripts/campaign_smoke.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
CAMPAIGN="$BUILD_DIR/tools/physnet_campaign"
SERVE="$BUILD_DIR/tools/physnet_serve"
[[ -x "$CAMPAIGN" ]] || { echo "missing $CAMPAIGN (build first)" >&2; exit 1; }
[[ -x "$SERVE" ]] || { echo "missing $SERVE (build first)" >&2; exit 1; }

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

cat >"$WORK/smoke.campaign" <<'EOF'
physnet-campaign v1
name smoke
base jellyfish 24 seed 7
years 3
headroom 6
option repair off
option strategy block
event year 1 grow g1 steps 4 links_per_step 2
event year 2 upgrade u1 steps 4 factor 4
event year 2 rewire r1 steps 3 moves_per_step 1
event year 3 churn c1 steps 5 kills_per_step 1 repair_lag 2
EOF

echo "== phase 1: delta vs full evaluation =="

"$CAMPAIGN" --campaign="$WORK/smoke.campaign" \
    --summary="$WORK/base.summary.csv" >"$WORK/base.csv"
"$CAMPAIGN" --campaign="$WORK/smoke.campaign" --no-delta \
    --summary="$WORK/full.summary.csv" >"$WORK/full.csv"
diff -u "$WORK/base.csv" "$WORK/full.csv" \
    || { echo "delta trajectory differs from full evaluation" >&2; exit 1; }
diff -u "$WORK/base.summary.csv" "$WORK/full.summary.csv" \
    || { echo "delta summary differs from full evaluation" >&2; exit 1; }
# day1 + 4 + 4 + 3 + 5 steps, plus the CSV header.
lines=$(wc -l <"$WORK/base.csv")
[[ "$lines" -eq 18 ]] || { echo "expected 18 CSV lines, got $lines" >&2
                           exit 1; }
echo "phase 1 ok: delta replay byte-identical to full evaluation"

echo "== phase 2: deterministic interrupt (--cancel-after) =="

rc=0
"$CAMPAIGN" --campaign="$WORK/smoke.campaign" \
    --checkpoint="$WORK/smoke.ckpt" --cancel-after=6 \
    >"$WORK/partial.csv" 2>"$WORK/partial.err" || rc=$?
[[ "$rc" -eq 130 ]] || { echo "interrupt: expected exit 130, got $rc" >&2
                         cat "$WORK/partial.err" >&2; exit 1; }
grep -q -- "--resume=" "$WORK/partial.err" \
    || { echo "interrupt: missing resume hint" >&2; exit 1; }

rc=0
"$CAMPAIGN" --campaign="$WORK/smoke.campaign" --resume="$WORK/smoke.ckpt" \
    --summary="$WORK/merged.summary.csv" >"$WORK/merged.csv" || rc=$?
[[ "$rc" -eq 0 ]] || { echo "resume: expected exit 0, got $rc" >&2; exit 1; }
diff -u "$WORK/base.csv" "$WORK/merged.csv" \
    || { echo "resumed trajectory differs from uninterrupted" >&2; exit 1; }
diff -u "$WORK/base.summary.csv" "$WORK/merged.summary.csv" \
    || { echo "resumed summary differs from uninterrupted" >&2; exit 1; }
echo "phase 2 ok: interrupted campaign resumed byte-identical"

echo "== phase 3: real SIGINT =="

# The 1001-evaluation committed example runs long enough that the
# signal normally lands mid-replay; a finish-first race is tolerated.
SIG_CAMPAIGN="$REPO_ROOT/examples/campaigns/jellyfish_3y.campaign"
"$CAMPAIGN" --campaign="$SIG_CAMPAIGN" >"$WORK/sig_base.csv" 2>/dev/null

rc=0
"$CAMPAIGN" --campaign="$SIG_CAMPAIGN" \
    --checkpoint="$WORK/sig.ckpt" >"$WORK/sig_partial.csv" 2>/dev/null &
pid=$!
sleep 0.4
kill -INT "$pid" 2>/dev/null || true
wait "$pid" || rc=$?

if [[ "$rc" -eq 130 ]]; then
  rc=0
  "$CAMPAIGN" --campaign="$SIG_CAMPAIGN" --resume="$WORK/sig.ckpt" \
      >"$WORK/sig_merged.csv" 2>/dev/null || rc=$?
  [[ "$rc" -eq 0 ]] || { echo "sigint resume: expected exit 0, got $rc" >&2
                         exit 1; }
  diff -u "$WORK/sig_base.csv" "$WORK/sig_merged.csv" \
      || { echo "SIGINT-resumed trajectory differs" >&2; exit 1; }
  echo "phase 3 ok: SIGINT drained cleanly and resume matched baseline"
elif [[ "$rc" -eq 0 ]]; then
  diff -u "$WORK/sig_base.csv" "$WORK/sig_partial.csv" \
      || { echo "checkpointed run differs from baseline" >&2; exit 1; }
  echo "phase 3 ok (replay finished before SIGINT landed)"
else
  echo "sigint leg: unexpected exit $rc" >&2
  exit 1
fi

echo "== phase 4: --via-serve matches local replay =="

cat >"$WORK/wire.campaign" <<'EOF'
physnet-campaign v1
name wire
base jellyfish 24 seed 7
years 2
headroom 6
option repair off
option strategy block
event year 1 grow g1 steps 3 links_per_step 2
event year 2 upgrade u1 steps 3 factor 4
event year 2 migrate m1 steps 3 moves_per_step 1
EOF

SOCK="$WORK/serve.sock"
"$SERVE" --listen=unix:"$SOCK" --quiet &
SERVE_PID=$!
for _ in $(seq 50); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
[[ -S "$SOCK" ]] || { echo "serve never bound $SOCK" >&2; exit 1; }

"$CAMPAIGN" --campaign="$WORK/wire.campaign" \
    --summary="$WORK/wire_local.summary.csv" >"$WORK/wire_local.csv"
"$CAMPAIGN" --campaign="$WORK/wire.campaign" --via-serve=unix:"$SOCK" \
    --summary="$WORK/wire_served.summary.csv" >"$WORK/wire_served.csv"
kill -INT "$SERVE_PID"; wait "$SERVE_PID" || true
SERVE_PID=""

diff -u "$WORK/wire_local.csv" "$WORK/wire_served.csv" \
    || { echo "served trajectory differs from local replay" >&2; exit 1; }
diff -u "$WORK/wire_local.summary.csv" "$WORK/wire_served.summary.csv" \
    || { echo "served summary differs from local replay" >&2; exit 1; }
echo "phase 4 ok: served replay byte-identical to local"

echo "== phase 5: committed example campaigns replay =="

for example in jellyfish_3y fat_tree_3y; do
  file="$REPO_ROOT/examples/campaigns/$example.campaign"
  "$CAMPAIGN" --campaign="$file" --summary="$WORK/$example.summary.csv" \
      >"$WORK/$example.csv"
  rows=$(($(wc -l <"$WORK/$example.csv") - 1))
  echo "$example: $rows evaluations"
  [[ "$rows" -ge 3 ]] || { echo "$example: empty replay" >&2; exit 1; }
done
# The headline example must hold the >= 1000 evaluation floor.
rows=$(($(wc -l <"$WORK/jellyfish_3y.csv") - 1))
[[ "$rows" -ge 1000 ]] \
    || { echo "jellyfish_3y: expected >= 1000 evaluations, got $rows" >&2
         exit 1; }

echo "campaign smoke test passed"
