#!/usr/bin/env bash
# Serving-throughput sweep: 1 -> 2 -> 4 workers behind physnet_proxy,
# one open-loop hot leg per fleet size, assembled into BENCH_serve.json.
#
# Methodology (why multi-worker helps even on a small machine): the hot
# working set (HOT_VARIANTS distinct requests, visited cyclically — the
# LRU-adversarial order) is sized to overflow a single worker's result
# cache (CACHE_CAP entries) but fit comfortably in the 4-worker fleet's
# aggregate capacity. Consistent hashing gives every request exactly one
# home worker, so aggregate cache capacity — and with it the hot-path
# throughput — scales with the fleet, while a lone worker is stuck
# re-evaluating everything. The schedule is deterministic (seeded); only
# service behavior differs between legs.
#
# Usage: scripts/serve_bench.sh [build_dir] [out.json]
# Tunables (env): QPS DURATION HOT_VARIANTS CACHE_CAP CONNECTIONS SEED
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_serve.json}"
QPS="${QPS:-4000}"
DURATION="${DURATION:-4}"
# 512 hot keys vs 256-entry worker caches: a lone worker thrashes (a
# cyclic scan over 2x its capacity under LRU misses every time) while
# the 4-worker fleet holds ~128 keys per worker with headroom. The
# numbers are deliberately large — the worker cache is 8-way sharded and
# the ring deals keys with some variance, so small configurations sit on
# a per-shard eviction cliff that flips run to run.
HOT_VARIANTS="${HOT_VARIANTS:-512}"
CACHE_CAP="${CACHE_CAP:-256}"
CONNECTIONS="${CONNECTIONS:-8}"
SEED="${SEED:-1}"

SERVE="$BUILD_DIR/tools/physnet_serve"
PROXY="$BUILD_DIR/tools/physnet_proxy"
LOAD="$BUILD_DIR/tools/physnet_load"
CLIENT="$BUILD_DIR/tools/physnet_client"
for bin in "$SERVE" "$PROXY" "$LOAD" "$CLIENT"; do
  [[ -x "$bin" ]] || { echo "missing $bin (build first)" >&2; exit 1; }
done

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]-}"; do kill -KILL "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

run_leg() {
  local n="$1"
  local px="unix:$WORK/proxy_$n.sock"
  local worker_flags=()
  PIDS=()

  for i in $(seq 0 $((n - 1))); do
    local spec="unix:$WORK/w${n}_$i.sock"
    "$SERVE" --listen="$spec" --cache-capacity="$CACHE_CAP" --quiet \
        2>"$WORK/w${n}_$i.err" &
    PIDS+=($!)
    worker_flags+=("--worker=$spec")
  done
  # 256 vnodes/worker: worker sockets live in a fresh temp dir each run,
  # so ring balance must not hinge on lucky path hashes.
  "$PROXY" --listen="$px" "${worker_flags[@]}" --vnodes=256 --quiet \
      2>"$WORK/proxy_$n.err" &
  PIDS+=($!)

  local up=0
  for _ in $(seq 1 100); do
    if "$CLIENT" --connect="$px" --ping >/dev/null 2>&1; then
      up=1
      break
    fi
    sleep 0.05
  done
  [[ "$up" -eq 1 ]] || { echo "fleet of $n never came up" >&2
                         cat "$WORK/proxy_$n.err" >&2; exit 1; }

  echo "== hot leg, $n worker(s): $QPS qps offered for ${DURATION}s ==" >&2
  "$LOAD" --connect="$px" --qps="$QPS" --duration="$DURATION" \
      --connections="$CONNECTIONS" --seed="$SEED" \
      --hot-fraction=1 --hot-variants="$HOT_VARIANTS" \
      --label="hot_${n}w" --workers="$n" \
      --json="$WORK/leg_$n.json" >/dev/null 2>"$WORK/load_$n.err" \
      || { echo "load run failed for $n workers" >&2
           cat "$WORK/load_$n.err" >&2; exit 1; }

  "$CLIENT" --connect="$px" --stats >"$WORK/stats_$n.txt" || true

  for pid in "${PIDS[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
  for pid in "${PIDS[@]}"; do wait "$pid" 2>/dev/null || true; done
  PIDS=()
}

for n in 1 2 4; do
  run_leg "$n"
done

python3 - "$WORK" "$OUT" "$QPS" "$DURATION" "$HOT_VARIANTS" "$CACHE_CAP" \
    "$CONNECTIONS" "$SEED" <<'EOF'
import json, sys
work, out, qps, duration, variants, cap, conns, seed = sys.argv[1:9]
legs = []
for n in (1, 2, 4):
    leg = json.load(open(f"{work}/leg_{n}.json"))
    hits = ratio = None
    try:
        for line in open(f"{work}/stats_{n}.txt"):
            parts = line.split()
            if len(parts) == 3 and parts[0] == "cache.hits":
                hits = int(parts[2])
            if len(parts) == 3 and parts[0] == "cache.hit_ratio":
                ratio = float(parts[2])
    except OSError:
        pass
    leg["fleet_cache_hits"] = hits
    leg["fleet_cache_hit_ratio"] = ratio
    legs.append(leg)

by_n = {leg["workers"]: leg for leg in legs}
scaling = by_n[4]["achieved_qps_ok"] / max(by_n[1]["achieved_qps_ok"], 1e-9)
doc = {
    "benchmark": "physnet_proxy serving sweep (hot working set vs fleet "
                 "cache capacity)",
    "config": {
        "offered_qps": float(qps), "duration_s": float(duration),
        "hot_variants": int(variants), "worker_cache_capacity": int(cap),
        "connections": int(conns), "seed": int(seed),
        "mix": "fat_tree:4:block", "hot_fraction": 1.0,
    },
    "legs": legs,
    "hot_qps_scaling_4w_over_1w": round(scaling, 3),
}
json.dump(doc, open(out, "w"), indent=2)
open(out, "a").write("\n")
print(f"wrote {out}: 4w/1w hot throughput = {scaling:.2f}x")
for leg in legs:
    print(f"  {leg['label']}: {leg['achieved_qps_ok']:.0f}/"
          f"{leg['offered_qps']:.0f} qps ok, p99 "
          f"{leg['latency_ms']['p99']:.1f} ms, hit ratio "
          f"{leg['fleet_cache_hit_ratio']}")
assert scaling >= 2.0, (
    f"4-worker hot throughput only {scaling:.2f}x the 1-worker leg "
    f"(acceptance floor is 2x)")
EOF
