#!/usr/bin/env bash
# Negative-argv smoke for every physnet tool's flag parser.
#
# Each leg feeds one malformed numeric value and requires the tool to
# print a diagnostic naming the flag and exit 2 (usage) — not die with
# an unhandled std::invalid_argument like the pre-parse_or_usage
# parsers did. Covers the three failure shapes the helper rejects:
# non-numeric text, trailing junk, and a signed value for an unsigned
# flag (strtoull would otherwise silently wrap "-1" to 2^64-1).
#
# Usage: scripts/cli_negative_smoke.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

# expect_usage LABEL FLAG TOOL ARGS... — run TOOL, demand exit 2 and a
# diagnostic mentioning FLAG on stderr.
expect_usage() {
  local label="$1" flag="$2" tool="$3"
  shift 3
  [[ -x "$tool" ]] || { echo "missing $tool (build first)" >&2; exit 1; }
  local err rc=0
  err="$("$tool" "$@" 2>&1 >/dev/null)" || rc=$?
  if [[ "$rc" -ne 2 ]]; then
    echo "$label: expected exit 2, got $rc" >&2
    echo "$err" >&2
    exit 1
  fi
  if ! grep -qF -- "$flag" <<<"$err"; then
    echo "$label: diagnostic does not name $flag" >&2
    echo "$err" >&2
    exit 1
  fi
  echo "ok: $label"
}

T="$BUILD_DIR/tools"

# physnet_eval: non-numeric, trailing junk, float where int expected.
expect_usage "eval --size=abc" "--size" "$T/physnet_eval" \
    --family=fat_tree --size=abc
expect_usage "eval --seed=-1" "--seed" "$T/physnet_eval" \
    --family=fat_tree --size=4 --seed=-1
expect_usage "eval --jobs=2.5" "--jobs" "$T/physnet_eval" \
    --family=fat_tree --size=4 --jobs=2.5
expect_usage "eval --sweep=4,x,8" "--sweep" "$T/physnet_eval" \
    --family=fat_tree --sweep=4,x,8

# physnet_client: parse failures trip before --connect is required.
expect_usage "client --size=abc" "--size" "$T/physnet_client" --size=abc
expect_usage "client --deadline=soon" "--deadline" "$T/physnet_client" \
    --deadline=soon
expect_usage "client --retry-jitter-seed=-1" "--retry-jitter-seed" \
    "$T/physnet_client" --retry-jitter-seed=-1

# physnet_serve: parse failures trip before --listen is required.
expect_usage "serve --queue-limit=12x" "--queue-limit" "$T/physnet_serve" \
    --queue-limit=12x
expect_usage "serve --eval-threads=many" "--eval-threads" \
    "$T/physnet_serve" --eval-threads=many
expect_usage "serve --cache-capacity=-5" "--cache-capacity" \
    "$T/physnet_serve" --cache-capacity=-5

# physnet_proxy
expect_usage "proxy --vnodes=2.5" "--vnodes" "$T/physnet_proxy" \
    --vnodes=2.5
expect_usage "proxy --backoff-base-ms=nan" "--backoff-base-ms" \
    "$T/physnet_proxy" --backoff-base-ms=nan

# physnet_load (including the size field inside a --mix entry)
expect_usage "load --qps=fast" "--qps" "$T/physnet_load" --qps=fast
expect_usage "load --mix=fat_tree:big" "--mix" "$T/physnet_load" \
    --mix=fat_tree:big
expect_usage "load --hot-fraction=0.5.5" "--hot-fraction" \
    "$T/physnet_load" --hot-fraction=0.5.5

# physnet_search: parse failures trip before --space is required.
expect_usage "search --jobs=abc" "--jobs" "$T/physnet_search" --jobs=abc
expect_usage "search --seed=-1" "--seed" "$T/physnet_search" --seed=-1
expect_usage "search --restarts=2.5" "--restarts" "$T/physnet_search" \
    --restarts=2.5
expect_usage "search --cancel-after=soon" "--cancel-after" \
    "$T/physnet_search" --cancel-after=soon
expect_usage "search --connections=1x" "--connections" \
    "$T/physnet_search" --connections=1x

# pn_lint: --json is a bare flag; a value-carrying spelling is malformed
# and must exit 2 naming the option, not silently lint.
expect_usage "pn_lint --json=x" "--json" "$T/pn_lint/pn_lint" --json=x

echo "cli negative-argv smoke passed"
