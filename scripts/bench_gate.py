#!/usr/bin/env python3
"""Gate a fresh bench_micro run against the committed baseline.

Compares the ``--json`` output of ``bench_micro`` (nanoseconds_per_op and
speedups_vs_reference maps) against ``BENCH_baseline.json``:

  * every baseline benchmark must still exist in the fresh run (a missing
    name means a tracked bench was deleted or renamed without updating
    the baseline);
  * per-op time may not regress by more than ``--ns-tolerance``
    (fractional; raw ns are machine-dependent and CI runners are noisy,
    so the default band is wide — the gate catches order-of-magnitude
    regressions like an O(n) loop going O(n^2), not 5%% jitter);
  * tracked speedup ratios may not drop by more than
    ``--speedup-tolerance`` (ratios cancel machine speed, so this band
    is tighter);
  * ``--require LABEL=MIN`` pins an absolute floor on every fresh
    speedup entry whose label matches (``LABEL`` exactly or
    ``LABEL/arg``). At least one entry must match, so a renamed bench
    cannot silently skip its floor.

The same fresh/baseline machinery gates BENCH_search.json (the
``--json-search`` output of bench_micro) — point ``--fresh``/
``--baseline`` at the search artifacts in a second invocation.

``--serve FILE`` additionally validates a physnet_proxy serving-sweep
artifact (BENCH_serve.json): every leg must have answered every request
it sent with positive achieved QPS, and the hot_qps_scaling_4w_over_1w
ratio must clear ``--serve-scaling-min`` — a 4-worker fleet that does
not beat one worker by that factor means consistent-hash routing or the
fleet cache regressed.

Exit code 0 = gate passed, 1 = regression or contract violation,
2 = bad invocation / unreadable input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"bench_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    for key in ("nanoseconds_per_op", "speedups_vs_reference"):
        if not isinstance(doc.get(key), dict):
            print(f"bench_gate: {path} has no {key} map", file=sys.stderr)
            sys.exit(2)
    return doc


def parse_requirements(specs):
    out = []
    for spec in specs:
        label, sep, floor = spec.partition("=")
        if not sep or not label:
            print(f"bench_gate: bad --require {spec!r} (want LABEL=MIN)",
                  file=sys.stderr)
            sys.exit(2)
        try:
            out.append((label, float(floor)))
        except ValueError:
            print(f"bench_gate: bad --require floor {floor!r}",
                  file=sys.stderr)
            sys.exit(2)
    return out


def matches(label, key):
    return key == label or key.startswith(label + "/")


def check_serve(path, scaling_min, failures):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"bench_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)

    legs = doc.get("legs")
    if not isinstance(legs, list) or not legs:
        failures.append(f"serve: {path} has no legs")
        legs = []
    for leg in legs:
        label = leg.get("label", "?")
        req = leg.get("requests") or {}
        sent, ok = req.get("sent"), req.get("ok")
        if sent != ok:
            failures.append(
                f"serve leg {label}: answered {ok} of {sent} requests")
        qps = leg.get("achieved_qps_ok", 0.0)
        if not qps or qps <= 0.0:
            failures.append(f"serve leg {label}: achieved_qps_ok is {qps}")

    scaling = doc.get("hot_qps_scaling_4w_over_1w")
    if not isinstance(scaling, (int, float)):
        failures.append(f"serve: {path} has no hot_qps_scaling_4w_over_1w")
    elif scaling < scaling_min:
        failures.append(
            f"serve: hot_qps_scaling_4w_over_1w is {scaling:.2f}x "
            f"(floor {scaling_min:g}x)")
    else:
        print(f"bench_gate: serve hot_qps_scaling_4w_over_1w = "
              f"{scaling:.2f}x (floor {scaling_min:g}x) ok, "
              f"{len(legs)} leg(s) fully answered")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", default="BENCH_micro.json",
                    help="bench_micro --json output from this run")
    ap.add_argument("--baseline", default="BENCH_baseline.json",
                    help="committed reference run")
    ap.add_argument("--ns-tolerance", type=float, default=0.50,
                    help="allowed fractional ns/op regression (default 0.50)")
    ap.add_argument("--speedup-tolerance", type=float, default=0.30,
                    help="allowed fractional speedup drop (default 0.30)")
    ap.add_argument("--require", action="append", default=[],
                    metavar="LABEL=MIN",
                    help="absolute floor for a tracked speedup label; "
                         "repeatable")
    ap.add_argument("--serve", metavar="FILE",
                    help="also validate a serving-sweep artifact "
                         "(BENCH_serve.json): legs fully answered, "
                         "scaling ratio above --serve-scaling-min")
    ap.add_argument("--serve-scaling-min", type=float, default=2.0,
                    help="floor for hot_qps_scaling_4w_over_1w "
                         "(default 2.0)")
    args = ap.parse_args()

    fresh = load(args.fresh)
    base = load(args.baseline)
    requirements = parse_requirements(args.require)

    failures = []
    fresh_ns = fresh["nanoseconds_per_op"]
    base_ns = base["nanoseconds_per_op"]
    for name in sorted(base_ns):
        if name not in fresh_ns:
            failures.append(f"missing benchmark: {name} "
                            f"(in baseline, absent from fresh run)")
            continue
        before, after = base_ns[name], fresh_ns[name]
        if before <= 0.0:
            continue
        ratio = after / before
        if ratio > 1.0 + args.ns_tolerance:
            failures.append(
                f"ns regression: {name} {before:.0f} -> {after:.0f} ns/op "
                f"({ratio:.2f}x, tolerance {1.0 + args.ns_tolerance:.2f}x)")
    for name in sorted(fresh_ns):
        if name not in base_ns:
            print(f"bench_gate: note: new benchmark {name} "
                  f"(not in baseline)")

    fresh_sp = fresh["speedups_vs_reference"]
    base_sp = base["speedups_vs_reference"]
    for name in sorted(base_sp):
        if name not in fresh_sp:
            failures.append(f"missing speedup entry: {name}")
            continue
        before, after = base_sp[name], fresh_sp[name]
        floor = before * (1.0 - args.speedup_tolerance)
        if after < floor:
            failures.append(
                f"speedup drop: {name} {before:.2f}x -> {after:.2f}x "
                f"(floor {floor:.2f}x)")

    for label, floor in requirements:
        matched = [k for k in sorted(fresh_sp) if matches(label, k)]
        if not matched:
            failures.append(f"--require {label}={floor:g}: no fresh speedup "
                            f"entry matches {label!r}")
        for key in matched:
            if fresh_sp[key] < floor:
                failures.append(f"--require {label}={floor:g}: "
                                f"{key} is {fresh_sp[key]:.2f}x")
            else:
                print(f"bench_gate: {key} = {fresh_sp[key]:.2f}x "
                      f"(floor {floor:g}x) ok")

    if args.serve:
        check_serve(args.serve, args.serve_scaling_min, failures)

    if failures:
        print(f"bench_gate: FAIL ({len(failures)} problem(s))")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"bench_gate: ok ({len(base_ns)} benchmarks, "
          f"{len(base_sp)} speedups, {len(requirements)} floor(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
