#!/usr/bin/env bash
# Proxy + load-generator smoke test.
#
# Proves, end to end through the real binaries on real Unix sockets:
#   1. a 2-worker fleet behind physnet_proxy comes up and answers ping;
#   2. a fixed-QPS open-loop leg (physnet_load) completes with every
#      request answered OK and a sane BENCH-leg JSON;
#   3. the fleet's result caches see hits through the proxy (the
#      consistent-hash routing actually keeps keys on their home
#      workers), visible in the proxy's aggregated stats;
#   4. an invalidate through the proxy reaches every worker;
#   5. SIGTERM drains the whole tree cleanly: proxy and both workers
#      exit 0 and remove their sockets.
#
# Usage: scripts/serve_load_smoke.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/tools/physnet_serve"
PROXY="$BUILD_DIR/tools/physnet_proxy"
LOAD="$BUILD_DIR/tools/physnet_load"
CLIENT="$BUILD_DIR/tools/physnet_client"
for bin in "$SERVE" "$PROXY" "$LOAD" "$CLIENT"; do
  [[ -x "$bin" ]] || { echo "missing $bin (build first)" >&2; exit 1; }
done

WORK="$(mktemp -d)"
W0_PID=""
W1_PID=""
PROXY_PID=""
cleanup() {
  for pid in "$PROXY_PID" "$W0_PID" "$W1_PID"; do
    [[ -n "$pid" ]] && kill -KILL "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

W0="unix:$WORK/w0.sock"
W1="unix:$WORK/w1.sock"
PX="unix:$WORK/proxy.sock"

echo "== start 2 workers + proxy =="
"$SERVE" --listen="$W0" --quiet 2>"$WORK/w0.err" &
W0_PID=$!
"$SERVE" --listen="$W1" --quiet 2>"$WORK/w1.err" &
W1_PID=$!
"$PROXY" --listen="$PX" --worker="$W0" --worker="$W1" --quiet \
    2>"$WORK/proxy.err" &
PROXY_PID=$!

up=0
for _ in $(seq 1 100); do
  if "$CLIENT" --connect="$PX" --ping >/dev/null 2>&1; then
    up=1
    break
  fi
  sleep 0.05
done
[[ "$up" -eq 1 ]] || { echo "proxy never came up" >&2
                       cat "$WORK/proxy.err" >&2; exit 1; }

echo "== fixed-QPS leg through the proxy =="
"$LOAD" --connect="$PX" --qps=150 --duration=2 --connections=4 \
    --hot-fraction=0.9 --hot-variants=8 --label=smoke --workers=2 \
    --json="$WORK/leg.json" 2>"$WORK/load.err" \
    || { echo "load run failed" >&2; cat "$WORK/load.err" >&2; exit 1; }

python3 - "$WORK/leg.json" <<'EOF'
import json, sys
leg = json.load(open(sys.argv[1]))
req = leg["requests"]
assert req["sent"] > 0, leg
assert req["ok"] == req["sent"], f"dropped requests: {req}"
assert req["transport_error"] == 0, req
lat = leg["latency_ms"]
assert lat["count"] == req["ok"], lat
assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"], lat
assert leg["achieved_qps_ok"] > 0, leg
print(f"leg ok: {req['ok']} answered at "
      f"{leg['achieved_qps_ok']:.0f} qps, p99 {lat['p99']:.1f} ms")
EOF

echo "== aggregated stats: cache hits through the proxy =="
"$CLIENT" --connect="$PX" --stats >"$WORK/stats.txt"
hits="$(awk '$1 == "cache.hits" { print $3 }' "$WORK/stats.txt")"
ratio="$(awk '$1 == "cache.hit_ratio" { print $3 }' "$WORK/stats.txt")"
alive="$(awk '$1 == "workers.alive" { print $3 }' "$WORK/stats.txt")"
[[ -n "$hits" && "$hits" -gt 0 ]] \
    || { echo "expected fleet cache hits > 0, got '${hits:-missing}'" >&2
         cat "$WORK/stats.txt" >&2; exit 1; }
[[ "$alive" == "2" ]] \
    || { echo "expected workers.alive = 2, got '${alive:-missing}'" >&2
         exit 1; }
echo "fleet cache: $hits hits, hit ratio $ratio, $alive workers alive"

echo "== invalidate reaches every worker =="
"$CLIENT" --connect="$PX" --invalidate >/dev/null
for spec in "$W0" "$W1"; do
  epoch="$("$CLIENT" --connect="$spec" --stats \
      | awk '$1 == "cache.epoch" { print $3 }')"
  [[ "$epoch" == "2" ]] \
      || { echo "worker $spec epoch '$epoch' after broadcast (want 2)" >&2
           exit 1; }
done
echo "both workers at epoch 2"

echo "== SIGTERM drains the whole tree =="
kill -TERM "$PROXY_PID"
rc=0
wait "$PROXY_PID" || rc=$?
PROXY_PID=""
[[ "$rc" -eq 0 ]] || { echo "proxy exit $rc on SIGTERM (want 0)" >&2
                       cat "$WORK/proxy.err" >&2; exit 1; }
[[ ! -S "$WORK/proxy.sock" ]] \
    || { echo "proxy left its socket behind" >&2; exit 1; }

for name in w0 w1; do
  pid_var="$(echo "$name" | tr '[:lower:]' '[:upper:]')_PID"
  pid="${!pid_var}"
  kill -TERM "$pid"
  rc=0
  wait "$pid" || rc=$?
  printf -v "$pid_var" ''
  [[ "$rc" -eq 0 ]] || { echo "$name exit $rc on SIGTERM (want 0)" >&2
                         cat "$WORK/$name.err" >&2; exit 1; }
  [[ ! -S "$WORK/$name.sock" ]] \
      || { echo "$name left its socket behind" >&2; exit 1; }
done

echo "serve/load smoke test passed"
