#!/usr/bin/env bash
# physnet_search smoke test.
#
# Proves, end to end through the real binaries on real Unix sockets:
#   1. a small grid search over the committed example space finds a
#      multi-family Pareto front deterministically (--jobs=4 output is
#      byte-identical to serial);
#   2. a --via-serve run against a 2-worker fleet behind physnet_proxy
#      produces the exact same front and trace bytes as the local run;
#   3. an interrupted run (SIGINT mid-search with --checkpoint) exits
#      130 with a resume hint, and --resume completes it to output
#      byte-identical to the uninterrupted run.
#
# Usage: scripts/search_smoke.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
SEARCH="$BUILD_DIR/tools/physnet_search"
SERVE="$BUILD_DIR/tools/physnet_serve"
PROXY="$BUILD_DIR/tools/physnet_proxy"
CLIENT="$BUILD_DIR/tools/physnet_client"
for bin in "$SEARCH" "$SERVE" "$PROXY" "$CLIENT"; do
  [[ -x "$bin" ]] || { echo "missing $bin (build first)" >&2; exit 1; }
done
SPACE="examples/search/quickstart.space"
[[ -f "$SPACE" ]] || { echo "missing $SPACE (run from repo root)" >&2
                       exit 1; }

WORK="$(mktemp -d)"
W0_PID=""
W1_PID=""
PROXY_PID=""
cleanup() {
  for pid in "$PROXY_PID" "$W0_PID" "$W1_PID"; do
    [[ -n "$pid" ]] && kill -KILL "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== local grid search, serial vs --jobs=4 =="
"$SEARCH" --space="$SPACE" --front="$WORK/front_serial.csv" \
    --trace="$WORK/trace_serial.csv" 2>"$WORK/serial.err"
"$SEARCH" --space="$SPACE" --jobs=4 --front="$WORK/front_jobs.csv" \
    --trace="$WORK/trace_jobs.csv" 2>"$WORK/jobs.err"
cmp "$WORK/front_serial.csv" "$WORK/front_jobs.csv" \
    || { echo "--jobs=4 front differs from serial" >&2; exit 1; }
cmp "$WORK/trace_serial.csv" "$WORK/trace_jobs.csv" \
    || { echo "--jobs=4 trace differs from serial" >&2; exit 1; }

# The acceptance bar: >= 3 non-dominated points spanning >= 2 families.
python3 - "$WORK/front_serial.csv" <<'EOF'
import csv, sys
rows = list(csv.DictReader(open(sys.argv[1])))
families = {r["family"] for r in rows}
assert len(rows) >= 3, f"front has {len(rows)} points (want >= 3)"
assert len(families) >= 2, f"front spans {families} (want >= 2 families)"
print(f"front ok: {len(rows)} points across {sorted(families)}")
EOF

echo "== --via-serve against a 2-worker fleet =="
W0="unix:$WORK/w0.sock"
W1="unix:$WORK/w1.sock"
PX="unix:$WORK/proxy.sock"
"$SERVE" --listen="$W0" --quiet 2>"$WORK/w0.err" &
W0_PID=$!
"$SERVE" --listen="$W1" --quiet 2>"$WORK/w1.err" &
W1_PID=$!
"$PROXY" --listen="$PX" --worker="$W0" --worker="$W1" --quiet \
    2>"$WORK/proxy.err" &
PROXY_PID=$!

up=0
for _ in $(seq 1 100); do
  if "$CLIENT" --connect="$PX" --ping >/dev/null 2>&1; then
    up=1
    break
  fi
  sleep 0.05
done
[[ "$up" -eq 1 ]] || { echo "proxy never came up" >&2
                       cat "$WORK/proxy.err" >&2; exit 1; }

"$SEARCH" --space="$SPACE" --via-serve="$PX" --connections=2 \
    --front="$WORK/front_serve.csv" --trace="$WORK/trace_serve.csv" \
    2>"$WORK/serve.err" \
    || { echo "--via-serve run failed" >&2; cat "$WORK/serve.err" >&2
         exit 1; }
cmp "$WORK/front_serial.csv" "$WORK/front_serve.csv" \
    || { echo "--via-serve front differs from local" >&2; exit 1; }
cmp "$WORK/trace_serial.csv" "$WORK/trace_serve.csv" \
    || { echo "--via-serve trace differs from local" >&2; exit 1; }
echo "served front and trace byte-identical to local"

echo "== deterministic interrupt (--cancel-after=5), then --resume =="
rc=0
"$SEARCH" --space="$SPACE" --checkpoint="$WORK/det.ckpt" \
    --cancel-after=5 --front="$WORK/front_det.csv" \
    2>"$WORK/det.err" || rc=$?
[[ "$rc" -eq 130 ]] \
    || { echo "cancel-after run exited $rc (want 130)" >&2
         cat "$WORK/det.err" >&2; exit 1; }
grep -q -- "--resume" "$WORK/det.err" \
    || { echo "no resume hint after cancel" >&2
         cat "$WORK/det.err" >&2; exit 1; }
[[ "$(wc -l <"$WORK/det.ckpt")" -eq 6 ]] \
    || { echo "checkpoint should hold header + 5 entries" >&2
         cat "$WORK/det.ckpt" >&2; exit 1; }
"$SEARCH" --space="$SPACE" --resume="$WORK/det.ckpt" \
    --front="$WORK/front_det_resumed.csv" \
    --trace="$WORK/trace_det_resumed.csv" 2>"$WORK/det_resume.err"
cmp "$WORK/front_serial.csv" "$WORK/front_det_resumed.csv" \
    || { echo "cancel-after resumed front differs" >&2; exit 1; }
cmp "$WORK/trace_serial.csv" "$WORK/trace_det_resumed.csv" \
    || { echo "cancel-after resumed trace differs" >&2; exit 1; }
grep -q "5 resumed" "$WORK/det_resume.err" \
    || { echo "resume did not restore the 5 checkpointed points" >&2
         cat "$WORK/det_resume.err" >&2; exit 1; }
echo "cancel-after interrupt resumed to byte-identical output"

echo "== real SIGINT mid-search, then --resume =="
"$SEARCH" --space="$SPACE" --checkpoint="$WORK/smoke.ckpt" \
    --front="$WORK/front_int.csv" --trace="$WORK/trace_int.csv" \
    2>"$WORK/int.err" &
SEARCH_PID=$!
sleep 0.05
kill -INT "$SEARCH_PID" 2>/dev/null || true
rc=0
wait "$SEARCH_PID" || rc=$?
if [[ "$rc" -eq 130 ]]; then
  grep -q -- "--resume" "$WORK/int.err" \
      || { echo "no resume hint on stderr after SIGINT" >&2
           cat "$WORK/int.err" >&2; exit 1; }
  [[ -f "$WORK/smoke.ckpt" ]] \
      || { echo "no checkpoint written before SIGINT" >&2; exit 1; }
  echo "interrupted: exit 130 with resume hint"
elif [[ "$rc" -eq 0 ]]; then
  # The grid finished before the signal landed — rare but legal; the
  # resume below then restores every point instead of some.
  echo "run finished before SIGINT landed; resume restores everything"
else
  echo "interrupted run exited $rc (want 130 or 0)" >&2
  cat "$WORK/int.err" >&2
  exit 1
fi

"$SEARCH" --space="$SPACE" --resume="$WORK/smoke.ckpt" \
    --front="$WORK/front_resumed.csv" --trace="$WORK/trace_resumed.csv" \
    2>"$WORK/resume.err"
cmp "$WORK/front_serial.csv" "$WORK/front_resumed.csv" \
    || { echo "resumed front differs from uninterrupted" >&2; exit 1; }
cmp "$WORK/trace_serial.csv" "$WORK/trace_resumed.csv" \
    || { echo "resumed trace differs from uninterrupted" >&2; exit 1; }
# "N resumed" appears whenever the interrupt landed after at least one
# completed point (checkpoint = header + entry lines).
if [[ "$(wc -l <"$WORK/smoke.ckpt")" -gt 1 ]]; then
  grep -q "resumed" "$WORK/resume.err" \
      || { echo "resume run did not report restored candidates" >&2
           cat "$WORK/resume.err" >&2; exit 1; }
fi
echo "resumed output byte-identical to uninterrupted run"

echo "search smoke test passed"
