#!/usr/bin/env bash
# Interrupt/resume smoke test for the sweep driver.
#
# Proves, end to end through the physnet_eval CLI, that a checkpointed
# sweep interrupted partway and then resumed produces byte-identical
# CSVs (results on stdout, structured failures on stderr) to an
# uninterrupted run at equal seeds and jobs — including an injected
# stage fault, so the failures CSV is non-trivial.
#
# Phase 1 interrupts deterministically with --cancel-after (what CI
# relies on). Phase 2 sends a real SIGINT; timing-dependent, so it
# tolerates the sweep finishing before the signal lands.
#
# Usage: scripts/interrupt_resume_smoke.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
EVAL="$BUILD_DIR/tools/physnet_eval"
[[ -x "$EVAL" ]] || { echo "missing $EVAL (build first)" >&2; exit 1; }

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

SWEEP_ARGS=(--family=fat_tree --sweep=4,6,8 --jobs=1 --seed=1
            --fail-at=1:cabling)

echo "== phase 1: deterministic interrupt (--cancel-after) =="

# Baseline: uninterrupted run. The injected fault means exit 1.
rc=0
"$EVAL" "${SWEEP_ARGS[@]}" \
    >"$WORK/base.csv" 2>"$WORK/base.failures.csv" || rc=$?
[[ "$rc" -eq 1 ]] || { echo "baseline: expected exit 1, got $rc" >&2; exit 1; }

# Interrupted leg: drain after 2 completed points, checkpointing.
rc=0
"$EVAL" "${SWEEP_ARGS[@]}" --checkpoint="$WORK/sweep.ckpt" --cancel-after=2 \
    >"$WORK/partial.csv" 2>"$WORK/partial.err" || rc=$?
[[ "$rc" -eq 130 ]] || { echo "interrupt: expected exit 130, got $rc" >&2
                         cat "$WORK/partial.err" >&2; exit 1; }
grep -q -- "--resume=" "$WORK/partial.err" \
    || { echo "interrupt: missing resume hint" >&2; exit 1; }

# Resume: finishes the remaining points, merges the restored ones.
rc=0
"$EVAL" "${SWEEP_ARGS[@]}" --resume="$WORK/sweep.ckpt" \
    >"$WORK/merged.csv" 2>"$WORK/merged.failures.csv" || rc=$?
[[ "$rc" -eq 1 ]] || { echo "resume: expected exit 1, got $rc" >&2; exit 1; }

diff -u "$WORK/base.csv" "$WORK/merged.csv" \
    || { echo "resumed CSV differs from uninterrupted" >&2; exit 1; }
diff -u "$WORK/base.failures.csv" "$WORK/merged.failures.csv" \
    || { echo "resumed failures CSV differs" >&2; exit 1; }
echo "phase 1 ok: resumed CSVs byte-identical to uninterrupted run"

echo "== phase 2: real SIGINT =="

SIG_ARGS=(--family=jellyfish --sweep=1024,1280,1536,1792 --jobs=1 --seed=1)

rc=0
"$EVAL" "${SIG_ARGS[@]}" \
    >"$WORK/sig_base.csv" 2>/dev/null || rc=$?
[[ "$rc" -eq 0 ]] || { echo "sigint baseline: expected exit 0, got $rc" >&2
                       exit 1; }

"$EVAL" "${SIG_ARGS[@]}" --checkpoint="$WORK/sig.ckpt" \
    >"$WORK/sig_partial.csv" 2>"$WORK/sig_partial.err" &
pid=$!
sleep 0.4
kill -INT "$pid" 2>/dev/null || true
rc=0
wait "$pid" || rc=$?

if [[ "$rc" -eq 130 ]]; then
  rc=0
  "$EVAL" "${SIG_ARGS[@]}" --resume="$WORK/sig.ckpt" \
      >"$WORK/sig_merged.csv" 2>/dev/null || rc=$?
  [[ "$rc" -eq 0 ]] || { echo "sigint resume: expected exit 0, got $rc" >&2
                         exit 1; }
  diff -u "$WORK/sig_base.csv" "$WORK/sig_merged.csv" \
      || { echo "SIGINT-resumed CSV differs from uninterrupted" >&2; exit 1; }
  echo "phase 2 ok: SIGINT drained cleanly and resume matched baseline"
elif [[ "$rc" -eq 0 ]]; then
  # The sweep beat the signal; nothing to resume. Still byte-compare.
  diff -u "$WORK/sig_base.csv" "$WORK/sig_partial.csv" \
      || { echo "checkpointed run differs from baseline" >&2; exit 1; }
  echo "phase 2 ok (sweep finished before SIGINT landed)"
else
  echo "sigint leg: unexpected exit $rc" >&2
  cat "$WORK/sig_partial.err" >&2
  exit 1
fi

echo "interrupt/resume smoke test passed"
