#!/usr/bin/env bash
# Service smoke test for physnet_serve / physnet_client.
#
# Proves, end to end through the real binaries on a real Unix socket:
#   1. the server comes up and answers ping;
#   2. >= 4 concurrent client connections all evaluate successfully;
#   3. repeat requests hit the result cache (cache-hit ratio > 0);
#   4. SIGTERM drains cleanly: a client whose request is in flight when
#      the signal lands still gets its answer (exit 0, valid CSV), and
#      the server itself exits 0.
#
# Usage: scripts/service_smoke.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/tools/physnet_serve"
CLIENT="$BUILD_DIR/tools/physnet_client"
[[ -x "$SERVE" ]] || { echo "missing $SERVE (build first)" >&2; exit 1; }
[[ -x "$CLIENT" ]] || { echo "missing $CLIENT (build first)" >&2; exit 1; }

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -KILL "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/physnet.sock"
CONNECT="unix:$SOCK"

echo "== start server =="
"$SERVE" --listen="$CONNECT" --quiet 2>"$WORK/serve.err" &
SERVE_PID=$!

# Wait for the socket to accept a ping (bounded).
up=0
for _ in $(seq 1 100); do
  if [[ -S "$SOCK" ]] && "$CLIENT" --connect="$CONNECT" --ping \
      >/dev/null 2>&1; then
    up=1
    break
  fi
  sleep 0.05
done
[[ "$up" -eq 1 ]] || { echo "server never came up" >&2
                       cat "$WORK/serve.err" >&2; exit 1; }

echo "== 4 concurrent connections, repeats to warm the cache =="
pids=()
i=0
for spec in fat_tree:4 leaf_spine:6 jellyfish:16 fat_tree:4; do
  fam="${spec%%:*}"
  size="${spec##*:}"
  "$CLIENT" --connect="$CONNECT" --family="$fam" --size="$size" \
      --no-repair --repeat=3 --csv >"$WORK/out.$i.csv" 2>"$WORK/out.$i.err" &
  pids+=($!)
  i=$((i + 1))
done
for j in "${!pids[@]}"; do
  rc=0
  wait "${pids[$j]}" || rc=$?
  [[ "$rc" -eq 0 ]] || { echo "client $j failed (exit $rc)" >&2
                         cat "$WORK/out.$j.err" >&2; exit 1; }
  # A CSV report: header line + one row.
  [[ "$(wc -l <"$WORK/out.$j.csv")" -ge 2 ]] \
      || { echo "client $j produced no report" >&2; exit 1; }
done

# Identical repeats must be answered from the cache.
"$CLIENT" --connect="$CONNECT" --stats >"$WORK/stats.txt"
hits="$(awk '$1 == "cache.hits" { print $3 }' "$WORK/stats.txt")"
ratio="$(awk '$1 == "cache.hit_ratio" { print $3 }' "$WORK/stats.txt")"
[[ -n "$hits" && "$hits" -gt 0 ]] \
    || { echo "expected cache hits > 0, got '${hits:-missing}'" >&2
         cat "$WORK/stats.txt" >&2; exit 1; }
echo "cache: $hits hits, hit ratio $ratio"

echo "== SIGTERM drains in-flight work =="
# A full-pipeline evaluation (repair sim on) holds a request in flight
# while the signal lands; the drain guarantee says it is still answered.
"$CLIENT" --connect="$CONNECT" --family=jellyfish --size=24 --csv \
    >"$WORK/inflight.csv" 2>"$WORK/inflight.err" &
CLIENT_PID=$!
sleep 0.2
kill -TERM "$SERVE_PID"

rc=0
wait "$CLIENT_PID" || rc=$?
[[ "$rc" -eq 0 ]] || { echo "in-flight client dropped (exit $rc)" >&2
                       cat "$WORK/inflight.err" >&2; exit 1; }
[[ "$(wc -l <"$WORK/inflight.csv")" -ge 2 ]] \
    || { echo "in-flight client got no report" >&2; exit 1; }

rc=0
wait "$SERVE_PID" || rc=$?
SERVE_PID=""
[[ "$rc" -eq 0 ]] || { echo "server exit $rc on SIGTERM (want 0)" >&2
                       cat "$WORK/serve.err" >&2; exit 1; }
[[ ! -S "$SOCK" ]] || { echo "server left its socket behind" >&2; exit 1; }

echo "service smoke test passed"
