// The delta-evaluation contract: every incremental result is
// bit-identical to the from-scratch reference on the current graph.
//
// Layers under test, bottom up:
//   * the edge-diff journal (deltas_since windows, net_edge_flips
//     ordering, reorder pairs, capacity compaction, add_node tears);
//   * csr_graph::try_repair — arc-for-arc equal to a fresh build;
//   * distance_cache row survival across mutations;
//   * incremental_metrics vs compute_path_length_stats /
//     compute_ecmp_loads / ecmp_throughput, driven through >= 1000
//     randomized mutate/evaluate interleavings on two families;
//   * run_sweep scenario mode: --delta and cold sweeps produce byte-
//     identical CSV.
//
// Comparisons are exact (==, EXPECT_EQ on doubles): bit-identity is the
// invariant, not closeness.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/evaluator.h"
#include "core/sweep.h"
#include "deploy/decom.h"
#include "deploy/expansion.h"
#include "deploy/scenario.h"
#include "topology/csr.h"
#include "topology/distance_cache.h"
#include "topology/generators/clos.h"
#include "topology/generators/jellyfish.h"
#include "topology/generators/leaf_spine.h"
#include "topology/incremental.h"
#include "topology/metrics.h"
#include "topology/routing.h"
#include "topology/traffic.h"

namespace pn {
namespace {

// ---- journal units ------------------------------------------------------

network_graph two_triangle() {
  network_graph g;
  node_info sw;
  sw.kind = node_kind::expander;
  sw.radix = 16;
  sw.port_rate = gbps{100.0};
  sw.host_ports = 2;
  for (int i = 0; i < 4; ++i) {
    sw.name = "s" + std::to_string(i);
    g.add_node(sw);
  }
  g.add_edge(node_id{0}, node_id{1}, gbps{100.0});  // e0
  g.add_edge(node_id{1}, node_id{2}, gbps{100.0});  // e1
  g.add_edge(node_id{2}, node_id{3}, gbps{100.0});  // e2
  g.add_edge(node_id{3}, node_id{0}, gbps{100.0});  // e3
  return g;
}

TEST(edge_journal, deltas_since_returns_exact_suffix) {
  network_graph g = two_triangle();
  const std::uint64_t e0 = g.epoch();
  g.remove_edge(edge_id{1});
  g.revive_edge(edge_id{1});
  const auto window = g.deltas_since(e0);
  ASSERT_TRUE(window.has_value());
  ASSERT_EQ(window->size(), 2u);
  EXPECT_EQ((*window)[0].kind, edge_delta_kind::removed);
  EXPECT_EQ((*window)[1].kind, edge_delta_kind::revived);
  EXPECT_EQ((*window)[0].edge, edge_id{1});
  // An empty window is a valid (empty) suffix, not a tear.
  const auto empty = g.deltas_since(g.epoch());
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(edge_journal, net_flips_down_first_ascending_then_ups_append_order) {
  network_graph g = two_triangle();
  const std::uint64_t e0 = g.epoch();
  g.remove_edge(edge_id{2});
  g.remove_edge(edge_id{0});
  const edge_id e4 = g.add_edge(node_id{0}, node_id{2}, gbps{100.0});
  const auto window = g.deltas_since(e0);
  ASSERT_TRUE(window.has_value());
  const std::vector<edge_flip> flips = net_edge_flips(*window);
  ASSERT_EQ(flips.size(), 3u);
  EXPECT_FALSE(flips[0].alive);  // downs first, ascending edge id
  EXPECT_EQ(flips[0].edge, edge_id{0});
  EXPECT_FALSE(flips[1].alive);
  EXPECT_EQ(flips[1].edge, edge_id{2});
  EXPECT_TRUE(flips[2].alive);
  EXPECT_EQ(flips[2].edge, e4);
}

TEST(edge_journal, remove_then_revive_emits_both_flips) {
  // Liveness is net-unchanged, but the adjacency position moved to the
  // list end — order-preserving consumers must see the move.
  network_graph g = two_triangle();
  const std::uint64_t e0 = g.epoch();
  g.remove_edge(edge_id{1});
  g.revive_edge(edge_id{1});
  const std::vector<edge_flip> flips = net_edge_flips(*g.deltas_since(e0));
  ASSERT_EQ(flips.size(), 2u);
  EXPECT_FALSE(flips[0].alive);
  EXPECT_TRUE(flips[1].alive);
  EXPECT_EQ(flips[0].edge, edge_id{1});
  EXPECT_EQ(flips[1].edge, edge_id{1});
}

TEST(edge_journal, add_then_remove_cancels_out) {
  network_graph g = two_triangle();
  const std::uint64_t e0 = g.epoch();
  const edge_id e = g.add_edge(node_id{0}, node_id{2}, gbps{100.0});
  g.remove_edge(e);
  const std::vector<edge_flip> flips = net_edge_flips(*g.deltas_since(e0));
  EXPECT_TRUE(flips.empty());
}

TEST(edge_journal, capacity_overflow_tears_old_windows_only) {
  network_graph g = two_triangle();
  g.set_journal_capacity(3);
  const std::uint64_t e0 = g.epoch();
  for (int i = 0; i < 6; ++i) {
    g.remove_edge(edge_id{0});
    g.revive_edge(edge_id{0});
  }
  EXPECT_FALSE(g.deltas_since(e0).has_value());  // torn
  const auto fresh = g.deltas_since(g.journal_floor());
  ASSERT_TRUE(fresh.has_value());  // the surviving suffix is intact
  EXPECT_EQ(g.journal_floor() + fresh->size(), g.epoch());
}

TEST(edge_journal, add_node_tears_every_window) {
  network_graph g = two_triangle();
  const std::uint64_t e0 = g.epoch();
  g.remove_edge(edge_id{3});
  ASSERT_TRUE(g.deltas_since(e0).has_value());
  node_info sw;
  sw.name = "late";
  sw.kind = node_kind::expander;
  sw.radix = 8;
  sw.port_rate = gbps{100.0};
  g.add_node(sw);
  EXPECT_FALSE(g.deltas_since(e0).has_value());
  EXPECT_EQ(g.journal_floor(), g.epoch());
}

// ---- CSR repair ---------------------------------------------------------

jellyfish_params small_jelly() {
  jellyfish_params p;
  p.switches = 24;
  p.radix = 12;
  p.hosts_per_switch = 4;
  p.seed = 3;
  return p;
}

void expect_same_arcs(const csr_graph& repaired, const csr_graph& fresh) {
  ASSERT_EQ(repaired.num_nodes, fresh.num_nodes);
  EXPECT_EQ(repaired.epoch, fresh.epoch);
  for (std::uint32_t u = 0; u < fresh.num_nodes; ++u) {
    ASSERT_EQ(repaired.degree(u), fresh.degree(u)) << "node " << u;
    for (std::uint32_t k = 0; k < fresh.degree(u); ++k) {
      const std::uint32_t ra = repaired.row_offsets[u] + k;
      const std::uint32_t fa = fresh.row_offsets[u] + k;
      EXPECT_EQ(repaired.adjacency[ra], fresh.adjacency[fa]);
      EXPECT_EQ(repaired.arc_edge[ra], fresh.arc_edge[fa]);
      EXPECT_EQ(repaired.arc_forward[ra], fresh.arc_forward[fa]);
    }
  }
  EXPECT_EQ(repaired.live_edge_ids, fresh.live_edge_ids);
}

TEST(csr_repair, repaired_snapshot_equals_fresh_build_arc_for_arc) {
  network_graph g = build_jellyfish(small_jelly());
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    g.node(node_id{i}).radix += 2;  // room for the added links
  }
  csr_graph snap = csr_graph::build(g, 4);
  const std::uint64_t e0 = g.epoch();
  rng r(17);
  for (int round = 0; round < 10; ++round) {
    const auto live = g.live_edges();
    const edge_id victim = live[r.next_index(live.size())];
    g.remove_edge(victim);
    if (r.next_below(2) == 0) {
      g.revive_edge(victim);
    }
    if (round % 3 == 0) {
      const node_id a{r.next_index(g.node_count())};
      const node_id b{r.next_index(g.node_count())};
      if (a != b && g.free_ports(a) > 0 && g.free_ports(b) > 0) {
        g.add_edge(a, b, gbps{100.0});
      }
    }
  }
  const auto window = g.deltas_since(e0);
  ASSERT_TRUE(window.has_value());
  ASSERT_TRUE(snap.try_repair(g, net_edge_flips(*window)));
  expect_same_arcs(snap, csr_graph::build(g));
}

TEST(csr_repair, slack_exhaustion_refuses_and_leaves_snapshot_untouched) {
  network_graph g = build_jellyfish(small_jelly());
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    g.node(node_id{i}).radix += 8;
  }
  csr_graph snap = csr_graph::build(g, 0);  // zero slack: any add overflows
  const csr_graph before = snap;
  const std::uint64_t e0 = g.epoch();
  g.add_edge(node_id{0}, node_id{5}, gbps{100.0});
  ASSERT_FALSE(snap.try_repair(g, net_edge_flips(*g.deltas_since(e0))));
  EXPECT_EQ(snap.epoch, before.epoch);
  EXPECT_EQ(snap.adjacency, before.adjacency);
  EXPECT_EQ(snap.row_end, before.row_end);
}

// ---- randomized mutate/evaluate interleavings ---------------------------

struct mutation_state {
  std::vector<edge_id> dead;  // killed and not yet revived
};

// One random edge op; kills are guarded so host-facing connectivity (a
// precondition of the path metrics) is never broken.
void random_op(network_graph& g, rng& r, mutation_state& st) {
  const std::uint64_t pick = r.next_below(4);
  if (pick == 0 && !st.dead.empty()) {  // revive
    const std::size_t k = r.next_index(st.dead.size());
    g.revive_edge(st.dead[k]);
    st.dead.erase(st.dead.begin() + static_cast<std::ptrdiff_t>(k));
    return;
  }
  if (pick == 1) {  // add, when ports allow
    for (int attempt = 0; attempt < 8; ++attempt) {
      const node_id a{r.next_index(g.node_count())};
      const node_id b{r.next_index(g.node_count())};
      if (a == b || g.free_ports(a) <= 0 || g.free_ports(b) <= 0) continue;
      g.add_edge(a, b, gbps{100.0});
      return;
    }
    return;
  }
  // kill (the most common lifecycle op), reverted if it would partition
  const auto live = g.live_edges();
  if (live.size() <= 1) return;
  const edge_id victim = live[r.next_index(live.size())];
  g.remove_edge(victim);
  if (!hosts_connected(g)) {
    g.revive_edge(victim);
    return;
  }
  st.dead.push_back(victim);
}

void expect_stats_equal(const path_length_stats& got,
                        const path_length_stats& want, int step) {
  EXPECT_EQ(got.mean, want.mean) << "step " << step;
  EXPECT_EQ(got.diameter, want.diameter) << "step " << step;
  EXPECT_EQ(got.p99, want.p99) << "step " << step;
  EXPECT_EQ(got.hop_histogram, want.hop_histogram) << "step " << step;
}

void expect_loads_equal(const link_load_report& got,
                        const link_load_report& want, int step) {
  EXPECT_EQ(got.loads_ab, want.loads_ab) << "step " << step;
  EXPECT_EQ(got.loads_ba, want.loads_ba) << "step " << step;
  EXPECT_EQ(got.max_load, want.max_load) << "step " << step;
  EXPECT_EQ(got.mean_load, want.mean_load) << "step " << step;
}

void run_interleaving(network_graph g, int steps, std::uint64_t seed) {
  const gbps rate{25.0};
  incremental_metrics inc(g, rate);
  rng r(seed);
  mutation_state st;
  for (int step = 0; step < steps; ++step) {
    const std::uint64_t ops = 1 + r.next_below(3);
    for (std::uint64_t k = 0; k < ops; ++k) random_op(g, r, st);

    const path_length_stats want_stats = [&] {
      distance_cache fresh(g);
      return compute_path_length_stats(g, fresh);
    }();
    expect_stats_equal(inc.path_stats(), want_stats, step);

    const traffic_matrix tm = uniform_traffic(g, rate);
    expect_loads_equal(inc.ecmp_loads(), compute_ecmp_loads(g, tm), step);
    const throughput_result want_tp = ecmp_throughput(g, tm);
    const throughput_result got_tp = inc.ecmp_throughput();
    EXPECT_EQ(got_tp.alpha, want_tp.alpha) << "step " << step;
    EXPECT_EQ(got_tp.max_utilization, want_tp.max_utilization)
        << "step " << step;
    EXPECT_EQ(got_tp.mean_utilization, want_tp.mean_utilization)
        << "step " << step;
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;  // one divergent step is enough diagnosis
    }
  }
}

TEST(delta_eval_property, jellyfish_interleaving_bit_identical_600_steps) {
  jellyfish_params p = small_jelly();
  network_graph g = build_jellyfish(p);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    g.node(node_id{i}).radix += 4;  // port slack so adds can land
  }
  run_interleaving(std::move(g), 600, 101);
}

TEST(delta_eval_property, clos_interleaving_bit_identical_400_steps) {
  run_interleaving(build_fat_tree(4, gbps{100.0}), 400, 202);
}

TEST(delta_eval_property, leaf_spine_interleaving_bit_identical_200_steps) {
  leaf_spine_params p;
  p.leaves = 8;
  p.spines = 4;
  p.hosts_per_leaf = 8;
  run_interleaving(build_leaf_spine(p), 200, 303);
}

TEST(delta_eval_property, torn_journal_falls_back_to_full_rebuild) {
  network_graph g = build_jellyfish(small_jelly());
  g.set_journal_capacity(2);  // every burst of ops tears the window
  const gbps rate{25.0};
  incremental_metrics inc(g, rate);
  (void)inc.path_stats();
  rng r(7);
  mutation_state st;
  for (int step = 0; step < 20; ++step) {
    for (int k = 0; k < 3; ++k) random_op(g, r, st);
    const path_length_stats want = [&] {
      distance_cache fresh(g);
      return compute_path_length_stats(g, fresh);
    }();
    expect_stats_equal(inc.path_stats(), want, step);
    const traffic_matrix tm = uniform_traffic(g, rate);
    expect_loads_equal(inc.ecmp_loads(), compute_ecmp_loads(g, tm), step);
  }
  // 3 ops per step never fit in a 2-entry journal: the cache must have
  // taken the wholesale-rebuild path, and results stayed identical.
  EXPECT_GT(inc.dcache().full_invalidations(), 0u);
}

TEST(delta_eval_property, node_add_tears_cache_into_full_rebuild) {
  // incremental_metrics PN_CHECKs a fixed node set (the evaluator
  // contract); the tear-and-rebuild fallback lives one layer down, in
  // distance_cache, which must survive a node add with correct rows.
  network_graph g = build_jellyfish(small_jelly());
  distance_cache cache(g);
  (void)cache.row(node_id{0});
  const std::size_t before = cache.full_invalidations();
  node_info sw;
  sw.name = "new-spine";
  sw.kind = node_kind::spine;
  sw.radix = 8;
  sw.port_rate = gbps{100.0};
  const node_id n = g.add_node(sw);
  g.add_edge(n, node_id{0}, gbps{100.0});
  g.add_edge(n, node_id{1}, gbps{100.0});
  // The journal is torn (add_node), so the next observation must take
  // the wholesale-rebuild path — and still match a fresh cache exactly.
  distance_cache fresh(g);
  EXPECT_EQ(cache.row(node_id{0}), fresh.row(node_id{0}));
  EXPECT_EQ(cache.row(n), fresh.row(n));
  EXPECT_GT(cache.full_invalidations(), before);
}

// ---- scenario sweeps: delta and cold produce identical CSV --------------

evaluation_options light_eval_options() {
  evaluation_options opt;
  opt.run_repair_sim = false;  // heavy and orthogonal to the delta path
  opt.seed = 11;
  return opt;
}

TEST(delta_eval_property, scenario_sweep_csv_is_byte_identical) {
  leaf_spine_params lp;
  lp.leaves = 8;
  lp.spines = 4;
  lp.hosts_per_leaf = 8;
  const network_graph base = build_leaf_spine(lp);
  edge_decom_params dp;
  dp.switches = 1;
  dp.links_per_step = 2;
  dp.seed = 5;
  const deploy_scenario sc = plan_decom_edge_scenario(base, dp);
  const std::vector<sweep_point> grid = scenario_sweep_points(sc);

  const auto run_mode = [&](bool delta) {
    network_graph g = base;
    sweep_options sopt;
    sopt.scenario_graph = &g;
    sopt.delta_eval = delta;
    const sweep_results results =
        run_sweep(grid, light_eval_options(), sopt);
    EXPECT_TRUE(results.failures.empty());
    EXPECT_EQ(results.reports.size(), grid.size());
    return sweep_to_csv(results);
  };

  const std::string cold = run_mode(false);
  const std::string delta = run_mode(true);
  EXPECT_EQ(cold, delta);
}

TEST(delta_eval_property, expansion_scenario_sweep_csv_is_byte_identical) {
  jellyfish_params jp = small_jelly();
  network_graph seed_graph = build_jellyfish(jp);
  for (std::size_t i = 0; i < seed_graph.node_count(); ++i) {
    seed_graph.node(node_id{i}).radix += 4;
  }
  edge_expansion_params ep;
  ep.steps = 4;
  ep.links_per_step = 2;
  ep.seed = 9;
  const deploy_scenario sc = plan_expansion_edge_scenario(seed_graph, ep);
  const std::vector<sweep_point> grid = scenario_sweep_points(sc);

  const auto run_mode = [&](bool delta) {
    network_graph g = seed_graph;
    sweep_options sopt;
    sopt.scenario_graph = &g;
    sopt.delta_eval = delta;
    const sweep_results results =
        run_sweep(grid, light_eval_options(), sopt);
    EXPECT_TRUE(results.failures.empty());
    return sweep_to_csv(results);
  };

  EXPECT_EQ(run_mode(false), run_mode(true));
}

}  // namespace
}  // namespace pn
