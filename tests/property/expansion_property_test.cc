// Property sweeps over the Clos expansion planner: conservation laws that
// must hold for every (from, to, wiring) combination.
#include <gtest/gtest.h>

#include <numeric>

#include "deploy/expansion.h"

namespace pn {
namespace {

struct expansion_case {
  int from_pods;
  int to_pods;
  spine_wiring wiring;
};

class expansion_properties
    : public ::testing::TestWithParam<expansion_case> {
 protected:
  static clos_expansion_params params_for(const expansion_case& c) {
    clos_expansion_params p;
    p.spine_groups = 4;
    p.spines_per_group = 4;
    p.ports_per_spine = 32;
    p.from_pods = c.from_pods;
    p.to_pods = c.to_pods;
    p.wiring = c.wiring;
    return p;
  }
};

TEST_P(expansion_properties, port_conservation) {
  const clos_expansion_params p = params_for(GetParam());
  const int group_ports = p.spines_per_group * p.ports_per_spine;
  const auto before = stripe_ports(group_ports, p.from_pods);
  const auto after = stripe_ports(group_ports, p.to_pods);
  // Striping always uses every port, before and after.
  EXPECT_EQ(std::accumulate(before.begin(), before.end(), 0), group_ports);
  EXPECT_EQ(std::accumulate(after.begin(), after.end(), 0), group_ports);
  // And stays balanced within one port.
  const auto [mn, mx] = std::minmax_element(after.begin(), after.end());
  EXPECT_LE(*mx - *mn, 1);
}

TEST_P(expansion_properties, moved_links_match_striping_delta) {
  const clos_expansion_params p = params_for(GetParam());
  const expansion_plan plan = plan_clos_expansion(p);
  const int group_ports = p.spines_per_group * p.ports_per_spine;
  const auto before = stripe_ports(group_ports, p.from_pods);
  const auto after = stripe_ports(group_ports, p.to_pods);
  int shed = 0, gained = 0;
  for (int pod = 0; pod < p.to_pods; ++pod) {
    const int b =
        pod < p.from_pods ? before[static_cast<std::size_t>(pod)] : 0;
    const int a = after[static_cast<std::size_t>(pod)];
    shed += std::max(0, b - a);
    gained += pod >= p.from_pods ? a : 0;
  }
  EXPECT_EQ(plan.links_rewired, shed * p.spine_groups);
  EXPECT_EQ(plan.links_added, gained * p.spine_groups);
  // In a fixed-size spine, everything a new pod gains, old pods shed.
  EXPECT_EQ(plan.links_rewired, plan.links_added);
}

TEST_P(expansion_properties, work_accounting_is_consistent) {
  const clos_expansion_params p = params_for(GetParam());
  const expansion_plan plan = plan_clos_expansion(p);
  switch (p.wiring) {
    case spine_wiring::direct:
      EXPECT_EQ(plan.floor_cable_pulls, plan.links_added);
      EXPECT_EQ(plan.jumper_moves, 0);
      EXPECT_EQ(plan.ocs_reconfigs, 0);
      EXPECT_EQ(plan.dead_cables_left + plan.floor_cable_removals,
                plan.links_rewired);
      break;
    case spine_wiring::patch_panel:
      EXPECT_EQ(plan.jumper_moves, plan.links_rewired + plan.links_added);
      EXPECT_EQ(plan.ocs_reconfigs, 0);
      EXPECT_LE(plan.floor_cable_pulls, plan.links_added);
      EXPECT_GT(plan.panels_touched, 0);
      break;
    case spine_wiring::ocs:
      EXPECT_EQ(plan.ocs_reconfigs, plan.links_rewired + plan.links_added);
      EXPECT_EQ(plan.jumper_moves, 0);
      EXPECT_EQ(plan.drain_windows, 1);
      break;
  }
  EXPECT_GE(plan.labor.value(), 0.0);
}

TEST_P(expansion_properties, indirection_never_costs_more_labor) {
  const expansion_case c = GetParam();
  clos_expansion_params direct = params_for(c);
  direct.wiring = spine_wiring::direct;
  clos_expansion_params panel = params_for(c);
  panel.wiring = spine_wiring::patch_panel;
  clos_expansion_params ocs = params_for(c);
  ocs.wiring = spine_wiring::ocs;
  const double ld = plan_clos_expansion(direct).labor.value();
  const double lp = plan_clos_expansion(panel).labor.value();
  const double lo = plan_clos_expansion(ocs).labor.value();
  EXPECT_LE(lp, ld);
  EXPECT_LE(lo, lp);
}

std::vector<expansion_case> expansion_grid() {
  std::vector<expansion_case> out;
  for (const auto [from, to] :
       {std::pair{2, 4}, {4, 8}, {8, 16}, {16, 32}, {3, 5}, {5, 12},
        {7, 9}}) {
    for (const spine_wiring w : {spine_wiring::direct,
                                 spine_wiring::patch_panel,
                                 spine_wiring::ocs}) {
      out.push_back({from, to, w});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    grid, expansion_properties, ::testing::ValuesIn(expansion_grid()),
    [](const ::testing::TestParamInfo<expansion_case>& info) {
      return std::string("from") + std::to_string(info.param.from_pods) +
             "_to" + std::to_string(info.param.to_pods) + "_" +
             spine_wiring_name(info.param.wiring);
    });

}  // namespace
}  // namespace pn
