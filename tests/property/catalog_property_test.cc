// Property sweeps over the hardware catalog: the media-selection rules
// every other module depends on must hold across the full (rate, length)
// grid, not just the spot checks in catalog_test.cc.
#include <gtest/gtest.h>

#include "physical/catalog.h"

namespace pn {
namespace {

using namespace pn::literals;

struct grid_point {
  double rate_gbps;
  double length_m;
};

class catalog_grid : public ::testing::TestWithParam<grid_point> {
 protected:
  const catalog cat = catalog::standard();
};

TEST_P(catalog_grid, best_link_is_cheapest_feasible) {
  const auto [rate, len] = GetParam();
  const auto options = cat.link_options(gbps{rate}, meters{len});
  const auto best = cat.best_link(gbps{rate}, meters{len});
  if (options.empty()) {
    EXPECT_FALSE(best.is_ok());
    return;
  }
  ASSERT_TRUE(best.is_ok());
  for (const link_choice& o : options) {
    EXPECT_LE(best.value().total_cost.value(), o.total_cost.value());
  }
}

TEST_P(catalog_grid, every_option_respects_reach) {
  const auto [rate, len] = GetParam();
  for (const link_choice& o : cat.link_options(gbps{rate}, meters{len})) {
    EXPECT_LE(len, o.cable->max_length.value()) << o.cable->name;
    if (o.transceiver != nullptr) {
      EXPECT_LE(len, o.transceiver->reach.value());
    } else {
      EXPECT_DOUBLE_EQ(o.cable->rate.value(), rate) << o.cable->name;
    }
  }
}

TEST_P(catalog_grid, cost_estimate_never_below_best_feasible) {
  const auto [rate, len] = GetParam();
  const auto best = cat.best_link(gbps{rate}, meters{len});
  const dollars estimate =
      cat.cheapest_cost_estimate(gbps{rate}, meters{len});
  if (best.is_ok()) {
    EXPECT_DOUBLE_EQ(estimate.value(), best.value().total_cost.value());
  } else {
    EXPECT_GT(estimate.value(), 0.0);  // penalty gradient
  }
}

TEST_P(catalog_grid, indirection_never_adds_options) {
  const auto [rate, len] = GetParam();
  const auto direct = cat.link_options(gbps{rate}, meters{len}, 0);
  const auto patched = cat.link_options(gbps{rate}, meters{len}, 1);
  EXPECT_LE(patched.size(), direct.size());
  for (const link_choice& o : patched) {
    EXPECT_EQ(o.cable->medium, cable_medium::fiber);
  }
}

std::vector<grid_point> catalog_points() {
  std::vector<grid_point> out;
  for (const double rate : {100.0, 200.0, 400.0, 800.0}) {
    for (const double len : {0.5, 2.0, 3.0, 5.0, 10.0, 50.0, 120.0, 400.0,
                             1500.0}) {
      out.push_back({rate, len});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    grid, catalog_grid, ::testing::ValuesIn(catalog_points()),
    [](const ::testing::TestParamInfo<grid_point>& info) {
      return "r" + std::to_string(static_cast<int>(info.param.rate_gbps)) +
             "_len" +
             std::to_string(static_cast<int>(info.param.length_m * 10));
    });

TEST(catalog_monotonic, cost_nondecreasing_in_length_per_medium) {
  const catalog cat = catalog::standard();
  for (const double rate : {100.0, 400.0}) {
    double prev_cost = 0.0;
    for (const double len : {1.0, 2.0, 5.0, 20.0, 80.0, 300.0}) {
      const auto best = cat.best_link(gbps{rate}, meters{len});
      if (!best.is_ok()) break;
      // Note: cost is NOT globally monotone across media boundaries (a
      // long AOC can undercut a short-run fiber+transceiver pair), but
      // the envelope over best choices should never collapse to zero.
      EXPECT_GT(best.value().total_cost.value(), 0.0);
      prev_cost = best.value().total_cost.value();
    }
    EXPECT_GT(prev_cost, 0.0);
  }
}

TEST(catalog_monotonic, diameter_ordering_dac_thickest_at_400g) {
  const catalog cat = catalog::standard();
  double dac = 0, aec = 0, aoc = 0;
  for (const link_choice& o :
       cat.link_options(400_gbps, meters{2.0})) {
    switch (o.cable->medium) {
      case cable_medium::copper_dac:
        dac = o.diameter.value();
        break;
      case cable_medium::active_electrical:
        aec = o.diameter.value();
        break;
      case cable_medium::active_optical:
        aoc = o.diameter.value();
        break;
      default:
        break;
    }
  }
  EXPECT_GT(dac, aec);
  EXPECT_GT(aec, aoc);
}

}  // namespace
}  // namespace pn
