// Differential properties of the CSR/distance-cache fast paths against
// the adjacency-list reference implementations, over randomized graphs
// with dead edges. The contract is bit-identity, not approximation: the
// CSR sweeps preserve neighbor order, so every double accumulation must
// come out exactly equal — EXPECT_EQ on doubles is deliberate.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "topology/distance_cache.h"
#include "topology/generators/clos.h"
#include "topology/generators/jellyfish.h"
#include "topology/metrics.h"
#include "topology/routing.h"
#include "topology/traffic.h"

namespace pn {
namespace {

using namespace pn::literals;

// Kills ~frac of the live edges, keeping the graph connected (a removal
// that would disconnect it is rolled back).
void kill_edges(network_graph& g, double frac, std::uint64_t seed) {
  rng r(seed);
  const auto target =
      static_cast<std::size_t>(frac * static_cast<double>(g.live_edges().size()));
  std::size_t killed = 0;
  for (std::size_t attempt = 0; attempt < 4 * target && killed < target;
       ++attempt) {
    const auto live = g.live_edges();
    const edge_id victim = live[r.next_index(live.size())];
    network_graph trial = g;
    trial.remove_edge(victim);
    if (!is_connected(trial)) continue;
    g = std::move(trial);
    ++killed;
  }
}

std::vector<network_graph> corpus() {
  std::vector<network_graph> graphs;
  for (const std::uint64_t seed : {3u, 17u, 92u}) {
    jellyfish_params p;
    p.switches = 48;
    p.radix = 12;
    p.hosts_per_switch = 6;
    p.seed = seed;
    network_graph g = build_jellyfish(p);
    kill_edges(g, 0.08, seed * 31 + 1);
    graphs.push_back(std::move(g));
  }
  {
    clos_params p;  // small 3-stage Clos
    p.pods = 4;
    p.tors_per_pod = 3;
    p.aggs_per_pod = 3;
    p.spine_groups = 3;
    p.spines_per_group = 2;
    p.hosts_per_tor = 4;
    network_graph g = build_clos(p);
    kill_edges(g, 0.05, 77);
    graphs.push_back(std::move(g));
  }
  graphs.push_back(build_fat_tree(6, 40_gbps));
  return graphs;
}

// The seed implementation of path-length stats (queue BFS per source +
// sample_stats over ordered pairs); the histogram rewrite must match it
// bit for bit.
path_length_stats path_length_stats_reference(const network_graph& g) {
  const auto sources = g.host_facing_nodes();
  path_length_stats out;
  sample_stats hops;
  for (node_id s : sources) {
    const std::vector<int> dist = bfs_distances(g, s);
    for (node_id t : sources) {
      if (s == t) continue;
      hops.add(static_cast<double>(dist[t.index()]));
    }
  }
  out.mean = hops.mean();
  out.diameter = static_cast<int>(hops.max());
  out.p99 = hops.percentile(0.99);
  out.hop_histogram.assign(static_cast<std::size_t>(out.diameter) + 1, 0.0);
  for (double h : hops.samples()) {
    out.hop_histogram[static_cast<std::size_t>(h)] += 1.0;
  }
  for (double& f : out.hop_histogram) {
    f /= static_cast<double>(hops.count());
  }
  return out;
}

TEST(csr_property, bfs_rows_bit_identical_to_reference) {
  for (const network_graph& g : corpus()) {
    distance_cache cache(g);
    std::vector<node_id> all;
    for (std::size_t i = 0; i < g.node_count(); ++i) {
      all.push_back(node_id{i});
    }
    cache.warm_all(all, 2);
    for (node_id s : all) {
      ASSERT_EQ(cache.row(s), bfs_distances(g, s))
          << g.family << " source " << s.index();
    }
  }
}

TEST(csr_property, ecmp_loads_bit_identical_to_reference) {
  for (const network_graph& g : corpus()) {
    const traffic_matrix tm = uniform_traffic(g, 25_gbps);
    const link_load_report ref = compute_ecmp_loads_reference(g, tm);
    const link_load_report fast = compute_ecmp_loads(g, tm);
    ASSERT_EQ(ref.loads_ab.size(), fast.loads_ab.size());
    for (std::size_t e = 0; e < ref.loads_ab.size(); ++e) {
      ASSERT_EQ(ref.loads_ab[e], fast.loads_ab[e])
          << g.family << " edge " << e << " (ab)";
      ASSERT_EQ(ref.loads_ba[e], fast.loads_ba[e])
          << g.family << " edge " << e << " (ba)";
    }
    EXPECT_EQ(ref.max_load, fast.max_load) << g.family;
    EXPECT_EQ(ref.mean_load, fast.mean_load) << g.family;

    // A shared warm cache must not change anything either.
    distance_cache cache(g);
    cache.warm_all(g.host_facing_nodes(), 2);
    const link_load_report shared = compute_ecmp_loads(g, tm, cache);
    EXPECT_EQ(ref.max_load, shared.max_load) << g.family;
    EXPECT_EQ(ref.mean_load, shared.mean_load) << g.family;
    EXPECT_EQ(ref.loads_ab, shared.loads_ab) << g.family;
    EXPECT_EQ(ref.loads_ba, shared.loads_ba) << g.family;
  }
}

TEST(csr_property, path_length_stats_bit_identical_to_reference) {
  for (const network_graph& g : corpus()) {
    const path_length_stats ref = path_length_stats_reference(g);
    const path_length_stats fast = compute_path_length_stats(g);
    EXPECT_EQ(ref.mean, fast.mean) << g.family;
    EXPECT_EQ(ref.diameter, fast.diameter) << g.family;
    EXPECT_EQ(ref.p99, fast.p99) << g.family;
    EXPECT_EQ(ref.hop_histogram, fast.hop_histogram) << g.family;
  }
}

TEST(csr_property, vlb_loads_unchanged_by_shared_cache) {
  for (const network_graph& g : corpus()) {
    const traffic_matrix tm = uniform_traffic(g, 10_gbps);
    const link_load_report cold = compute_vlb_loads(g, tm);
    distance_cache cache(g);
    const link_load_report shared = compute_vlb_loads(g, tm, cache);
    EXPECT_EQ(cold.loads_ab, shared.loads_ab) << g.family;
    EXPECT_EQ(cold.loads_ba, shared.loads_ba) << g.family;
    EXPECT_EQ(cold.max_load, shared.max_load) << g.family;
  }
}

}  // namespace
}  // namespace pn
