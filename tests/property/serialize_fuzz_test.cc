// Randomized round-trip property: any model the API can express must
// serialize and parse back to a fixed point, across many seeds (TEST_P).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "twin/diff.h"
#include "twin/serialize.h"

namespace pn {
namespace {

twin_model random_model(std::uint64_t seed) {
  rng r(seed);
  twin_model m;
  const std::vector<std::string> kinds{"switch", "rack", "cable",
                                       "patch_panel"};
  const auto entities = 5 + r.next_index(40);
  std::vector<entity_id> ids;
  for (std::size_t i = 0; i < entities; ++i) {
    const std::string kind = kinds[r.next_index(kinds.size())];
    const entity_id e =
        m.add_entity(kind, str_format("%s_%zu", kind.c_str(), i));
    // Random attributes of every type.
    if (r.next_bool(0.8)) {
      m.set_attr(e, "num", r.next_double(0.0, 1e6));
    }
    if (r.next_bool(0.6)) {
      m.set_attr(e, "count",
                 static_cast<std::int64_t>(r.next_int(-1000, 1000)));
    }
    if (r.next_bool(0.5)) {
      m.set_attr(e, "note",
                 std::string("text with spaces ") +
                     std::to_string(r.next_u64() % 100));
    }
    if (r.next_bool(0.5)) {
      // Hostile string values: every byte class the line format must
      // escape or preserve (newlines, CRLF, tabs, backslashes, leading/
      // trailing whitespace, empty).
      const std::vector<std::string> nasty{
          "",
          "line1\nline2",
          "crlf\r\nending",
          "lone\rcarriage",
          "tab\tseparated",
          " leading and trailing ",
          "back\\slash and \\n literal",
          "trailing newline\n",
          "\n",
      };
      m.set_attr(e, "nasty", nasty[r.next_index(nasty.size())]);
    }
    if (r.next_bool(0.4)) {
      m.set_attr(e, "flag", r.next_bool(0.5));
    }
    ids.push_back(e);
  }
  const auto relations = r.next_index(3 * entities);
  for (std::size_t i = 0; i < relations; ++i) {
    const entity_id a = ids[r.next_index(ids.size())];
    const entity_id b = ids[r.next_index(ids.size())];
    if (a == b) continue;
    (void)m.add_relation(r.next_bool(0.5) ? "connects" : "feeds", a, b);
  }
  // Random removals exercise the liveness filtering.
  for (int i = 0; i < 3; ++i) {
    const entity_id victim = ids[r.next_index(ids.size())];
    if (m.entity_alive(victim) && m.relations_of(victim).empty()) {
      (void)m.remove_entity(victim);
    }
  }
  return m;
}

class serialize_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(serialize_fuzz, round_trip_is_fixed_point) {
  const twin_model m = random_model(GetParam());
  const std::string once = serialize_twin(m);
  const auto parsed = parse_twin(once);
  ASSERT_TRUE(parsed.is_ok()) << parsed.error().to_string();
  EXPECT_EQ(serialize_twin(parsed.value()), once);
}

TEST_P(serialize_fuzz, round_trip_diffs_empty) {
  const twin_model m = random_model(GetParam());
  const auto parsed = parse_twin(serialize_twin(m));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(diff_twins(m, parsed.value()).empty());
  EXPECT_TRUE(diff_twins(parsed.value(), m).empty());
}

TEST_P(serialize_fuzz, counts_preserved) {
  const twin_model m = random_model(GetParam());
  const auto parsed = parse_twin(serialize_twin(m));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().live_entity_count(), m.live_entity_count());
  EXPECT_EQ(parsed.value().live_relation_count(),
            m.live_relation_count());
}

INSTANTIATE_TEST_SUITE_P(seeds, serialize_fuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace pn
