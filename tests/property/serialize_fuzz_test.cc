// Randomized round-trip property: any model the API can express must
// serialize and parse back to a fixed point, across many seeds (TEST_P).
//
// The wire_fuzz half hammers the service framing and request parsing
// with byte soup, torn streams, and lying length prefixes: every such
// stream must end in bad_frame or a clean EOF — never a crash, a hang,
// or a silently swallowed frame. Run under ASan in CI.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "common/rng.h"
#include "common/strings.h"
#include "service/framing.h"
#include "service/protocol.h"
#include "twin/diff.h"
#include "twin/serialize.h"

namespace pn {
namespace {

twin_model random_model(std::uint64_t seed) {
  rng r(seed);
  twin_model m;
  const std::vector<std::string> kinds{"switch", "rack", "cable",
                                       "patch_panel"};
  const auto entities = 5 + r.next_index(40);
  std::vector<entity_id> ids;
  for (std::size_t i = 0; i < entities; ++i) {
    const std::string kind = kinds[r.next_index(kinds.size())];
    const entity_id e =
        m.add_entity(kind, str_format("%s_%zu", kind.c_str(), i));
    // Random attributes of every type.
    if (r.next_bool(0.8)) {
      m.set_attr(e, "num", r.next_double(0.0, 1e6));
    }
    if (r.next_bool(0.6)) {
      m.set_attr(e, "count",
                 static_cast<std::int64_t>(r.next_int(-1000, 1000)));
    }
    if (r.next_bool(0.5)) {
      m.set_attr(e, "note",
                 std::string("text with spaces ") +
                     std::to_string(r.next_u64() % 100));
    }
    if (r.next_bool(0.5)) {
      // Hostile string values: every byte class the line format must
      // escape or preserve (newlines, CRLF, tabs, backslashes, leading/
      // trailing whitespace, empty).
      const std::vector<std::string> nasty{
          "",
          "line1\nline2",
          "crlf\r\nending",
          "lone\rcarriage",
          "tab\tseparated",
          " leading and trailing ",
          "back\\slash and \\n literal",
          "trailing newline\n",
          "\n",
      };
      m.set_attr(e, "nasty", nasty[r.next_index(nasty.size())]);
    }
    if (r.next_bool(0.4)) {
      m.set_attr(e, "flag", r.next_bool(0.5));
    }
    ids.push_back(e);
  }
  const auto relations = r.next_index(3 * entities);
  for (std::size_t i = 0; i < relations; ++i) {
    const entity_id a = ids[r.next_index(ids.size())];
    const entity_id b = ids[r.next_index(ids.size())];
    if (a == b) continue;
    (void)m.add_relation(r.next_bool(0.5) ? "connects" : "feeds", a, b);
  }
  // Random removals exercise the liveness filtering.
  for (int i = 0; i < 3; ++i) {
    const entity_id victim = ids[r.next_index(ids.size())];
    if (m.entity_alive(victim) && m.relations_of(victim).empty()) {
      (void)m.remove_entity(victim);
    }
  }
  return m;
}

class serialize_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(serialize_fuzz, round_trip_is_fixed_point) {
  const twin_model m = random_model(GetParam());
  const std::string once = serialize_twin(m);
  const auto parsed = parse_twin(once);
  ASSERT_TRUE(parsed.is_ok()) << parsed.error().to_string();
  EXPECT_EQ(serialize_twin(parsed.value()), once);
}

TEST_P(serialize_fuzz, round_trip_diffs_empty) {
  const twin_model m = random_model(GetParam());
  const auto parsed = parse_twin(serialize_twin(m));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(diff_twins(m, parsed.value()).empty());
  EXPECT_TRUE(diff_twins(parsed.value(), m).empty());
}

TEST_P(serialize_fuzz, counts_preserved) {
  const twin_model m = random_model(GetParam());
  const auto parsed = parse_twin(serialize_twin(m));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().live_entity_count(), m.live_entity_count());
  EXPECT_EQ(parsed.value().live_relation_count(),
            m.live_relation_count());
}

INSTANTIATE_TEST_SUITE_P(seeds, serialize_fuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- wire framing fuzz ---------------------------------------------------

struct fd_pair {
  int a = -1;
  int b = -1;
  fd_pair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~fd_pair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

class wire_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(wire_fuzz, garbage_bytes_never_crash_the_decoder) {
  rng r(GetParam());
  std::string soup;
  for (int i = 0; i < 4096; ++i) {
    soup.push_back(static_cast<char>(r.next_u64() & 0xff));
  }
  // Random chunking exercises every partial-header / partial-payload
  // state; the tight max_payload makes lying prefixes likely.
  frame_decoder dec(/*max_payload=*/512);
  std::size_t off = 0;
  while (off < soup.size() && !dec.failed()) {
    const std::size_t n =
        std::min(1 + r.next_index(64), soup.size() - off);
    dec.feed(std::string_view(soup).substr(off, n));
    off += n;
    while (dec.next().has_value()) {
    }
  }
  if (dec.failed()) {
    EXPECT_EQ(dec.error().code(), status_code::bad_frame);
    // Latched for good: more bytes never resurrect the stream.
    dec.feed(encode_frame("fine", 512));
    EXPECT_FALSE(dec.next().has_value());
  }
}

TEST_P(wire_fuzz, oversized_length_prefix_is_always_bad_frame) {
  rng r(GetParam());
  const std::size_t cap = 1 + r.next_index(4096);
  const std::uint64_t lie = cap + 1 + r.next_index(1u << 20);
  std::string header(frame_header_bytes, '\0');
  for (std::size_t i = 0; i < frame_header_bytes; ++i) {
    header[i] = static_cast<char>(
        (lie >> (8 * (frame_header_bytes - 1 - i))) & 0xff);
  }
  frame_decoder dec(cap);
  dec.feed(header);
  ASSERT_TRUE(dec.failed());
  EXPECT_EQ(dec.error().code(), status_code::bad_frame);
}

TEST_P(wire_fuzz, torn_streams_yield_whole_frames_then_eof_or_bad_frame) {
  rng r(GetParam());
  std::vector<std::string> payloads;
  std::string stream;
  const std::size_t frames = 1 + r.next_index(6);
  for (std::size_t i = 0; i < frames; ++i) {
    std::string p;
    const std::size_t len = r.next_index(300);
    for (std::size_t j = 0; j < len; ++j) {
      p.push_back(static_cast<char>(r.next_u64() & 0xff));
    }
    payloads.push_back(p);
    stream += encode_frame(p);
  }
  const std::size_t cut = r.next_index(stream.size() + 1);

  // How many frames survive the tear, and is the tear on a boundary?
  std::size_t whole = 0;
  std::size_t boundary = 0;
  for (const std::string& p : payloads) {
    const std::size_t end = boundary + frame_header_bytes + p.size();
    if (end > cut) break;
    boundary = end;
    ++whole;
  }

  fd_pair fds;
  const std::string torn = stream.substr(0, cut);
  ASSERT_EQ(::write(fds.a, torn.data(), torn.size()),
            static_cast<ssize_t>(torn.size()));
  ::close(fds.a);
  fds.a = -1;

  for (std::size_t i = 0; i < whole; ++i) {
    auto got = read_frame(fds.b);
    ASSERT_TRUE(got.is_ok()) << got.error().to_string();
    ASSERT_TRUE(got.value().has_value());
    EXPECT_EQ(*got.value(), payloads[i]);  // nothing swallowed or torn
  }
  auto tail = read_frame(fds.b);
  if (cut == boundary) {
    ASSERT_TRUE(tail.is_ok());
    EXPECT_FALSE(tail.value().has_value());  // clean EOF
  } else {
    ASSERT_FALSE(tail.is_ok());  // mid-frame tear
    EXPECT_EQ(tail.error().code(), status_code::bad_frame);
  }
}

TEST_P(wire_fuzz, garbage_payloads_never_crash_request_parsing) {
  rng r(GetParam());
  // Pure soup, newline-rich soup, and mutated real requests: parse or
  // reject with invalid_argument, never crash (ASan watches).
  for (int round = 0; round < 50; ++round) {
    std::string payload;
    const std::size_t len = r.next_index(600);
    for (std::size_t j = 0; j < len; ++j) {
      payload.push_back(r.next_bool(0.15)
                            ? '\n'
                            : static_cast<char>(r.next_u64() & 0xff));
    }
    auto parsed = parse_request(payload);
    if (!parsed.is_ok()) {
      EXPECT_EQ(parsed.error().code(), status_code::invalid_argument);
    }
    auto response = parse_response(payload);
    if (!response.is_ok()) {
      EXPECT_EQ(response.error().code(), status_code::invalid_argument);
    }
  }

  eval_request req;
  req.name = "fuzzed";
  req.design_twin = serialize_twin(random_model(GetParam()));
  const std::string good = encode_eval_request(req);
  for (int round = 0; round < 50; ++round) {
    std::string mutated = good;
    const std::size_t flips = 1 + r.next_index(8);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[r.next_index(mutated.size())] =
          static_cast<char>(r.next_u64() & 0xff);
    }
    (void)parse_request(mutated);  // must not crash; outcome is free
  }
}

INSTANTIATE_TEST_SUITE_P(seeds, wire_fuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- campaign file fuzz ----------------------------------------------
//
// Campaign files face the same hostile inputs as twin files: a replay
// box can die mid-write and leave a torn file behind. Every truncation
// and every byte-soup mutation must parse to a structured error or a
// valid spec — never a crash (ASan watches).

class campaign_fuzz : public ::testing::TestWithParam<std::uint64_t> {};

campaign_spec fuzz_base_spec() {
  campaign_spec spec;
  spec.name = "fuzz";
  spec.family = "jellyfish";
  spec.size = 16;
  spec.seed = 3;
  spec.years = 3;
  campaign_event ev;
  ev.year = 1, ev.kind = campaign_event_kind::grow, ev.label = "g";
  spec.events.push_back(ev);
  ev.year = 2, ev.kind = campaign_event_kind::upgrade, ev.label = "u";
  spec.events.push_back(ev);
  ev.year = 3, ev.kind = campaign_event_kind::churn, ev.label = "c";
  spec.events.push_back(ev);
  return spec;
}

TEST(campaign_fuzz_fixed, every_truncation_parses_to_error_or_valid_spec) {
  const std::string text = serialize_campaign(fuzz_base_spec());
  for (std::size_t cut = 0; cut <= text.size(); ++cut) {
    const std::string torn = text.substr(0, cut);
    auto parsed = parse_campaign(torn);
    if (parsed.is_ok()) {
      // A clean prefix (e.g. the file torn between events) is a valid
      // campaign; it must still be a serialization fixed point.
      const std::string re = serialize_campaign(parsed.value());
      auto again = parse_campaign(re);
      ASSERT_TRUE(again.is_ok()) << "cut at " << cut;
      EXPECT_EQ(serialize_campaign(again.value()), re) << "cut at " << cut;
    } else {
      EXPECT_EQ(parsed.error().code(), status_code::invalid_argument)
          << "cut at " << cut;
    }
  }
}

TEST_P(campaign_fuzz, byte_soup_and_mutations_never_crash_the_parser) {
  rng r(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::string soup;
    const std::size_t len = r.next_index(400);
    for (std::size_t j = 0; j < len; ++j) {
      soup.push_back(r.next_bool(0.2)
                         ? '\n'
                         : static_cast<char>(r.next_u64() & 0xff));
    }
    (void)parse_campaign(soup);  // must not crash; outcome is free
  }

  const std::string good = serialize_campaign(fuzz_base_spec());
  for (int round = 0; round < 50; ++round) {
    std::string mutated = good;
    const std::size_t flips = 1 + r.next_index(8);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[r.next_index(mutated.size())] =
          static_cast<char>(r.next_u64() & 0xff);
    }
    auto parsed = parse_campaign(mutated);
    if (!parsed.is_ok()) {
      EXPECT_EQ(parsed.error().code(), status_code::invalid_argument);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(seeds, campaign_fuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace pn
