// Property sweeps across every topology family through the full physical
// pipeline: placement completes, cabling covers every edge, ECMP load
// accounting conserves volume, the twin round-trips, and seeds reproduce.
#include <gtest/gtest.h>

#include <functional>

#include "core/evaluator.h"
#include "topology/generators/clos.h"
#include "topology/generators/flattened_butterfly.h"
#include "topology/generators/jellyfish.h"
#include "topology/generators/jupiter.h"
#include "topology/generators/leaf_spine.h"
#include "topology/generators/slim_fly.h"
#include "topology/generators/vl2.h"
#include "topology/generators/xpander.h"
#include "topology/metrics.h"
#include "topology/routing.h"
#include "twin/builder.h"
#include "twin/serialize.h"

namespace pn {
namespace {

using namespace pn::literals;

struct family_case {
  std::string label;
  std::function<network_graph()> build;
};

std::vector<family_case> families() {
  std::vector<family_case> out;
  out.push_back({"fat_tree", [] { return build_fat_tree(4, 100_gbps); }});
  out.push_back({"leaf_spine", [] {
                   leaf_spine_params p;
                   p.leaves = 8;
                   p.spines = 3;
                   p.hosts_per_leaf = 6;
                   return build_leaf_spine(p);
                 }});
  out.push_back({"jellyfish", [] {
                   jellyfish_params p;
                   p.switches = 24;
                   p.radix = 10;
                   p.hosts_per_switch = 4;
                   p.seed = 2;
                   return build_jellyfish(p);
                 }});
  out.push_back({"xpander", [] {
                   xpander_params p;
                   p.degree = 5;
                   p.lift_size = 4;
                   p.hosts_per_switch = 4;
                   return build_xpander(p);
                 }});
  out.push_back({"flattened_butterfly", [] {
                   flattened_butterfly_params p;
                   p.dims = {4, 4};
                   p.hosts_per_switch = 3;
                   return build_flattened_butterfly(p);
                 }});
  out.push_back({"slim_fly", [] {
                   slim_fly_params p;
                   p.q = 5;
                   p.hosts_per_switch = 2;
                   return build_slim_fly(p).value();
                 }});
  out.push_back({"vl2", [] {
                   vl2_params p;
                   p.tors = 12;
                   p.aggs = 4;
                   p.intermediates = 2;
                   p.hosts_per_tor = 6;
                   return build_vl2(p);
                 }});
  out.push_back({"jupiter_direct", [] {
                   jupiter_params p;
                   p.agg_blocks = 5;
                   p.tors_per_block = 2;
                   p.mbs_per_block = 2;
                   p.uplinks_per_mb = 4;
                   p.ocs_count = 4;
                   p.hosts_per_tor = 4;
                   p.mode = jupiter_mode::direct;
                   return build_jupiter(p).graph;
                 }});
  return out;
}

class pipeline_properties : public ::testing::TestWithParam<family_case> {
 protected:
  static evaluation_options fast() {
    evaluation_options opt;
    opt.run_repair_sim = false;
    opt.run_throughput = false;
    return opt;
  }
};

TEST_P(pipeline_properties, full_evaluation_succeeds) {
  const network_graph g = GetParam().build();
  const auto ev = evaluate_design(g, GetParam().label, fast());
  ASSERT_TRUE(ev.is_ok()) << ev.error().to_string();
  const evaluation& e = ev.value();
  EXPECT_TRUE(e.place.complete());
  EXPECT_EQ(e.cables.runs.size(), g.live_edges().size());
  EXPECT_GT(e.report.capex().value(), 0.0);
  EXPECT_GT(e.report.time_to_deploy.value(), 0.0);
  EXPECT_LE(e.report.first_pass_yield, 1.0);
  EXPECT_GE(e.report.first_pass_yield, 0.8);
}

TEST_P(pipeline_properties, ecmp_load_volume_matches_hop_weighted_demand) {
  const network_graph g = GetParam().build();
  // One unit of demand between a far-apart endpoint pair: the total
  // directed link load must equal the hop distance exactly (ECMP splits
  // but never lengthens shortest paths).
  const auto eps = g.host_facing_nodes();
  traffic_matrix tm(eps);
  tm.set_demand(0, eps.size() - 1, 10.0);
  const auto dist = bfs_distances(g, eps.front());
  const double hops = dist[eps.back().index()];
  const auto loads = compute_ecmp_loads(g, tm);
  double total = 0.0;
  for (double v : loads.loads_ab) total += v;
  for (double v : loads.loads_ba) total += v;
  EXPECT_NEAR(total, 10.0 * hops, 1e-6);
}

TEST_P(pipeline_properties, vlb_alpha_positive_and_finite) {
  const network_graph g = GetParam().build();
  const traffic_matrix tm = uniform_traffic(g, 1_gbps);
  const auto direct = ecmp_throughput(g, tm);
  const auto vlb = vlb_throughput(g, tm);
  EXPECT_GT(direct.alpha, 0.0);
  EXPECT_GT(vlb.alpha, 0.0);
  EXPECT_LT(vlb.alpha, 1e9);
}

TEST_P(pipeline_properties, twin_serialization_round_trips) {
  const network_graph g = GetParam().build();
  const auto ev = evaluate_design(g, GetParam().label, fast());
  ASSERT_TRUE(ev.is_ok());
  const twin_model twin = build_network_twin(
      g, ev.value().place, ev.value().floor, ev.value().cables,
      catalog::standard());
  const std::string text = serialize_twin(twin);
  const auto back = parse_twin(text);
  ASSERT_TRUE(back.is_ok()) << back.error().to_string();
  EXPECT_EQ(serialize_twin(back.value()), text);
}

TEST_P(pipeline_properties, evaluation_is_deterministic) {
  const network_graph g = GetParam().build();
  evaluation_options opt = fast();
  opt.seed = 42;
  const auto a = evaluate_design(g, "a", opt);
  const auto b = evaluate_design(g, "a", opt);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_DOUBLE_EQ(a.value().report.time_to_deploy.value(),
                   b.value().report.time_to_deploy.value());
  EXPECT_DOUBLE_EQ(a.value().report.cable_cost.value(),
                   b.value().report.cable_cost.value());
  EXPECT_EQ(a.value().deployment.defects_introduced,
            b.value().deployment.defects_introduced);
}

INSTANTIATE_TEST_SUITE_P(
    families, pipeline_properties, ::testing::ValuesIn(families()),
    [](const ::testing::TestParamInfo<family_case>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace pn
