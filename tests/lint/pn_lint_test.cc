// Tests for pn_lint itself, in three layers:
//   1. scanner unit tests — comments/strings/raw strings must never leak
//      tokens, float literals must be classified, allow() must parse;
//   2. fixture tests — one deliberately-bad file per rule under
//      tests/lint/fixtures, each firing exactly once, plus a clean file
//      and a suppressed file firing zero times;
//   3. the repo gate — the real tree lints clean against the checked-in
//      baseline, which is what makes the invariants enforced rather
//      than aspirational.
#include "pn_lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "pn_lint/decls.h"

namespace pn::lint {
namespace {

std::vector<finding> findings_for(const std::string& rule,
                                  const std::vector<finding>& all) {
  std::vector<finding> out;
  for (const finding& f : all) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

std::vector<finding> findings_in(const std::string& path_piece,
                                 const std::vector<finding>& all) {
  std::vector<finding> out;
  for (const finding& f : all) {
    if (f.path.find(path_piece) != std::string::npos) out.push_back(f);
  }
  return out;
}

// ---- 1. scanner ---------------------------------------------------------

TEST(lint_scanner, strips_comments_and_strings) {
  const source_file f = scan_source(
      "src/x.cc",
      "// rand() in a line comment\n"
      "/* srand(1) in a block */\n"
      "const char* s = \"rand() in a string\";\n"
      "const char* r = R\"(rand() in a raw string)\";\n");
  for (const token& t : f.tokens) {
    if (t.kind == tok_kind::ident) {
      EXPECT_NE(t.text, "rand") << "line " << t.line;
    }
  }
  // The string *contents* are preserved for R4's comma inspection.
  auto is_str = [](const token& t) { return t.kind == tok_kind::str; };
  ASSERT_EQ(std::count_if(f.tokens.begin(), f.tokens.end(), is_str), 2);
}

TEST(lint_scanner, classifies_float_literals) {
  const source_file f =
      scan_source("src/x.cc", "a = 1.0; b = 2e9; c = 0x1p3; d = 42; e = 1'000;");
  std::vector<bool> floats;
  for (const token& t : f.tokens) {
    if (t.kind == tok_kind::number) floats.push_back(t.is_float);
  }
  ASSERT_EQ(floats.size(), 5u);
  EXPECT_TRUE(floats[0]);   // 1.0
  EXPECT_TRUE(floats[1]);   // 2e9
  EXPECT_TRUE(floats[2]);   // 0x1p3
  EXPECT_FALSE(floats[3]);  // 42
  EXPECT_FALSE(floats[4]);  // 1'000 (digit separator, still an integer)
}

TEST(lint_scanner, records_includes_and_pragma_once) {
  const source_file f = scan_source(
      "src/x.h",
      "#pragma once\n#include \"core/sweep.h\"\n#include <vector>\n");
  EXPECT_TRUE(f.has_pragma_once);
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].path, "core/sweep.h");
  EXPECT_FALSE(f.includes[0].angled);
  EXPECT_TRUE(f.includes[1].angled);
}

TEST(lint_scanner, parses_allow_lists) {
  const source_file f = scan_source(
      "src/x.cc",
      "int a;  // pn_lint: allow(nondet, float-eq) two rules at once\n");
  ASSERT_EQ(f.allows.count(1), 1u);
  EXPECT_EQ(f.allows.at(1).count("nondet"), 1u);
  EXPECT_EQ(f.allows.at(1).count("float-eq"), 1u);
}

TEST(lint_scanner, multichar_operators_stay_whole) {
  const source_file f = scan_source("src/x.cc", "out << a; x == y; p != q;");
  int shifts = 0, eqs = 0;
  for (const token& t : f.tokens) {
    if (t.kind != tok_kind::punct) continue;
    if (t.text == "<<") ++shifts;
    if (t.text == "==" || t.text == "!=") ++eqs;
  }
  EXPECT_EQ(shifts, 1);
  EXPECT_EQ(eqs, 2);
}

// ---- 2. fixtures --------------------------------------------------------

class lint_fixtures : public ::testing::Test {
 protected:
  static const std::vector<finding>& all() {
    static const std::vector<finding> findings = [] {
      lint_options opts;
      opts.root = PN_LINT_FIXTURE_DIR;
      opts.dirs = {"src"};
      opts.include_root = "src";
      opts.exclude = {};  // the fixtures ARE the input here
      return run_lint(opts);
    }();
    return findings;
  }
};

TEST_F(lint_fixtures, each_rule_fires_exactly_once_on_its_fixture) {
  const struct {
    const char* rule;
    const char* file;
  } cases[] = {
      {"nondet", "r1_nondet.cc"},     {"raw-thread", "r2_thread.cc"},
      {"naked-new", "r3_new.cc"},     {"csv-comma", "r4_csv.cc"},
      {"pragma-once", "r5_missing_pragma.h"},
      {"include-cycle", "cycle_a.h"}, {"float-eq", "r6_float_eq.cc"},
      {"hot-assoc", "r7_map.cc"},     {"guarded-by", "r8_unguarded.cc"},
      {"lock-order", "r9_inversion.cc"},
      {"unchecked-status", "r10_dropped.cc"},
  };
  for (const auto& c : cases) {
    const std::vector<finding> hits = findings_for(c.rule, all());
    ASSERT_EQ(hits.size(), 1u) << c.rule << " should fire exactly once";
    EXPECT_NE(hits[0].path.find(c.file), std::string::npos)
        << c.rule << " fired in " << hits[0].path;
  }
}

TEST_F(lint_fixtures, cycle_finding_names_both_headers) {
  const std::vector<finding> hits = findings_for("include-cycle", all());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("cycle_a.h"), std::string::npos);
  EXPECT_NE(hits[0].message.find("cycle_b.h"), std::string::npos);
}

TEST_F(lint_fixtures, clean_fixture_has_zero_findings) {
  EXPECT_TRUE(findings_in("clean.cc", all()).empty());
  EXPECT_TRUE(findings_in("clean.h", all()).empty());
}

TEST_F(lint_fixtures, suppressed_fixture_has_zero_findings) {
  const std::vector<finding> hits = findings_in("suppressed.cc", all());
  EXPECT_TRUE(hits.empty())
      << "allow() failed to silence: " << (hits.empty() ? "" : hits[0].rule);
}

TEST_F(lint_fixtures, clean_concurrency_fixture_has_zero_findings) {
  const std::vector<finding> hits = findings_in("clean_guarded.cc", all());
  EXPECT_TRUE(hits.empty())
      << "clean_guarded.cc fired: " << (hits.empty() ? "" : hits[0].message);
}

TEST_F(lint_fixtures, suppressed_concurrency_fixture_has_zero_findings) {
  const std::vector<finding> hits = findings_in("suppressed_conc.cc", all());
  EXPECT_TRUE(hits.empty())
      << "allow() failed to silence: " << (hits.empty() ? "" : hits[0].rule);
}

TEST_F(lint_fixtures, lock_order_finding_carries_the_witness_chain) {
  const std::vector<finding> hits = findings_for("lock-order", all());
  ASSERT_EQ(hits.size(), 1u);
  // The message names both mutexes and the functions that acquire them.
  EXPECT_NE(hits[0].message.find("pair_state::a_"), std::string::npos);
  EXPECT_NE(hits[0].message.find("pair_state::b_"), std::string::npos);
  EXPECT_NE(hits[0].message.find("pair_state::forward"), std::string::npos)
      << hits[0].message;
}

TEST_F(lint_fixtures, no_unexpected_findings) {
  // Exactly one finding per bad fixture — nothing else fired anywhere.
  EXPECT_EQ(all().size(), 11u);
}

// ---- decl tracker -------------------------------------------------------

TEST(lint_decls, tracks_members_and_annotations) {
  const source_file f = scan_source(
      "src/service/x.h",
      "#pragma once\n"
      "class widget {\n"
      "  std::mutex mu_;\n"
      "  int count_ PN_GUARDED_BY(mu_) = 0;\n"
      "  std::vector<int> side_ PN_EXCLUDES(mu_);\n"
      "  std::atomic<int> hits_{0};\n"
      "  std::condition_variable cv_;\n"
      "  bool plain_ = false;\n"
      "};\n");
  const file_decls d = extract_decls(f);
  ASSERT_EQ(d.members.size(), 6u);
  EXPECT_TRUE(d.members[0].is_mutex);
  EXPECT_EQ(d.members[1].name, "count_");
  EXPECT_EQ(d.members[1].guarded_by, "mu_");
  EXPECT_EQ(d.members[2].name, "side_");
  EXPECT_EQ(d.members[2].excludes, "mu_");
  EXPECT_TRUE(d.members[3].is_exempt);  // atomic
  EXPECT_TRUE(d.members[4].is_exempt);  // condition_variable
  EXPECT_EQ(d.members[5].name, "plain_");
  EXPECT_FALSE(d.members[5].is_exempt);
  EXPECT_TRUE(d.members[5].guarded_by.empty());
}

TEST(lint_decls, tracks_guard_scopes_and_accesses) {
  const source_file f = scan_source(
      "src/service/x.cc",
      "void widget::bump() {\n"
      "  before_++;\n"
      "  {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    count_++;\n"
      "  }\n"
      "  after_++;\n"
      "}\n");
  const file_decls d = extract_decls(f);
  ASSERT_EQ(d.functions.size(), 1u);
  const decl_function& fn = d.functions[0];
  EXPECT_EQ(fn.qualified, "widget::bump");
  ASSERT_EQ(fn.acquires.size(), 1u);
  EXPECT_EQ(fn.acquires[0].args, std::vector<std::string>{"mu_"});
  auto covered = [&](const char* name) {
    for (const decl_access& a : fn.accesses) {
      if (a.name == name) {
        return fn.acquires[0].begin_tok <= a.tok &&
               a.tok < fn.acquires[0].end_tok;
      }
    }
    ADD_FAILURE() << name << " not tracked";
    return false;
  };
  EXPECT_FALSE(covered("before_"));  // above the guard
  EXPECT_TRUE(covered("count_"));    // inside the guard's block
  EXPECT_FALSE(covered("after_"));   // the guard's block has closed
}

TEST(lint_decls, merges_requires_across_declarations) {
  const source_file f = scan_source(
      "src/service/x.cc",
      "class widget {\n"
      "  int locked_get() const PN_REQUIRES(mu_);\n"
      "  std::mutex mu_;\n"
      "  int v_ PN_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "int widget::locked_get() const { return v_; }\n");
  std::vector<finding> out;
  run_concurrency_rules({f}, out);
  // The out-of-line body inherits the in-class PN_REQUIRES, so the bare
  // v_ read is sanctioned.
  EXPECT_TRUE(out.empty()) << out[0].message;
}

// ---- concurrency rules --------------------------------------------------

TEST(lint_concurrency, flags_unguarded_access_and_missing_annotation) {
  const source_file f = scan_source(
      "src/service/x.cc",
      "class widget {\n"
      " public:\n"
      "  void fast();\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int naked_ = 0;\n"
      "  int count_ PN_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "void widget::fast() { count_++; }\n");
  std::vector<finding> out;
  run_concurrency_rules({f}, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rule, "guarded-by");  // naked_ lacks an annotation
  EXPECT_NE(out[0].message.find("naked_"), std::string::npos);
  EXPECT_EQ(out[1].rule, "guarded-by");  // count_ touched without mu_
  EXPECT_NE(out[1].message.find("count_"), std::string::npos);
}

TEST(lint_concurrency, requires_through_a_callee_builds_lock_edges) {
  // f holds a_ and calls g, which acquires b_; h does the reverse — a
  // cross-function inversion only visible through call resolution.
  const source_file f = scan_source(
      "src/service/x.cc",
      "class widget {\n"
      "  void f(); void g(); void h();\n"
      "  std::mutex a_; std::mutex b_;\n"
      "};\n"
      "void widget::f() { std::lock_guard<std::mutex> l(a_); g(); }\n"
      "void widget::g() { std::lock_guard<std::mutex> l(b_); }\n"
      "void widget::h() {\n"
      "  std::lock_guard<std::mutex> l(b_);\n"
      "  std::lock_guard<std::mutex> m(a_);\n"
      "}\n");
  std::vector<finding> out;
  run_concurrency_rules({f}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule, "lock-order");
  EXPECT_NE(out[0].message.find("widget::f -> widget::g"), std::string::npos)
      << out[0].message;
}

TEST(lint_concurrency, void_cast_alone_does_not_silence_r10) {
  const source_file f = scan_source(
      "src/service/x.cc",
      "struct status { bool ok; };\n"
      "class feed {\n"
      "  status refresh();\n"
      "  void a(); void b(); void c();\n"
      "};\n"
      "status feed::refresh() { return status{}; }\n"
      "void feed::a() { refresh(); }\n"
      "void feed::b() { (void)refresh(); }\n"
      "void feed::c() {\n"
      "  // pn_lint: allow(unchecked-status) probe only; failure is benign\n"
      "  (void)refresh();\n"
      "}\n");
  std::vector<finding> out;
  run_concurrency_rules({f}, out);
  ASSERT_EQ(out.size(), 2u);  // a() and b(); c() carries the justification
  EXPECT_EQ(out[0].rule, "unchecked-status");
  EXPECT_EQ(out[1].rule, "unchecked-status");
  EXPECT_NE(out[1].message.find("(void)"), std::string::npos);
}

TEST(lint_concurrency, unresolvable_objects_stay_quiet) {
  // `auto` locals and chained accesses cannot be resolved — the passes
  // must skip them rather than guess.
  const source_file f = scan_source(
      "src/service/x.cc",
      "class widget {\n"
      "  void poke();\n"
      "  std::mutex mu_;\n"
      "  int v_ PN_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "void widget::poke() {\n"
      "  auto w = lookup();\n"
      "  w->v_ = 1;\n"
      "  a.b.v_ = 2;\n"
      "}\n");
  std::vector<finding> out;
  run_concurrency_rules({f}, out);
  EXPECT_TRUE(out.empty()) << out[0].message;
}

// ---- suppression / baseline semantics -----------------------------------

TEST(lint_rules, allow_covers_own_line_and_next_only) {
  const std::vector<source_file> files = {scan_source(
      "src/x.cc",
      "// pn_lint: allow(nondet) covers the call directly below\n"
      "int a = rand();\n"
      "int b = rand();\n")};
  const std::vector<finding> out = run_rules(files, "src");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].line, 3);
}

TEST(lint_rules, wildcard_allow_silences_any_rule) {
  const std::vector<source_file> files = {scan_source(
      "src/x.cc", "int a = rand();  // pn_lint: allow(*) kitchen sink\n")};
  EXPECT_TRUE(run_rules(files, "src").empty());
}

TEST(lint_rules, clock_reads_allowed_only_in_common_clock_h) {
  // common/clock.h is the one sanctioned home for steady_clock reads and
  // sleeps (everything else injects a pn::clock_fn); common/rng.h plays
  // the same role for randomness. The same tokens anywhere else fire.
  const std::vector<source_file> files = {
      scan_source("src/core/evaluator.cc",
                  "auto t = std::chrono::steady_clock::now();\n"),
      scan_source("src/common/clock.h",
                  "#pragma once\n"
                  "auto t = std::chrono::steady_clock::now();\n"
                  "std::this_thread::sleep_for(std::chrono::seconds(1));\n"),
      scan_source("src/common/rng.h", "#pragma once\nint x = rand();\n")};
  const std::vector<finding> out = run_rules(files, "src");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rule, "nondet");
  EXPECT_EQ(out[0].path, "src/core/evaluator.cc");
}

TEST(lint_baseline, round_trips_and_filters) {
  const finding f{"nondet", "src/x.cc", 10, "call to 'rand()'"};
  const finding g{"float-eq", "src/y.cc", 20, "'==' against a literal"};
  const std::string path = ::testing::TempDir() + "/pn_lint_baseline.txt";
  ASSERT_TRUE(write_baseline(path, {f}));
  const std::set<std::string> keys = load_baseline(path);
  EXPECT_EQ(keys.size(), 1u);
  const std::vector<finding> fresh = filter_baselined({f, g}, keys);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].rule, "float-eq");
}

TEST(lint_baseline, key_ignores_line_numbers) {
  finding a{"nondet", "src/x.cc", 10, "m"};
  finding b{"nondet", "src/x.cc", 99, "m"};
  EXPECT_EQ(baseline_key(a), baseline_key(b));
}

// ---- 3. the repo gate ---------------------------------------------------

TEST(lint_repo_gate, tree_is_clean_against_checked_in_baseline) {
  lint_options opts;
  opts.root = PN_LINT_REPO_ROOT;
  const std::vector<finding> all = run_lint(opts);
  const std::set<std::string> baseline =
      load_baseline(std::string(PN_LINT_REPO_ROOT) +
                    "/tools/pn_lint/baseline.txt");
  const std::vector<finding> fresh = filter_baselined(all, baseline);
  for (const finding& f : fresh) {
    ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
  EXPECT_TRUE(fresh.empty())
      << "fix the finding, add '// pn_lint: allow(<rule>) <why>', or run "
         "pn_lint --fix-baseline";
}

TEST(lint_repo_gate, every_header_has_pragma_once) {
  // The R5a half of the satellite audit, as a direct assertion.
  lint_options opts;
  opts.root = PN_LINT_REPO_ROOT;
  const std::vector<finding> all = run_lint(opts);
  EXPECT_TRUE(findings_for("pragma-once", all).empty());
}

}  // namespace
}  // namespace pn::lint
