// Fixture: R5b — cycle_a.h and cycle_b.h include each other; the SCC
// must be reported exactly once (attributed to the first member).
#pragma once
#include "cycle_b.h"
int from_a();
