// Fixture: R1 must fire exactly once on the rand() call below.
int bad_seed() {
  return rand();
}
