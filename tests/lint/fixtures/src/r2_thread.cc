// Fixture: R2 must fire exactly once on the std::thread below.
// (Fixtures are lint inputs only — never compiled.)
void spawn() {
  std::thread t([] {});
  t.join();
}
