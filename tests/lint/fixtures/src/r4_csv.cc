// Fixture: R4 must fire exactly once — the include of core/sweep.h puts
// this file in CSV scope, and the chain below joins fields with a raw
// comma and never calls csv_field. The prose message with ", " must NOT
// fire (comma followed by a space is not CSV shape).
#include "core/sweep.h"

void write_row(std::ostringstream& out, const std::string& name) {
  out << name << ",42,0.5\n";
  out << "done, wrote one row\n";
}
