// Fixture: R5b — second half of the cycle_a.h <-> cycle_b.h cycle.
#pragma once
#include "cycle_a.h"
int from_b();
