// Fixture: zero findings — every violation carries an allow().
int seeded() {
  return rand();  // pn_lint: allow(nondet) fixture: same-line suppression
}

// pn_lint: allow(nondet) fixture: suppression on the line above
int seeded_again() { return rand(); }
