// Fixture: zero findings. Every banned spelling below hides where the
// scanner must not look — comments, string literals, raw strings, member
// calls — plus the `= delete` form R3 must ignore.
//
// A comment mentioning rand(), new int, delete p, or std::thread is fine.
#include "clean.h"

/* block comment with srand(7) and x == 1.0 — also fine */

struct no_copy {
  no_copy(const no_copy&) = delete;
  no_copy& operator=(const no_copy&) = delete;
};

const char* kProse = "call rand() and sleep_for, then x == 1.0";
const char* kRaw = R"(std::thread inside a raw string, new int too)";

int use_member(clock_holder& c, clock_holder* p) {
  // Member calls named `time` are not ::time — both forms must stay quiet.
  return c.time(3) + p->time(4);
}
