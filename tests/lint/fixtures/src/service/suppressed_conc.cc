// Suppressed concurrency fixture: the same shapes r8_unguarded.cc and
// r10_dropped.cc flag, each carrying an inline allow() — zero findings.
#include <mutex>

namespace fixture_suppressed {

struct status {
  bool ok = true;
};

class gauge {
 public:
  status flush();
  void tick();

 private:
  std::mutex mu_;
  // pn_lint: allow(guarded-by) scratch value owned by a single thread
  int raw_ = 0;
};

status gauge::flush() { return status{}; }

void gauge::tick() {
  // pn_lint: allow(unchecked-status) fixture: drop is deliberate
  flush();
}

}  // namespace fixture_suppressed
