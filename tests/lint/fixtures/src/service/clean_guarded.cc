// Clean concurrency fixture: fully annotated mutex-bearing class, every
// guarded access under a lock or inside a PN_REQUIRES function (declared
// in-class, defined out-of-line — exercises the cross-decl merge), and a
// checked status call. Zero findings.
#include <mutex>

namespace fixture_clean {

struct status {
  bool ok = true;
};

class counter {
 public:
  void add(int v);
  int locked_total() const PN_REQUIRES(mu_);
  status persist();
  void flush();

 private:
  mutable std::mutex mu_;
  int total_ PN_GUARDED_BY(mu_) = 0;
  // Sized at construction, read-only afterwards: outside mu_'s footprint.
  int hint_ PN_EXCLUDES(mu_) = 16;
};

void counter::add(int v) {
  std::lock_guard<std::mutex> lock(mu_);
  total_ += v;
}

int counter::locked_total() const { return total_; }

status counter::persist() { return status{}; }

void counter::flush() {
  const status st = persist();
  if (!st.ok) {
    std::lock_guard<std::mutex> lock(mu_);
    total_ = 0;
  }
}

}  // namespace fixture_clean
