// R8 fixture: one member beside a mutex with no annotation — fires
// guarded-by exactly once (depth_); limit_ is annotated and quiet.
#include <mutex>

namespace fixture_r8 {

class tracker {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++depth_;
  }

 private:
  std::mutex mu_;
  int depth_ = 0;
  int limit_ PN_GUARDED_BY(mu_) = 4;
};

}  // namespace fixture_r8
