// R10 fixture: a status-returning call in statement position with the
// value dropped — fires unchecked-status exactly once.
namespace fixture_r10 {

struct status {
  bool ok = true;
};

class feed {
 public:
  status refresh();
  void probe();
};

status feed::refresh() { return status{}; }

void feed::probe() {
  refresh();
}

}  // namespace fixture_r10
