// R9 fixture: a two-function lock inversion — forward() takes a_ then
// b_, backward() takes b_ then a_ — fires lock-order exactly once (one
// SCC). Both members are mutexes, so R8 stays quiet.
#include <mutex>

namespace fixture_r9 {

class pair_state {
 public:
  void forward();
  void backward();

 private:
  std::mutex a_;
  std::mutex b_;
};

void pair_state::forward() {
  std::lock_guard<std::mutex> hold_a(a_);
  std::lock_guard<std::mutex> hold_b(b_);
}

void pair_state::backward() {
  std::lock_guard<std::mutex> hold_b(b_);
  std::lock_guard<std::mutex> hold_a(a_);
}

}  // namespace fixture_r9
