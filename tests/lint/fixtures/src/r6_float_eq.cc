// Fixture: R6 must fire exactly once on the float == below. The integer
// comparison must NOT fire.
bool close_enough(double x, int n) {
  if (n == 3) return true;
  return x == 1.0;
}
