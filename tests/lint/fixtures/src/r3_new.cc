// Fixture: R3 must fire exactly once on the naked new below.
// The deleted copy constructor must NOT fire (`= delete` is fine).
struct no_copy {
  no_copy(const no_copy&) = delete;
};

int* leak() {
  return new int(42);
}
