// Fixture: R7 must fire exactly once on the std::map below — node ids
// are dense integers, so hot-path state belongs in an indexed vector.
// (Fixtures are lint inputs only — never compiled.)
void hot() {
  std::map<int, int> degree_by_node;
  degree_by_node[0] = 1;
}
