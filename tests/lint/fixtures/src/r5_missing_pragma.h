// Fixture: R5a must fire exactly once — this header has no #pragma once.
int pragma_less();
