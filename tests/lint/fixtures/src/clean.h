// Fixture: a well-formed header — zero findings.
#pragma once
int answer();
