#include "deploy/drain_scheduler.h"

#include <gtest/gtest.h>

namespace pn {
namespace {

std::vector<drain_item> ocs_rack_items(int racks, double share,
                                       double hours_each) {
  std::vector<drain_item> items;
  for (int i = 0; i < racks; ++i) {
    items.push_back({"ocs" + std::to_string(i), share, hours{hours_each},
                     2});
  }
  return items;
}

TEST(drain_scheduler, respects_capacity_floor) {
  // 16 OCS racks, 1/16 share each, floor 75% -> at most 4 concurrent.
  const auto items = ocs_rack_items(16, 1.0 / 16.0, 2.0);
  drain_schedule_params p;
  p.capacity_floor = 0.75;
  p.technicians_available = 100;
  const auto s = schedule_drains(items, p);
  ASSERT_TRUE(s.is_ok());
  EXPECT_LE(s.value().peak_drained_share, 0.25 + 1e-9);
  for (const drain_wave& w : s.value().waves) {
    EXPECT_LE(w.items.size(), 4u);
  }
  EXPECT_EQ(s.value().waves.size(), 4u);
  EXPECT_DOUBLE_EQ(s.value().makespan.value(), 4.0 * 2.0);
}

TEST(drain_scheduler, technicians_also_bind) {
  const auto items = ocs_rack_items(16, 1.0 / 16.0, 2.0);
  drain_schedule_params p;
  p.capacity_floor = 0.75;   // allows 4 concurrent
  p.technicians_available = 4;  // but staff allows only 2 (2 techs each)
  const auto s = schedule_drains(items, p);
  ASSERT_TRUE(s.is_ok());
  for (const drain_wave& w : s.value().waves) {
    EXPECT_LE(w.technicians_used, 4);
    EXPECT_LE(w.items.size(), 2u);
  }
  EXPECT_EQ(s.value().waves.size(), 8u);
}

TEST(drain_scheduler, tighter_floor_takes_longer) {
  const auto items = ocs_rack_items(16, 1.0 / 16.0, 2.0);
  drain_schedule_params loose;
  loose.capacity_floor = 0.5;
  loose.technicians_available = 100;
  drain_schedule_params tight = loose;
  tight.capacity_floor = 15.0 / 16.0;  // one at a time
  const auto a = schedule_drains(items, loose);
  const auto b = schedule_drains(items, tight);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_LT(a.value().makespan.value(), b.value().makespan.value());
  EXPECT_EQ(b.value().waves.size(), 16u);
}

TEST(drain_scheduler, mixed_durations_pack_long_first) {
  std::vector<drain_item> items{
      {"long", 0.10, hours{8.0}, 1},
      {"short1", 0.10, hours{1.0}, 1},
      {"short2", 0.10, hours{1.0}, 1},
  };
  drain_schedule_params p;
  p.capacity_floor = 0.80;  // two concurrent
  const auto s = schedule_drains(items, p);
  ASSERT_TRUE(s.is_ok());
  // long+short in wave 1 (8h), remaining short in wave 2 (1h) -> 9h,
  // rather than 8+1+... a worse packing.
  EXPECT_DOUBLE_EQ(s.value().makespan.value(), 9.0);
}

TEST(drain_scheduler, single_oversized_item_is_infeasible) {
  std::vector<drain_item> items{{"everything", 0.5, hours{1.0}, 1}};
  drain_schedule_params p;
  p.capacity_floor = 0.75;  // budget 0.25 < 0.5
  const auto s = schedule_drains(items, p);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code(), status_code::infeasible);
}

TEST(drain_scheduler, too_many_technicians_needed_is_infeasible) {
  std::vector<drain_item> items{{"crew_heavy", 0.1, hours{1.0}, 9}};
  drain_schedule_params p;
  p.technicians_available = 4;
  EXPECT_FALSE(schedule_drains(items, p).is_ok());
}

TEST(drain_scheduler, empty_input_is_trivial) {
  const auto s = schedule_drains({}, {});
  ASSERT_TRUE(s.is_ok());
  EXPECT_TRUE(s.value().waves.empty());
  EXPECT_DOUBLE_EQ(s.value().makespan.value(), 0.0);
}

}  // namespace
}  // namespace pn
