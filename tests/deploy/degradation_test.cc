#include "deploy/degradation.h"

#include <gtest/gtest.h>

#include "topology/generators/clos.h"
#include "topology/generators/jellyfish.h"
#include "topology/generators/leaf_spine.h"
#include "topology/routing.h"
#include "topology/traffic.h"

namespace pn {
namespace {

using namespace pn::literals;

TEST(degradation, no_failures_means_full_retention) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const traffic_matrix tm = uniform_traffic(g, 10_gbps);
  degradation_params p;
  p.concurrent_switch_failures = 0;
  p.concurrent_link_failures = 0;
  p.samples = 3;
  const auto rep = analyze_degradation(g, tm, p);
  EXPECT_DOUBLE_EQ(rep.mean_capacity_retention, 1.0);
  EXPECT_DOUBLE_EQ(rep.worst_capacity_retention, 1.0);
  EXPECT_DOUBLE_EQ(rep.partition_probability, 0.0);
}

TEST(degradation, retention_decreases_with_failure_count) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  const traffic_matrix tm = uniform_traffic(g, 10_gbps);
  double prev = 1.1;
  for (const int failures : {1, 4, 8}) {
    degradation_params p;
    p.concurrent_switch_failures = failures;
    p.samples = 30;
    const auto rep = analyze_degradation(g, tm, p);
    EXPECT_LE(rep.mean_capacity_retention, prev + 0.05)
        << failures << " failures";
    prev = rep.mean_capacity_retention;
  }
}

TEST(degradation, single_spine_loss_is_tolerable_in_fat_tree) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  const traffic_matrix tm = uniform_traffic(g, 10_gbps);
  degradation_params p;
  p.concurrent_switch_failures = 1;
  p.samples = 40;
  const auto rep = analyze_degradation(g, tm, p);
  // One switch of 80 out: ECMP reroutes; capacity floor stays high.
  EXPECT_GT(rep.mean_capacity_retention, 0.6);
  EXPECT_DOUBLE_EQ(rep.partition_probability, 0.0);
}

TEST(degradation, single_spine_leaf_spine_hurts_more_than_fat_tree) {
  // §3.3's radix tradeoff again, through the failure lens: losing one of
  // 4 fat spines costs more than losing one of 16 small spines.
  leaf_spine_params few;
  few.leaves = 16;
  few.spines = 4;
  few.hosts_per_leaf = 8;
  leaf_spine_params many = few;
  many.spines = 16;
  const network_graph g_few = build_leaf_spine(few);
  const network_graph g_many = build_leaf_spine(many);

  // Fail one spine specifically (not random): remove its links.
  auto fail_one_spine = [](network_graph g) {
    const node_id spine = g.nodes_of_kind(node_kind::spine).front();
    std::vector<edge_id> incident;
    for (const auto& adj : g.neighbors(spine)) {
      incident.push_back(adj.edge);
    }
    for (edge_id e : incident) g.remove_edge(e);
    return g;
  };
  const traffic_matrix tm_few = uniform_traffic(g_few, 10_gbps);
  const traffic_matrix tm_many = uniform_traffic(g_many, 10_gbps);
  const double base_few = ecmp_throughput(g_few, tm_few).alpha;
  const double base_many = ecmp_throughput(g_many, tm_many).alpha;
  const double degr_few =
      ecmp_throughput(fail_one_spine(g_few), tm_few).alpha;
  const double degr_many =
      ecmp_throughput(fail_one_spine(g_many), tm_many).alpha;
  EXPECT_LT(degr_few / base_few, degr_many / base_many);
}

TEST(degradation, partitions_are_detected) {
  // Three ToRs hang off one relay: killing the relay (1 in 4 samples)
  // partitions the survivors; killing a ToR leaves the rest connected.
  network_graph g;
  for (int i = 0; i < 3; ++i) {
    g.add_node({"t" + std::to_string(i), node_kind::tor, 8, 100_gbps, 4, 0,
                i});
  }
  g.add_node({"s", node_kind::spine, 8, 100_gbps, 0, 1, 3});
  for (std::size_t i = 0; i < 3; ++i) {
    g.add_edge(node_id{i}, node_id{3}, 100_gbps);
  }
  const traffic_matrix tm = uniform_traffic(g, 10_gbps);
  degradation_params p;
  p.concurrent_switch_failures = 1;
  p.samples = 80;
  const auto rep = analyze_degradation(g, tm, p);
  EXPECT_GT(rep.partition_probability, 0.10);
  EXPECT_LT(rep.partition_probability, 0.45);
}

TEST(degradation, expander_degrades_gracefully) {
  jellyfish_params jp;
  jp.switches = 32;
  jp.radix = 12;
  jp.hosts_per_switch = 4;
  jp.seed = 3;
  const network_graph g = build_jellyfish(jp);
  const traffic_matrix tm = uniform_traffic(g, 5_gbps);
  degradation_params p;
  p.concurrent_switch_failures = 2;
  p.concurrent_link_failures = 4;
  p.samples = 25;
  const auto rep = analyze_degradation(g, tm, p);
  EXPECT_GT(rep.mean_capacity_retention, 0.4);
  EXPECT_LT(rep.partition_probability, 0.2);
}

TEST(degradation, deterministic_per_seed) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const traffic_matrix tm = uniform_traffic(g, 10_gbps);
  degradation_params p;
  p.concurrent_switch_failures = 2;
  p.samples = 10;
  p.seed = 77;
  const auto a = analyze_degradation(g, tm, p);
  const auto b = analyze_degradation(g, tm, p);
  EXPECT_DOUBLE_EQ(a.mean_capacity_retention, b.mean_capacity_retention);
  EXPECT_DOUBLE_EQ(a.partition_probability, b.partition_probability);
}

}  // namespace
}  // namespace pn
