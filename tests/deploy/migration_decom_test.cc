#include <gtest/gtest.h>

#include "deploy/decom.h"
#include "deploy/migration.h"
#include "physical/cabling.h"
#include "topology/generators/clos.h"
#include "topology/generators/jupiter.h"
#include "twin/builder.h"
#include "twin/dryrun.h"
#include "twin/schema.h"

namespace pn {
namespace {

using namespace pn::literals;

jupiter_fabric test_fabric() {
  jupiter_params p;
  p.agg_blocks = 8;
  p.tors_per_block = 4;
  p.mbs_per_block = 4;
  p.uplinks_per_mb = 8;
  p.spine_blocks = 4;
  p.ocs_count = 8;
  return build_jupiter(p);
}

TEST(migration, plan_matches_fabric_shape) {
  const jupiter_fabric f = test_fabric();
  const migration_report rep = plan_jupiter_migration(f, {});
  EXPECT_EQ(rep.ocs_racks, 8);
  // Every fat-tree fabric link sheds its spine-side fiber.
  EXPECT_EQ(rep.fiber_disconnects, 8 * 4 * 8);
  EXPECT_EQ(rep.fiber_connects, 0);
  EXPECT_GT(rep.labor.value(), 0.0);
  // §4.3: "multiple hours of human labor per rack" — our per-rack labor
  // should be in the hours range, not minutes or weeks.
  EXPECT_GT(rep.labor_per_rack.value(), 0.5);
  EXPECT_LT(rep.labor_per_rack.value(), 24.0);
}

TEST(migration, residual_capacity_follows_concurrency) {
  const jupiter_fabric f = test_fabric();
  migration_params one;
  one.concurrent_drains = 1;
  migration_params four;
  four.concurrent_drains = 4;
  const auto a = plan_jupiter_migration(f, one);
  const auto b = plan_jupiter_migration(f, four);
  // One OCS of 8 drained -> 7/8 capacity floor.
  EXPECT_NEAR(a.min_residual_capacity, 7.0 / 8.0, 1e-9);
  EXPECT_NEAR(b.min_residual_capacity, 4.0 / 8.0, 1e-9);
  // But concurrency shortens the calendar.
  EXPECT_LT(b.elapsed.value(), a.elapsed.value());
  // Labor is the same work either way.
  EXPECT_NEAR(a.labor.value(), b.labor.value(),
              0.25 * a.labor.value());
}

TEST(migration, miswires_are_caught_and_cost_rework) {
  const jupiter_fabric f = test_fabric();
  migration_params sloppy;
  sloppy.miswire_probability = 0.2;
  migration_params careful;
  careful.miswire_probability = 0.0;
  const auto a = plan_jupiter_migration(f, sloppy);
  const auto b = plan_jupiter_migration(f, careful);
  EXPECT_GT(a.miswires_caught, 0);
  EXPECT_EQ(b.miswires_caught, 0);
  EXPECT_GT(a.labor.value(), b.labor.value());
}

TEST(migration, extra_uplinks_add_connects) {
  const jupiter_fabric f = test_fabric();
  const auto rep = plan_jupiter_migration(f, {}, /*extra_uplinks=*/8);
  EXPECT_EQ(rep.fiber_connects, 8 * 8 / 8 * 8);  // blocks*extra striped
  EXPECT_GT(rep.labor.value(),
            plan_jupiter_migration(f, {}).labor.value());
}

TEST(migration, direct_fabric_rejected_as_source) {
  jupiter_params p;
  p.agg_blocks = 5;
  p.mode = jupiter_mode::direct;
  const jupiter_fabric f = build_jupiter(p);
  EXPECT_THROW((void)plan_jupiter_migration(f, {}), std::logic_error);
}

struct decom_rig {
  decom_rig() : g(build_fat_tree(4, 100_gbps)) {
    floorplan_params p;
    p.rows = 2;
    p.racks_per_row = 10;
    fp.emplace(p);
    pl = block_placement(g, *fp).value();
    plan = plan_cabling(g, pl.value(), *fp, cat, {}).value();
    twin = build_network_twin(g, pl.value(), *fp, plan, cat);
  }
  network_graph g;
  catalog cat = catalog::standard();
  std::optional<floorplan> fp;
  std::optional<placement> pl;
  cabling_plan plan;
  twin_model twin;
};

TEST(decom, naive_plan_fails_dry_run_loudly) {
  decom_rig r;
  const twin_schema schema = twin_schema::network_schema();
  const auto plan = naive_decom_plan(r.twin, {"spine0/sw0"});
  dry_run_engine eng(r.twin, &schema);
  const auto report = eng.run(plan);
  EXPECT_FALSE(report.ok);
  // The switch removal itself must be among the failures.
  bool removal_failed = false;
  for (const auto& f : report.failures) {
    if (f.description.find("spine0/sw0") != std::string::npos &&
        f.op_status.code() == status_code::unavailable) {
      removal_failed = true;
    }
  }
  EXPECT_TRUE(removal_failed);
}

TEST(decom, safe_plan_passes_dry_run) {
  decom_rig r;
  const twin_schema schema = twin_schema::network_schema();
  const auto plan = safe_decom_plan(r.twin, {"spine0/sw0"});
  dry_run_engine eng(r.twin, &schema);
  const auto report = eng.run(plan);
  EXPECT_TRUE(report.ok) << (report.failures.empty()
                                 ? ""
                                 : report.failures[0].description + ": " +
                                       report.failures[0]
                                           .op_status.to_string());
  // The switch and its cables are gone in the simulated world.
  EXPECT_FALSE(eng.model().find("switch", "spine0/sw0").has_value());
}

TEST(decom, blocking_cables_identified) {
  decom_rig r;
  const auto blockers = blocking_cables(r.twin, {"spine0/sw0"});
  // Every cable on the spine connects to an in-service agg: all block.
  EXPECT_EQ(blockers.size(),
            r.twin.related_in(*r.twin.find("switch", "spine0/sw0"),
                              "terminates_on")
                .size());
}

TEST(decom, removing_whole_pod_blocks_only_uplinks) {
  decom_rig r;
  // Decom all of pod0: intra-pod cables don't block (both ends leave);
  // agg->spine uplinks block.
  std::vector<std::string> pod0;
  for (std::size_t i = 0; i < r.g.node_count(); ++i) {
    const node_info& n = r.g.node(node_id{i});
    if (n.layer < 2 && n.block == 0) pod0.push_back(n.name);
  }
  ASSERT_EQ(pod0.size(), 4u);  // 2 tors + 2 aggs in a k=4 pod
  const auto blockers = blocking_cables(r.twin, pod0);
  // k=4: each agg has 2 uplinks -> 4 blocked; 4 intra-pod links don't.
  EXPECT_EQ(blockers.size(), 4u);
}

TEST(decom, safe_plan_for_whole_pod_passes) {
  decom_rig r;
  std::vector<std::string> pod0;
  for (std::size_t i = 0; i < r.g.node_count(); ++i) {
    const node_info& n = r.g.node(node_id{i});
    if (n.layer < 2 && n.block == 0) pod0.push_back(n.name);
  }
  const twin_schema schema = twin_schema::network_schema();
  dry_run_engine eng(r.twin, &schema);
  const auto report = eng.run(safe_decom_plan(r.twin, pod0));
  EXPECT_TRUE(report.ok);
}

TEST(decom, unknown_switch_is_a_bug) {
  decom_rig r;
  EXPECT_THROW(naive_decom_plan(r.twin, {"ghost"}), std::logic_error);
  EXPECT_THROW(safe_decom_plan(r.twin, {"ghost"}), std::logic_error);
}

}  // namespace
}  // namespace pn
