#include <gtest/gtest.h>

#include "core/lifecycle.h"
#include "deploy/repair_sim.h"
#include "physical/cabling.h"
#include "topology/generators/clos.h"

namespace pn {
namespace {

using namespace pn::literals;

struct rig {
  rig() : g(build_fat_tree(8, 100_gbps)) {
    floorplan_params p;
    p.rows = 3;
    p.racks_per_row = 14;
    fp.emplace(p);
    pl = block_placement(g, *fp).value();
    plan = plan_cabling(g, pl.value(), *fp, cat, {}).value();
  }
  network_graph g;
  catalog cat = catalog::standard();
  std::optional<floorplan> fp;
  std::optional<placement> pl;
  cabling_plan plan;
};

TEST(repair_crew, unlimited_crew_never_queues) {
  rig r;
  repair_params p;
  p.horizon = hours{20.0 * 365 * 24};
  p.repair_technicians = 0;
  const auto res = simulate_repairs(r.g, *r.pl, *r.fp, r.plan, r.cat, p);
  EXPECT_DOUBLE_EQ(res.queueing_hours.value(), 0.0);
}

TEST(repair_crew, small_crew_queues_and_mttr_grows) {
  rig r;
  repair_params base;
  base.horizon = hours{20.0 * 365 * 24};
  base.feed_fit = 2000.0;  // enough concurrent failures to collide
  base.port_fit = 2000.0;

  repair_params unlimited = base;
  unlimited.repair_technicians = 0;
  repair_params solo = base;
  solo.repair_technicians = 1;

  const auto a =
      simulate_repairs(r.g, *r.pl, *r.fp, r.plan, r.cat, unlimited);
  const auto b = simulate_repairs(r.g, *r.pl, *r.fp, r.plan, r.cat, solo);
  // Same failure trace (same seed), but the solo tech queues work.
  EXPECT_EQ(a.switch_failures, b.switch_failures);
  EXPECT_EQ(a.port_failures, b.port_failures);
  EXPECT_GT(b.queueing_hours.value(), 0.0);
  EXPECT_GT(b.mean_mttr.value(), a.mean_mttr.value());
  EXPECT_LT(b.availability, a.availability);
}

TEST(repair_crew, more_techs_monotonically_reduce_queueing) {
  rig r;
  repair_params base;
  base.horizon = hours{20.0 * 365 * 24};
  base.feed_fit = 2000.0;
  base.port_fit = 2000.0;
  double prev = std::numeric_limits<double>::infinity();
  for (const int crew : {1, 2, 4, 8}) {
    repair_params p = base;
    p.repair_technicians = crew;
    const auto res =
        simulate_repairs(r.g, *r.pl, *r.fp, r.plan, r.cat, p);
    EXPECT_LE(res.queueing_hours.value(), prev);
    prev = res.queueing_hours.value();
  }
}

TEST(lifecycle, lifetime_dominates_day1) {
  rig r;
  lifecycle_options opt;
  opt.evaluation.run_throughput = false;
  const auto lc = compute_lifecycle_cost(r.g, "ft8", opt);
  ASSERT_TRUE(lc.is_ok());
  const lifecycle_cost& c = lc.value();
  EXPECT_GT(c.day1_hardware.value(), 0.0);
  EXPECT_GT(c.day1_labor.value(), 0.0);
  EXPECT_GE(c.lifetime().value(), c.day1().value());
  EXPECT_EQ(c.hosts, r.g.total_hosts());
  EXPECT_LT(c.availability, 1.0);
}

TEST(lifecycle, expansions_add_cost) {
  rig r;
  lifecycle_options base;
  base.evaluation.run_throughput = false;
  lifecycle_options growing = base;
  clos_expansion_params ex;
  ex.from_pods = 4;
  ex.to_pods = 8;
  growing.expansions = {ex, ex, ex};
  const auto a = compute_lifecycle_cost(r.g, "static", base);
  const auto b = compute_lifecycle_cost(r.g, "growing", growing);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_DOUBLE_EQ(a.value().expansion_labor.value(), 0.0);
  EXPECT_GT(b.value().expansion_labor.value(), 0.0);
  EXPECT_GT(b.value().lifetime().value(), a.value().lifetime().value());
}

TEST(lifecycle, panel_wiring_cuts_expansion_share) {
  rig r;
  clos_expansion_params direct;
  direct.from_pods = 4;
  direct.to_pods = 8;
  direct.wiring = spine_wiring::direct;
  clos_expansion_params panel = direct;
  panel.wiring = spine_wiring::patch_panel;

  lifecycle_options with_direct;
  with_direct.evaluation.run_throughput = false;
  with_direct.expansions = {direct};
  lifecycle_options with_panel = with_direct;
  with_panel.expansions = {panel};

  const auto a = compute_lifecycle_cost(r.g, "direct", with_direct);
  const auto b = compute_lifecycle_cost(r.g, "panel", with_panel);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_GT(a.value().expansion_labor.value(),
            b.value().expansion_labor.value());
}

TEST(lifecycle, table_renders) {
  rig r;
  lifecycle_options opt;
  opt.evaluation.run_throughput = false;
  const auto lc = compute_lifecycle_cost(r.g, "ft8", opt);
  ASSERT_TRUE(lc.is_ok());
  const text_table t = lifecycle_table({lc.value()});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.to_string().find("ft8"), std::string::npos);
}

}  // namespace
}  // namespace pn
