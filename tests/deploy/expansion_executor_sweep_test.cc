#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/sweep.h"
#include "deploy/expansion_executor.h"
#include "deploy/tech_sim.h"
#include "topology/generators/clos.h"
#include "topology/generators/leaf_spine.h"

namespace pn {
namespace {

using namespace pn::literals;

clos_expansion_params small_expansion(spine_wiring w) {
  clos_expansion_params p;
  p.spine_groups = 2;
  p.spines_per_group = 2;
  p.ports_per_spine = 16;
  p.from_pods = 4;
  p.to_pods = 8;
  p.wiring = w;
  return p;
}

floorplan test_floor() {
  floorplan_params p;
  p.rows = 2;
  p.racks_per_row = 10;
  return floorplan(p);
}

TEST(expansion_executor, builds_valid_window_structure) {
  const auto params = small_expansion(spine_wiring::patch_panel);
  const expansion_plan plan = plan_clos_expansion(params);
  const floorplan fp = test_floor();
  const work_order wo = build_expansion_order(plan, params, fp);
  ASSERT_TRUE(wo.topological_order().is_ok());

  std::size_t drains = 0, undrains = 0, jumpers = 0, tests = 0;
  for (const work_task& t : wo.tasks()) {
    if (t.kind == task_kind::drain && t.base_minutes > 0 &&
        t.subject.rfind("window", 0) == 0) {
      ++drains;
    }
    if (t.kind == task_kind::undrain) ++undrains;
    if (t.kind == task_kind::move_fiber) ++jumpers;
    if (t.kind == task_kind::test_link) ++tests;
  }
  EXPECT_EQ(undrains, static_cast<std::size_t>(plan.drain_windows));
  EXPECT_EQ(tests, static_cast<std::size_t>(plan.drain_windows));
  EXPECT_EQ(jumpers, static_cast<std::size_t>(plan.jumper_moves));
}

TEST(expansion_executor, simulated_labor_tracks_planner_ordering) {
  // The planner's labor estimate ordering (direct > panel > ocs) must
  // survive the full work-order simulation.
  const floorplan fp = test_floor();
  tech_sim_params tp;
  tp.technicians = 4;
  double prev = std::numeric_limits<double>::infinity();
  for (const spine_wiring w :
       {spine_wiring::direct, spine_wiring::patch_panel,
        spine_wiring::ocs}) {
    const auto params = small_expansion(w);
    const expansion_plan plan = plan_clos_expansion(params);
    const work_order wo = build_expansion_order(plan, params, fp);
    const auto res = simulate_deployment(wo, tp);
    ASSERT_TRUE(res.is_ok());
    EXPECT_LT(res.value().labor.value(), prev)
        << spine_wiring_name(w);
    prev = res.value().labor.value();
  }
}

TEST(expansion_executor, windows_serialize) {
  // Undrain of window w gates drain of window w+1: makespan is at least
  // the sum of per-window test+drain overheads even with a huge crew.
  const auto params = small_expansion(spine_wiring::patch_panel);
  const expansion_plan plan = plan_clos_expansion(params);
  const floorplan fp = test_floor();
  const work_order wo = build_expansion_order(plan, params, fp);
  tech_sim_params tp;
  tp.technicians = 64;
  const auto res = simulate_deployment(wo, tp);
  ASSERT_TRUE(res.is_ok());
  const double floor_minutes =
      plan.drain_windows * params.drain_window_minutes;
  EXPECT_GE(minutes(res.value().makespan), floor_minutes);
}

TEST(expansion_executor, defects_get_caught_by_window_tests) {
  const auto params = small_expansion(spine_wiring::direct);
  const expansion_plan plan = plan_clos_expansion(params);
  const floorplan fp = test_floor();
  expansion_execution_options opt;
  opt.pull_error_probability = 0.25;  // sloppy crew
  const work_order wo = build_expansion_order(plan, params, fp, opt);
  tech_sim_params tp;
  tp.seed = 3;
  const auto res = simulate_deployment(wo, tp);
  ASSERT_TRUE(res.is_ok());
  EXPECT_GT(res.value().defects_introduced, 0u);
  EXPECT_GT(res.value().defects_caught, 0u);
}

TEST(sweep, evaluates_grid_and_reports_failures) {
  std::vector<sweep_point> grid;
  for (const int k : {4, 6, 8}) {
    grid.push_back({str_format("k=%d", k),
                    [k] { return build_fat_tree(k, 100_gbps); }});
  }
  // A point that cannot be placed (floor too small is not forced here, so
  // use an invalid build via leaf-spine with impossible ToR size).
  evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  const sweep_results res = run_sweep(grid, opt);
  EXPECT_EQ(res.reports.size(), 3u);
  EXPECT_TRUE(res.failures.empty());
  EXPECT_EQ(res.reports[0].name, "k=4");
  // Bigger fabrics cost more.
  EXPECT_LT(res.reports[0].capex().value(),
            res.reports[2].capex().value());
}

TEST(sweep, csv_is_machine_readable) {
  std::vector<sweep_point> grid{
      {"k=4", [] { return build_fat_tree(4, 100_gbps); }}};
  evaluation_options opt;
  opt.run_repair_sim = false;
  const sweep_results res = run_sweep(grid, opt);
  const std::string csv = sweep_to_csv(res);
  const auto lines = split(csv, '\n');
  ASSERT_GE(lines.size(), 2u);
  const auto header = split(lines[0], ',');
  const auto row = split(lines[1], ',');
  EXPECT_EQ(header.size(), row.size());
  EXPECT_EQ(row[0], "k=4");
  EXPECT_EQ(row[1], "fat_tree");
}

}  // namespace
}  // namespace pn
