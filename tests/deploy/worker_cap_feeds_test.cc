// Coverage for the §3.2 per-rack worker cap and §3.3 power-feed failures.
#include <gtest/gtest.h>

#include "deploy/plan_builder.h"
#include "deploy/repair_sim.h"
#include "deploy/tech_sim.h"
#include "physical/cabling.h"
#include "topology/generators/clos.h"

namespace pn {
namespace {

using namespace pn::literals;

struct rig {
  rig() : g(build_fat_tree(8, 100_gbps)) {
    floorplan_params p;
    p.rows = 3;
    p.racks_per_row = 14;
    fp.emplace(p);
    pl = block_placement(g, *fp).value();
    plan = plan_cabling(g, pl.value(), *fp, cat, {}).value();
  }
  network_graph g;
  catalog cat = catalog::standard();
  std::optional<floorplan> fp;
  std::optional<placement> pl;
  cabling_plan plan;
};

TEST(worker_cap, one_worker_per_rack_slows_the_build) {
  rig r;
  const work_order wo =
      build_deployment_order(r.g, *r.pl, *r.fp, r.plan, {});
  tech_sim_params many;
  many.technicians = 16;
  many.max_workers_per_location = 0;  // unlimited
  tech_sim_params capped = many;
  capped.max_workers_per_location = 1;
  const auto a = simulate_deployment(wo, many);
  const auto b = simulate_deployment(wo, capped);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  // Same hands-on work, longer calendar when racks serialize.
  EXPECT_GT(b.value().makespan.value(), a.value().makespan.value());
  EXPECT_NEAR(a.value().labor.value(), b.value().labor.value(),
              0.05 * a.value().labor.value());
}

TEST(worker_cap, generous_cap_changes_nothing) {
  rig r;
  const work_order wo =
      build_deployment_order(r.g, *r.pl, *r.fp, r.plan, {});
  tech_sim_params unlimited;
  unlimited.technicians = 8;
  unlimited.max_workers_per_location = 0;
  tech_sim_params generous = unlimited;
  generous.max_workers_per_location = 1000;
  const auto a = simulate_deployment(wo, unlimited);
  const auto b = simulate_deployment(wo, generous);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_DOUBLE_EQ(a.value().makespan.value(), b.value().makespan.value());
}

TEST(feed_failures, occur_and_drain_whole_segments) {
  rig r;
  repair_params p;
  p.horizon = hours{20.0 * 365 * 24};
  p.feed_fit = 30000.0;  // make them frequent enough to observe
  const auto res =
      simulate_repairs(r.g, *r.pl, *r.fp, r.plan, r.cat, p);
  EXPECT_GT(res.feed_failures, 0u);
  // Feed losses are pure collateral (nothing in the network "failed").
  EXPECT_GT(res.collateral_gbps_hours, 0.0);
}

TEST(feed_failures, disabled_when_fit_zero) {
  rig r;
  repair_params p;
  p.horizon = hours{20.0 * 365 * 24};
  p.feed_fit = 0.0;
  const auto res =
      simulate_repairs(r.g, *r.pl, *r.fp, r.plan, r.cat, p);
  EXPECT_EQ(res.feed_failures, 0u);
}

TEST(feed_failures, fewer_racks_per_feed_shrink_blast_radius) {
  rig r;
  auto run_with_feed_size = [&](int racks_per_feed) {
    floorplan_params p = r.fp->params();
    p.racks_per_feed = racks_per_feed;
    floorplan fp2(p);
    const auto pl2 = block_placement(r.g, fp2);
    const auto plan2 = plan_cabling(r.g, pl2.value(), fp2, r.cat, {});
    repair_params rp;
    rp.horizon = hours{20.0 * 365 * 24};
    rp.feed_fit = 30000.0;
    rp.port_fit = 0.0;  // isolate the feed effect
    return simulate_repairs(r.g, pl2.value(), fp2, plan2.value(), r.cat,
                            rp);
  };
  const auto coarse = run_with_feed_size(14);  // whole row per feed
  const auto fine = run_with_feed_size(2);
  // Finer feeds: more feeds, but each failure drains far less capacity.
  // Feed losses are the only collateral once port failures are off
  // (whole-switch and cable failures drain exactly what failed), so
  // collateral per feed event isolates the blast radius.
  const double coarse_per_event =
      coarse.feed_failures > 0
          ? coarse.collateral_gbps_hours /
                static_cast<double>(coarse.feed_failures)
          : 0.0;
  const double fine_per_event =
      fine.feed_failures > 0
          ? fine.collateral_gbps_hours /
                static_cast<double>(fine.feed_failures)
          : 0.0;
  ASSERT_GT(coarse.feed_failures, 0u);
  ASSERT_GT(fine.feed_failures, 0u);
  EXPECT_GT(coarse_per_event, fine_per_event);
}

}  // namespace
}  // namespace pn
