#include <gtest/gtest.h>

#include "deploy/plan_builder.h"
#include "deploy/tech_sim.h"
#include "deploy/workorder.h"
#include "physical/cabling.h"
#include "topology/generators/clos.h"

namespace pn {
namespace {

using namespace pn::literals;

TEST(work_order, dependencies_and_topo_order) {
  work_order wo;
  const task_id a = wo.add_task({{}, task_kind::position_rack, "r0", {0, 0},
                                 10.0, 0.0, 0.0, {}});
  const task_id b = wo.add_task({{}, task_kind::mount_switch, "s0", {0, 0},
                                 5.0, 0.0, 0.0, {a}});
  const task_id c = wo.add_task({{}, task_kind::test_link, "l0", {0, 0},
                                 1.0, 0.0, 0.0, {b}});
  EXPECT_EQ(wo.task_count(), 3u);
  EXPECT_DOUBLE_EQ(wo.total_base_minutes(), 16.0);
  const auto order = wo.topological_order();
  ASSERT_TRUE(order.is_ok());
  EXPECT_EQ(order.value(), (std::vector<task_id>{a, b, c}));
}

TEST(work_order, cycle_detected) {
  work_order wo;
  const task_id a = wo.add_task({{}, task_kind::position_rack, "r0", {0, 0},
                                 10.0, 0.0, 0.0, {}});
  const task_id b = wo.add_task({{}, task_kind::mount_switch, "s0", {0, 0},
                                 5.0, 0.0, 0.0, {a}});
  wo.add_dependency(a, b);  // cycle a <-> b
  EXPECT_FALSE(wo.topological_order().is_ok());
}

TEST(work_order, dependency_on_future_task_is_a_bug) {
  work_order wo;
  EXPECT_THROW(wo.add_task({{}, task_kind::drain, "x", {0, 0}, 1.0, 0.0,
                            0.0, {task_id{5}}}),
               std::logic_error);
}

struct deploy_rig {
  explicit deploy_rig(int k = 4) : g(build_fat_tree(k, 100_gbps)) {
    floorplan_params p;
    p.rows = 3;
    p.racks_per_row = 12;
    fp.emplace(p);
    pl = block_placement(g, *fp).value();
    plan = plan_cabling(g, pl.value(), *fp, cat, {}).value();
  }
  network_graph g;
  catalog cat = catalog::standard();
  std::optional<floorplan> fp;
  std::optional<placement> pl;
  cabling_plan plan;
};

TEST(plan_builder, covers_all_equipment) {
  deploy_rig r;
  const work_order wo =
      build_deployment_order(r.g, *r.pl, *r.fp, r.plan, {});
  // Tasks: racks + switches + (pull or bundle) + 2 connects/cable + tests.
  std::size_t mounts = 0, tests = 0, connects = 0;
  for (const work_task& t : wo.tasks()) {
    if (t.kind == task_kind::mount_switch) ++mounts;
    if (t.kind == task_kind::test_link) ++tests;
    if (t.kind == task_kind::connect_port) ++connects;
  }
  EXPECT_EQ(mounts, r.g.node_count());
  EXPECT_EQ(tests, r.plan.runs.size());
  EXPECT_EQ(connects, 2 * r.plan.runs.size());
  EXPECT_TRUE(wo.topological_order().is_ok());
}

TEST(plan_builder, bundling_replaces_individual_pulls) {
  deploy_rig r(8);
  deployment_plan_options with;
  with.use_bundles = true;
  deployment_plan_options without;
  without.use_bundles = false;
  const work_order wb =
      build_deployment_order(r.g, *r.pl, *r.fp, r.plan, with);
  const work_order wl =
      build_deployment_order(r.g, *r.pl, *r.fp, r.plan, without);
  std::size_t bundles = 0, pulls_b = 0, pulls_l = 0;
  for (const work_task& t : wb.tasks()) {
    if (t.kind == task_kind::pull_bundle) ++bundles;
    if (t.kind == task_kind::pull_cable) ++pulls_b;
  }
  for (const work_task& t : wl.tasks()) {
    if (t.kind == task_kind::pull_cable) ++pulls_l;
  }
  EXPECT_GT(bundles, 0u);
  EXPECT_LT(pulls_b, pulls_l);
  EXPECT_LT(wb.total_base_minutes(), wl.total_base_minutes());
}

TEST(plan_builder, prewired_intra_rack_drops_floor_tasks) {
  deploy_rig r;
  deployment_plan_options pre;
  pre.prewired_intra_rack = true;
  const work_order wo =
      build_deployment_order(r.g, *r.pl, *r.fp, r.plan, pre);
  const work_order base =
      build_deployment_order(r.g, *r.pl, *r.fp, r.plan, {});
  EXPECT_LT(wo.total_base_minutes(), base.total_base_minutes());
}

TEST(tech_sim, executes_whole_order) {
  deploy_rig r;
  const work_order wo =
      build_deployment_order(r.g, *r.pl, *r.fp, r.plan, {});
  const auto res = simulate_deployment(wo, {});
  ASSERT_TRUE(res.is_ok());
  EXPECT_EQ(res.value().tasks_executed, wo.task_count());
  EXPECT_GT(res.value().makespan.value(), 0.0);
  EXPECT_GE(res.value().labor.value(), res.value().makespan.value());
  EXPECT_EQ(res.value().links_tested, r.plan.runs.size());
}

TEST(tech_sim, more_technicians_shrink_makespan_not_labor) {
  deploy_rig r(8);
  const work_order wo =
      build_deployment_order(r.g, *r.pl, *r.fp, r.plan, {});
  tech_sim_params two;
  two.technicians = 2;
  tech_sim_params sixteen;
  sixteen.technicians = 16;
  const auto a = simulate_deployment(wo, two);
  const auto b = simulate_deployment(wo, sixteen);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_GT(a.value().makespan.value(), b.value().makespan.value());
  // Hands-on labor is within ~25% across crew sizes (walking differs).
  EXPECT_NEAR(a.value().labor.value(), b.value().labor.value(),
              0.25 * a.value().labor.value());
}

TEST(tech_sim, per_task_overhead_compounds) {
  // §2.3: 5 extra minutes per task across thousands of tasks adds weeks.
  deploy_rig r(8);
  deployment_plan_options base;
  deployment_plan_options slow;
  slow.times.per_task_overhead = 5.0;
  const work_order wo_base =
      build_deployment_order(r.g, *r.pl, *r.fp, r.plan, base);
  const work_order wo_slow =
      build_deployment_order(r.g, *r.pl, *r.fp, r.plan, slow);
  const auto fast = simulate_deployment(wo_base, {});
  const auto overhead = simulate_deployment(wo_slow, {});
  ASSERT_TRUE(fast.is_ok() && overhead.is_ok());
  const double extra_hours =
      overhead.value().labor.value() - fast.value().labor.value();
  // Count physical tasks (everything but tests/drains gets the overhead).
  std::size_t physical = 0;
  for (const work_task& t : wo_base.tasks()) {
    if (t.kind != task_kind::test_link && t.kind != task_kind::drain &&
        t.kind != task_kind::undrain) {
      ++physical;
    }
  }
  EXPECT_NEAR(extra_hours, static_cast<double>(physical) * 5.0 / 60.0,
              0.30 * extra_hours + 1.0);
}

TEST(tech_sim, defects_reduce_first_pass_yield) {
  deploy_rig r(8);
  deployment_plan_options opts;
  opts.times.connect_error_probability = 0.10;  // terrible crew
  const work_order wo =
      build_deployment_order(r.g, *r.pl, *r.fp, r.plan, opts);
  const auto res = simulate_deployment(wo, {});
  ASSERT_TRUE(res.is_ok());
  EXPECT_GT(res.value().defects_introduced, 0u);
  EXPECT_LT(res.value().first_pass_yield, 1.0);
  EXPECT_GT(res.value().rework.value(), 0.0);
  // Detection probability 0.95: most defects caught, a few escape.
  EXPECT_GE(res.value().defects_caught, res.value().defects_escaped);
}

TEST(tech_sim, deterministic_per_seed) {
  deploy_rig r;
  const work_order wo =
      build_deployment_order(r.g, *r.pl, *r.fp, r.plan, {});
  tech_sim_params p;
  p.seed = 7;
  const auto a = simulate_deployment(wo, p);
  const auto b = simulate_deployment(wo, p);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_DOUBLE_EQ(a.value().makespan.value(), b.value().makespan.value());
  EXPECT_EQ(a.value().defects_introduced, b.value().defects_introduced);
}

TEST(tech_sim, cyclic_order_rejected) {
  work_order wo;
  const task_id a = wo.add_task({{}, task_kind::drain, "x", {0, 0}, 1.0,
                                 0.0, 0.0, {}});
  const task_id b = wo.add_task({{}, task_kind::undrain, "x", {0, 0}, 1.0,
                                 0.0, 0.0, {a}});
  wo.add_dependency(a, b);
  EXPECT_FALSE(simulate_deployment(wo, {}).is_ok());
}

}  // namespace
}  // namespace pn
