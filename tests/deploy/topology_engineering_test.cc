#include "deploy/topology_engineering.h"

#include <gtest/gtest.h>

#include "topology/metrics.h"
#include "topology/routing.h"

namespace pn {
namespace {

using namespace pn::literals;

jupiter_params test_params() {
  jupiter_params p;
  p.agg_blocks = 6;
  p.tors_per_block = 4;
  p.mbs_per_block = 2;
  p.uplinks_per_mb = 5;  // block_uplinks = 10 = 2 per peer
  p.ocs_count = 4;
  p.hosts_per_tor = 8;
  p.mode = jupiter_mode::direct;
  return p;
}

TEST(uniform_pair_links, is_symmetric_and_degree_exact) {
  const jupiter_params p = test_params();
  const auto w = uniform_pair_links(p);
  const int uplinks = p.mbs_per_block * p.uplinks_per_mb;
  for (int i = 0; i < p.agg_blocks; ++i) {
    int degree = 0;
    for (int j = 0; j < p.agg_blocks; ++j) {
      if (i == j) continue;
      degree += w[static_cast<std::size_t>(std::min(i, j))]
                 [static_cast<std::size_t>(std::max(i, j))];
    }
    EXPECT_EQ(degree, uplinks) << "block " << i;
  }
}

TEST(build_with_pairs, rejects_bad_matrices) {
  const jupiter_params p = test_params();
  // Wrong size.
  EXPECT_FALSE(build_jupiter_direct_with_pairs(p, {{0}}).is_ok());
  // Overweight row.
  auto w = uniform_pair_links(p);
  w[0][1] += 100;
  EXPECT_FALSE(build_jupiter_direct_with_pairs(p, w).is_ok());
  // Nonzero diagonal.
  auto w2 = uniform_pair_links(p);
  w2[2][2] = 1;
  EXPECT_FALSE(build_jupiter_direct_with_pairs(p, w2).is_ok());
}

TEST(build_with_pairs, uniform_matrix_matches_default_builder) {
  const jupiter_params p = test_params();
  const jupiter_fabric a = build_jupiter(p);
  const auto b = build_jupiter_direct_with_pairs(p, uniform_pair_links(p));
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.graph.node_count(), b.value().graph.node_count());
  EXPECT_EQ(a.graph.edge_count(), b.value().graph.edge_count());
}

TEST(block_demand, aggregates_and_symmetrizes) {
  const jupiter_params p = test_params();
  const jupiter_fabric f = build_jupiter(p);
  traffic_matrix tm(f.graph.host_facing_nodes());
  // ToR 0 lives in block 0; find a ToR in block 3.
  std::size_t src = 0, dst = 0;
  const auto& eps = tm.endpoints();
  for (std::size_t i = 0; i < eps.size(); ++i) {
    if (f.graph.node(eps[i]).block == 3) {
      dst = i;
      break;
    }
  }
  tm.set_demand(src, dst, 70.0);
  tm.set_demand(dst, src, 30.0);
  const auto d = block_demand_matrix(f, tm);
  EXPECT_DOUBLE_EQ(d[0][3], 100.0);
  EXPECT_DOUBLE_EQ(d[3][0], 0.0);  // upper-triangular storage
  EXPECT_DOUBLE_EQ(d[0][1], 0.0);
}

TEST(block_demand, ignores_intra_block_traffic) {
  const jupiter_params p = test_params();
  const jupiter_fabric f = build_jupiter(p);
  traffic_matrix tm(f.graph.host_facing_nodes());
  tm.set_demand(0, 1, 50.0);  // ToRs 0 and 1 are both in block 0
  const auto d = block_demand_matrix(f, tm);
  for (const auto& row : d) {
    for (double v : row) {
      EXPECT_DOUBLE_EQ(v, 0.0);
    }
  }
}

TEST(engineer_mesh, degree_constraints_hold) {
  const jupiter_params p = test_params();
  const auto n = static_cast<std::size_t>(p.agg_blocks);
  std::vector<std::vector<double>> demand(n, std::vector<double>(n, 1.0));
  demand[0][1] = 100.0;  // hot pair
  const auto mesh = engineer_jupiter_mesh(p, demand);
  ASSERT_TRUE(mesh.is_ok());
  const int uplinks = p.mbs_per_block * p.uplinks_per_mb;
  for (std::size_t i = 0; i < n; ++i) {
    int degree = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      degree += mesh.value().pair_links[std::min(i, j)][std::max(i, j)];
    }
    EXPECT_LE(degree, uplinks);
  }
  EXPECT_EQ(mesh.value().fabric.graph.validate(), "");
  EXPECT_TRUE(is_connected(mesh.value().fabric.graph));
}

TEST(engineer_mesh, hot_pairs_get_more_links) {
  const jupiter_params p = test_params();
  const auto n = static_cast<std::size_t>(p.agg_blocks);
  std::vector<std::vector<double>> demand(n, std::vector<double>(n, 1.0));
  demand[0][1] = 50.0;
  const auto mesh = engineer_jupiter_mesh(p, demand);
  ASSERT_TRUE(mesh.is_ok());
  const auto uniform = uniform_pair_links(p);
  EXPECT_GT(mesh.value().pair_links[0][1], uniform[0][1]);
  EXPECT_GT(mesh.value().ocs_retunes, 0);
}

TEST(engineer_mesh, uniform_demand_needs_no_retunes_of_substance) {
  const jupiter_params p = test_params();
  const auto n = static_cast<std::size_t>(p.agg_blocks);
  std::vector<std::vector<double>> demand(n, std::vector<double>(n, 1.0));
  const auto mesh = engineer_jupiter_mesh(p, demand);
  ASSERT_TRUE(mesh.is_ok());
  // Equal demand: greedy lands on a near-uniform mesh; retunes are small
  // relative to total links.
  const int total_links = p.agg_blocks * p.mbs_per_block * p.uplinks_per_mb / 2;
  EXPECT_LT(mesh.value().ocs_retunes, total_links / 4);
}

TEST(engineer_mesh, improves_throughput_on_skewed_demand) {
  // The Poutievski result in miniature: under skewed inter-block demand,
  // the engineered mesh beats the uniform one (with VLB routing on both).
  jupiter_params p = test_params();
  p.uplinks_per_mb = 10;  // more capacity to shift around
  const jupiter_fabric uniform = build_jupiter(p);

  traffic_matrix tm(uniform.graph.host_facing_nodes());
  const auto& eps = tm.endpoints();
  // Blocks 0 and 1 exchange heavy traffic; everything else trickles.
  for (std::size_t s = 0; s < eps.size(); ++s) {
    for (std::size_t t = 0; t < eps.size(); ++t) {
      if (s == t) continue;
      const int bs = uniform.graph.node(eps[s]).block;
      const int bt = uniform.graph.node(eps[t]).block;
      if (bs == bt) continue;
      const bool hot = (bs == 0 && bt == 1) || (bs == 1 && bt == 0);
      tm.set_demand(s, t, hot ? 30.0 : 0.5);
    }
  }

  const auto demand = block_demand_matrix(uniform, tm);
  const auto mesh = engineer_jupiter_mesh(p, demand);
  ASSERT_TRUE(mesh.is_ok());

  const double alpha_uniform =
      best_routing_throughput(uniform.graph, tm).alpha;
  traffic_matrix tm2(mesh.value().fabric.graph.host_facing_nodes());
  for (std::size_t s = 0; s < eps.size(); ++s) {
    for (std::size_t t = 0; t < eps.size(); ++t) {
      tm2.set_demand(s, t, tm.demand(s, t));
    }
  }
  const double alpha_engineered =
      best_routing_throughput(mesh.value().fabric.graph, tm2).alpha;
  EXPECT_GT(alpha_engineered, alpha_uniform);
}

}  // namespace
}  // namespace pn
