#include <gtest/gtest.h>

#include "deploy/expansion.h"
#include "deploy/repair_sim.h"
#include "physical/cabling.h"
#include "topology/generators/clos.h"

namespace pn {
namespace {

using namespace pn::literals;

struct repair_rig {
  repair_rig() : g(build_fat_tree(6, 100_gbps)) {
    floorplan_params p;
    p.rows = 3;
    p.racks_per_row = 14;
    fp.emplace(p);
    pl = block_placement(g, *fp).value();
    plan = plan_cabling(g, pl.value(), *fp, cat, {}).value();
  }
  network_graph g;
  catalog cat = catalog::standard();
  std::optional<floorplan> fp;
  std::optional<placement> pl;
  cabling_plan plan;
};

TEST(repair_sim, produces_failures_over_long_horizon) {
  repair_rig r;
  repair_params p;
  p.horizon = hours{10.0 * 365 * 24};
  const auto res =
      simulate_repairs(r.g, *r.pl, *r.fp, r.plan, r.cat, p);
  EXPECT_GT(res.switch_failures + res.port_failures + res.cable_failures,
            0u);
  EXPECT_GT(res.mean_mttr.value(), 0.0);
  EXPECT_LT(res.availability, 1.0);
  EXPECT_GT(res.availability, 0.99);  // still a functioning datacenter
}

TEST(repair_sim, bigger_repair_unit_costs_more_collateral) {
  // §3.3: higher radix / chassis-level repair drains more ports per fix.
  repair_rig r;
  repair_params port;
  port.unit = repair_unit::port;
  port.horizon = hours{20.0 * 365 * 24};
  repair_params chassis = port;
  chassis.unit = repair_unit::chassis;
  const auto a = simulate_repairs(r.g, *r.pl, *r.fp, r.plan, r.cat, port);
  const auto b =
      simulate_repairs(r.g, *r.pl, *r.fp, r.plan, r.cat, chassis);
  EXPECT_LT(a.collateral_gbps_hours, b.collateral_gbps_hours);
  EXPECT_GE(a.availability, b.availability);
}

TEST(repair_sim, fungibility_protects_against_stockouts) {
  // §2.2: a supply-chain problem at one vendor becomes a non-event when
  // parts are fungible.
  repair_rig r;
  repair_params fungible;
  fungible.horizon = hours{20.0 * 365 * 24};
  fungible.fungible_parts = true;
  fungible.stockout_probability = 0.3;
  repair_params sole_source = fungible;
  sole_source.fungible_parts = false;
  const auto a =
      simulate_repairs(r.g, *r.pl, *r.fp, r.plan, r.cat, fungible);
  const auto b =
      simulate_repairs(r.g, *r.pl, *r.fp, r.plan, r.cat, sole_source);
  EXPECT_LT(a.mean_mttr.value(), b.mean_mttr.value());
  EXPECT_GT(a.availability, b.availability);
}

TEST(repair_sim, deterministic_per_seed) {
  repair_rig r;
  repair_params p;
  p.seed = 5;
  const auto a = simulate_repairs(r.g, *r.pl, *r.fp, r.plan, r.cat, p);
  const auto b = simulate_repairs(r.g, *r.pl, *r.fp, r.plan, r.cat, p);
  EXPECT_EQ(a.switch_failures, b.switch_failures);
  EXPECT_DOUBLE_EQ(a.lost_gbps_hours, b.lost_gbps_hours);
}

TEST(stripe_ports, largest_remainder) {
  EXPECT_EQ(stripe_ports(8, 4), (std::vector<int>{2, 2, 2, 2}));
  EXPECT_EQ(stripe_ports(10, 4), (std::vector<int>{3, 3, 2, 2}));
  EXPECT_EQ(stripe_ports(3, 5), (std::vector<int>{1, 1, 1, 0, 0}));
}

TEST(clos_expansion, direct_wiring_rewires_on_the_floor) {
  clos_expansion_params p;
  p.from_pods = 4;
  p.to_pods = 8;
  p.wiring = spine_wiring::direct;
  const expansion_plan plan = plan_clos_expansion(p);
  // Each group: 128 ports; 32/pod before, 16/pod after; 4 pods shed 16
  // each -> 64 rewired per group, 256 total.
  EXPECT_EQ(plan.links_rewired, 256);
  EXPECT_EQ(plan.links_added, 256);
  EXPECT_EQ(plan.floor_cable_pulls, 256);
  EXPECT_EQ(plan.jumper_moves, 0);
  EXPECT_EQ(plan.dead_cables_left, 256);  // §2.1: old cables stay
  EXPECT_GT(plan.labor.value(), 0.0);
}

TEST(clos_expansion, patch_panels_convert_rewires_to_jumpers) {
  clos_expansion_params direct;
  direct.from_pods = 4;
  direct.to_pods = 8;
  direct.wiring = spine_wiring::direct;
  clos_expansion_params panel = direct;
  panel.wiring = spine_wiring::patch_panel;
  const expansion_plan d = plan_clos_expansion(direct);
  const expansion_plan pp = plan_clos_expansion(panel);
  // §4.1 / Zhao: expansion without walking the floor for existing links.
  EXPECT_GT(pp.jumper_moves, 0);
  EXPECT_LT(pp.floor_cable_pulls, d.floor_cable_pulls);
  EXPECT_LT(pp.labor.value(), d.labor.value());
  EXPECT_GT(pp.panels_touched, 0);
  EXPECT_GT(pp.rewired_links_per_panel, 0.0);
}

TEST(clos_expansion, ocs_is_nearly_free) {
  clos_expansion_params p;
  p.from_pods = 4;
  p.to_pods = 8;
  p.wiring = spine_wiring::ocs;
  const expansion_plan plan = plan_clos_expansion(p);
  EXPECT_EQ(plan.jumper_moves, 0);
  EXPECT_GT(plan.ocs_reconfigs, 0);
  EXPECT_EQ(plan.drain_windows, 1);
  clos_expansion_params panel = p;
  panel.wiring = spine_wiring::patch_panel;
  EXPECT_LT(plan.labor.value(), plan_clos_expansion(panel).labor.value());
}

TEST(clos_expansion, larger_expansions_move_more_links) {
  clos_expansion_params small;
  small.from_pods = 8;
  small.to_pods = 10;
  clos_expansion_params big = small;
  big.to_pods = 16;
  EXPECT_LT(plan_clos_expansion(small).links_rewired,
            plan_clos_expansion(big).links_rewired);
}

TEST(clos_expansion, removing_old_cables_costs_extra) {
  clos_expansion_params keep;
  keep.from_pods = 4;
  keep.to_pods = 8;
  keep.leave_dead_cables = true;
  clos_expansion_params remove = keep;
  remove.leave_dead_cables = false;
  const auto a = plan_clos_expansion(keep);
  const auto b = plan_clos_expansion(remove);
  EXPECT_EQ(a.floor_cable_removals, 0);
  EXPECT_GT(b.floor_cable_removals, 0);
  EXPECT_LT(a.labor.value(), b.labor.value());
  EXPECT_EQ(b.dead_cables_left, 0);
}

TEST(clos_expansion, invalid_params_rejected) {
  clos_expansion_params p;
  p.from_pods = 8;
  p.to_pods = 8;  // not an expansion
  EXPECT_THROW((void)plan_clos_expansion(p), std::logic_error);
  p.to_pods = 100000;  // more pods than ports
  EXPECT_THROW((void)plan_clos_expansion(p), std::logic_error);
}

}  // namespace
}  // namespace pn
