#include "service/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "core/checkpoint.h"
#include "topology/generators/families.h"
#include "twin/design_codec.h"
#include "twin/serialize.h"

namespace pn {
namespace {

eval_request sample_request() {
  eval_request req;
  req.name = "fat tree k=4";  // space: exercises token escaping
  req.options.seed = 7;
  req.options.strategy = "random";
  req.options.run_repair_sim = false;
  req.options.traffic_per_host_gbps = 10.0;
  req.options.deadline_ms = 1500.0;
  req.design_twin = serialize_twin(
      design_to_twin(build_family("fat_tree", 4, 7).value()));
  return req;
}

TEST(protocol, eval_request_round_trips) {
  const eval_request req = sample_request();
  const std::string payload = encode_eval_request(req);
  auto parsed = parse_request(payload);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().kind, request_kind::evaluate);
  const eval_request& back = parsed.value().eval;
  EXPECT_EQ(back.name, req.name);
  EXPECT_EQ(back.options.seed, 7u);
  EXPECT_EQ(back.options.strategy, "random");
  EXPECT_FALSE(back.options.run_repair_sim);
  EXPECT_TRUE(back.options.run_throughput);
  EXPECT_EQ(back.options.traffic_per_host_gbps, 10.0);
  EXPECT_EQ(back.options.deadline_ms, 1500.0);
  EXPECT_EQ(back.design_twin, req.design_twin);
}

TEST(protocol, encoding_is_canonical) {
  // Re-encoding a parsed request reproduces the exact bytes: the
  // encoding is a fixed point, which is what makes it cache-key
  // material.
  const std::string payload = encode_eval_request(sample_request());
  auto parsed = parse_request(payload);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(encode_eval_request(parsed.value().eval), payload);
}

TEST(protocol, delta_hint_rides_the_wire_but_not_the_canonical_bytes) {
  eval_request req = sample_request();
  const std::string unhinted_canonical = encode_eval_request(req);
  req.options.delta_hint = true;
  // The canonical (cache-key) bytes are hint-blind...
  EXPECT_EQ(encode_eval_request(req), unhinted_canonical);
  // ...while the wire form carries the hint line and round-trips it.
  const std::string wire = encode_eval_request_wire(req);
  EXPECT_NE(wire.find("hint delta 1\n"), std::string::npos);
  auto parsed = parse_request(wire);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value().eval.options.delta_hint);
  // Re-encoding the parsed request canonically drops the hint again —
  // hinted and unhinted requests share one cache key.
  EXPECT_EQ(encode_eval_request(parsed.value().eval), unhinted_canonical);
}

TEST(protocol, unknown_hint_lines_are_tolerated) {
  std::string wire = encode_eval_request_wire(sample_request());
  const std::size_t at = wire.find("design\n");
  ASSERT_NE(at, std::string::npos);
  wire.insert(at, "hint locality rack-7\n");
  auto parsed = parse_request(wire);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_FALSE(parsed.value().eval.options.delta_hint);
}

TEST(protocol, plain_requests_round_trip) {
  for (const request_kind k :
       {request_kind::stats, request_kind::ping, request_kind::invalidate}) {
    auto parsed = parse_request(encode_plain_request(k));
    ASSERT_TRUE(parsed.is_ok()) << request_kind_name(k);
    EXPECT_EQ(parsed.value().kind, k);
  }
}

TEST(protocol, malformed_requests_are_invalid_argument) {
  const std::string good = encode_eval_request(sample_request());
  const std::vector<std::string> bad = {
      "",
      "physnet/2 evaluate x\ndesign\n",       // wrong protocol
      "physnet/1 explode\n",                  // unknown verb
      "physnet/1 evaluate\ndesign\n",         // missing name
      "physnet/1 evaluate x\n",               // no design section
      "physnet/1 evaluate x\nopt bogus 1\ndesign\n",      // unknown option
      "physnet/1 evaluate x\nopt seed -3\ndesign\n",      // bad value
      "physnet/1 evaluate x\nopt strategy warp\ndesign\n",  // bad strategy
      "physnet/1 stats extra\n",              // trailing tokens
  };
  for (const std::string& payload : bad) {
    auto parsed = parse_request(payload);
    ASSERT_FALSE(parsed.is_ok()) << "accepted: " << payload;
    EXPECT_EQ(parsed.error().code(), status_code::invalid_argument);
  }
  EXPECT_TRUE(parse_request(good).is_ok());
}

TEST(protocol, wire_options_overlay_base_template) {
  wire_options wo;
  wo.seed = 99;
  wo.strategy = "annealed";
  wo.run_repair_sim = false;
  wo.floor_headroom = 0.5;
  evaluation_options base;
  base.distance_warm_threads = 4;  // server-side knob: must survive
  auto opt = wo.apply_to(base);
  ASSERT_TRUE(opt.is_ok());
  EXPECT_EQ(opt.value().seed, 99u);
  EXPECT_EQ(opt.value().strategy, placement_strategy::annealed);
  EXPECT_FALSE(opt.value().run_repair_sim);
  EXPECT_EQ(opt.value().floor_headroom, 0.5);
  EXPECT_EQ(opt.value().distance_warm_threads, 4);

  wo.strategy = "teleport";
  EXPECT_FALSE(wo.apply_to(base).is_ok());
}

TEST(protocol, eval_response_round_trips_report_exactly) {
  deployability_report rep;
  rep.name = "jelly fish/64";
  rep.family = "jellyfish";
  rep.switches = 64;
  rep.hosts = 512;
  rep.mean_path_length = 2.123456789012345678;  // exercises %.17g
  rep.capex_per_host = dollars{4321.0987654321};
  rep.availability = 0.99999912345;
  rep.eval_total_ms = 777.0;  // must be zeroed on the wire

  const std::string payload = encode_eval_response(rep, /*seed=*/5);
  auto parsed = parse_response(payload);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().kind, request_kind::evaluate);
  const deployability_report& back = parsed.value().eval.report;
  EXPECT_EQ(back.name, rep.name);
  EXPECT_EQ(back.mean_path_length, rep.mean_path_length);  // bit-exact
  EXPECT_EQ(back.capex_per_host.value(), rep.capex_per_host.value());
  EXPECT_EQ(back.availability, rep.availability);
  EXPECT_EQ(back.eval_total_ms, 0.0);
}

TEST(protocol, error_response_round_trips_code_and_message) {
  const std::string payload =
      encode_error_response(overloaded_error("queue full (64 waiting)"));
  auto parsed = parse_response(payload);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().error.code(), status_code::overloaded);
  EXPECT_EQ(parsed.value().error.message(), "queue full (64 waiting)");

  for (const status& s :
       {shutting_down_error("draining"), bad_frame_error("torn"),
        deadline_error("budget spent")}) {
    auto back = parse_response(encode_error_response(s));
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().error.code(), s.code());
    EXPECT_EQ(back.value().error.message(), s.message());
  }
}

TEST(protocol, stats_and_ping_and_invalidate_responses_round_trip) {
  stats_list stats{
      {"cache.hits", "12"},
      {"latency p99", "3.5"},  // space in key: exercises escaping
  };
  auto parsed = parse_response(encode_stats_response(stats));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().kind, request_kind::stats);
  EXPECT_EQ(parsed.value().stats, stats);

  auto ping = parse_response(encode_ping_response());
  ASSERT_TRUE(ping.is_ok());
  EXPECT_EQ(ping.value().kind, request_kind::ping);

  auto inval = parse_response(encode_invalidate_response(42));
  ASSERT_TRUE(inval.is_ok());
  EXPECT_EQ(inval.value().kind, request_kind::invalidate);
  EXPECT_EQ(inval.value().cache_epoch, 42u);
}

TEST(protocol, malformed_responses_are_invalid_argument) {
  const std::vector<std::string> bad = {
      "",
      "physnet/1 ok evaluate\n",          // missing report line
      "physnet/1 ok evaluate\nbogus\n",   // wrong second line
      "physnet/1 ok warp\n",              // unknown kind
      "physnet/1 error nonsense msg\n",   // unknown status code
      "physnet/1 error ok msg\n",         // ok is not an error
      "physnet/1 ok invalidate epoch x\n",
  };
  for (const std::string& payload : bad) {
    auto parsed = parse_response(payload);
    ASSERT_FALSE(parsed.is_ok()) << "accepted: " << payload;
    EXPECT_EQ(parsed.error().code(), status_code::invalid_argument);
  }
}

}  // namespace
}  // namespace pn
