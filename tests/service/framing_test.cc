#include "service/framing.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "common/cancel.h"

namespace pn {
namespace {

TEST(framing, encode_prefixes_big_endian_length) {
  const std::string frame = encode_frame("abc");
  ASSERT_EQ(frame.size(), frame_header_bytes + 3);
  EXPECT_EQ(frame[0], '\0');
  EXPECT_EQ(frame[1], '\0');
  EXPECT_EQ(frame[2], '\0');
  EXPECT_EQ(frame[3], '\x03');
  EXPECT_EQ(frame.substr(4), "abc");
}

TEST(framing, decoder_round_trips_one_frame) {
  frame_decoder dec;
  dec.feed(encode_frame("hello service"));
  const auto payload = dec.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "hello service");
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.idle());
  EXPECT_FALSE(dec.failed());
}

TEST(framing, decoder_handles_empty_payload_frames) {
  frame_decoder dec;
  dec.feed(encode_frame(""));
  const auto payload = dec.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(payload->empty());
  EXPECT_TRUE(dec.idle());
}

TEST(framing, decoder_reassembles_byte_by_byte) {
  const std::string frame = encode_frame("split across many feeds");
  frame_decoder dec;
  for (const char c : frame) {
    dec.feed(std::string_view(&c, 1));
  }
  const auto payload = dec.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "split across many feeds");
}

TEST(framing, decoder_splits_coalesced_frames) {
  std::string stream = encode_frame("first") + encode_frame("second") +
                       encode_frame("third");
  frame_decoder dec;
  dec.feed(stream);
  EXPECT_EQ(dec.next().value_or(""), "first");
  EXPECT_EQ(dec.next().value_or(""), "second");
  EXPECT_EQ(dec.next().value_or(""), "third");
  EXPECT_FALSE(dec.next().has_value());
}

TEST(framing, oversized_length_prefix_latches_bad_frame) {
  frame_decoder dec(/*max_payload=*/16);
  std::string lying = encode_frame("ok", 16);
  // Claim 2^24 bytes: far past the 16-byte cap.
  lying[0] = '\x01';
  dec.feed(lying);
  EXPECT_TRUE(dec.failed());
  EXPECT_EQ(dec.error().code(), status_code::bad_frame);
  // Latched: once the stream lied, later (well-formed) bytes are ignored
  // — there is no trustworthy boundary to resync at.
  dec.feed(encode_frame("fine", 16));
  EXPECT_TRUE(dec.failed());
  EXPECT_FALSE(dec.next().has_value());
}

TEST(framing, truncated_frame_is_not_ready_and_not_idle) {
  frame_decoder dec;
  const std::string frame = encode_frame("truncated payload");
  dec.feed(std::string_view(frame).substr(0, frame.size() - 5));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.failed());
  EXPECT_FALSE(dec.idle());  // EOF here would be a torn frame
}

TEST(framing, want_counts_down_header_then_payload) {
  frame_decoder dec;
  EXPECT_EQ(dec.want(), frame_header_bytes);
  const std::string frame = encode_frame("abcdef");
  dec.feed(std::string_view(frame).substr(0, 2));
  EXPECT_EQ(dec.want(), frame_header_bytes - 2);
  dec.feed(std::string_view(frame).substr(2, 2));
  EXPECT_EQ(dec.want(), 6u);  // full header seen: wants the payload
  dec.feed(std::string_view(frame).substr(4, 3));
  EXPECT_EQ(dec.want(), 3u);
}

// --- fd helpers over a socketpair --------------------------------------

struct fd_pair {
  int a = -1;
  int b = -1;
  fd_pair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~fd_pair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(framing, write_then_read_round_trips_over_socketpair) {
  fd_pair fds;
  ASSERT_TRUE(write_frame(fds.a, "over the wire").is_ok());
  auto got = read_frame(fds.b);
  ASSERT_TRUE(got.is_ok());
  ASSERT_TRUE(got.value().has_value());
  EXPECT_EQ(*got.value(), "over the wire");
}

TEST(framing, read_frame_does_not_eat_pipelined_frames) {
  fd_pair fds;
  // Both frames land in the kernel buffer before the first read.
  ASSERT_TRUE(write_frame(fds.a, "one").is_ok());
  ASSERT_TRUE(write_frame(fds.a, "two").is_ok());
  auto first = read_frame(fds.b);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().value_or(""), "one");
  auto second = read_frame(fds.b);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().value_or(""), "two");
}

TEST(framing, clean_eof_at_boundary_returns_nullopt) {
  fd_pair fds;
  ASSERT_TRUE(write_frame(fds.a, "last frame").is_ok());
  ::close(fds.a);
  fds.a = -1;
  auto got = read_frame(fds.b);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().value_or(""), "last frame");
  auto eof = read_frame(fds.b);
  ASSERT_TRUE(eof.is_ok());
  EXPECT_FALSE(eof.value().has_value());
}

TEST(framing, eof_mid_frame_is_bad_frame) {
  fd_pair fds;
  const std::string frame = encode_frame("never finishes");
  const std::string torn = frame.substr(0, frame.size() - 3);
  ASSERT_EQ(::write(fds.a, torn.data(), torn.size()),
            static_cast<ssize_t>(torn.size()));
  ::close(fds.a);
  fds.a = -1;
  auto got = read_frame(fds.b);
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.error().code(), status_code::bad_frame);
}

TEST(framing, oversized_frame_from_peer_is_bad_frame) {
  fd_pair fds;
  // A 4-byte header claiming ~16 MiB against an 8-byte cap.
  const char header[4] = {'\x01', '\0', '\0', '\0'};
  ASSERT_EQ(::write(fds.a, header, 4), 4);
  auto got = read_frame(fds.b, /*max_payload=*/8);
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.error().code(), status_code::bad_frame);
}

TEST(framing, cancel_interrupts_idle_read) {
  fd_pair fds;
  cancel_token cancel;
  cancel.request_cancel();
  auto got = read_frame(fds.b, default_max_frame_payload, &cancel);
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.error().code(), status_code::cancelled);
}

}  // namespace
}  // namespace pn
