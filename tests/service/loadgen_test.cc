// Load-generator tests: the schedule is a pure function of the config
// (the property the whole benchmarking methodology rests on), and a
// short real run against a real worker produces a sane report.
#include "service/loadgen.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "service/server.h"

namespace pn {
namespace {

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/pn_loadgen_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

TEST(loadgen, schedule_is_deterministic_and_monotone) {
  loadgen_config cfg;
  cfg.offered_qps = 500.0;
  cfg.duration_s = 1.0;
  cfg.seed = 42;
  cfg.hot_fraction = 0.5;
  cfg.hot_variants = 4;

  auto a = build_schedule(cfg);
  auto b = build_schedule(cfg);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_EQ(a.value().size(), 500u);  // qps * duration
  ASSERT_EQ(a.value().size(), b.value().size());

  mono_ns last = 0;
  for (std::size_t i = 0; i < a.value().size(); ++i) {
    const load_request& ra = a.value()[i];
    const load_request& rb = b.value()[i];
    EXPECT_EQ(ra.offset, rb.offset);
    EXPECT_EQ(ra.hot, rb.hot);
    EXPECT_EQ(*ra.payload, *rb.payload);  // byte-for-byte
    EXPECT_GE(ra.offset, last);           // arrivals never go backwards
    last = ra.offset;
  }
}

TEST(loadgen, hot_set_cycles_and_cold_requests_never_repeat) {
  loadgen_config cfg;
  cfg.offered_qps = 400.0;
  cfg.duration_s = 1.0;
  cfg.seed = 7;
  cfg.hot_fraction = 0.5;
  cfg.hot_variants = 4;

  auto schedule = build_schedule(cfg);
  ASSERT_TRUE(schedule.is_ok());

  std::set<const std::string*> hot_payloads;  // identity: shared strings
  std::set<std::string> cold_bytes;
  std::size_t hot = 0, cold = 0;
  for (const load_request& r : schedule.value()) {
    if (r.hot) {
      ++hot;
      hot_payloads.insert(r.payload.get());
    } else {
      ++cold;
      // Every cold request is globally unique (can only miss).
      EXPECT_TRUE(cold_bytes.insert(*r.payload).second);
    }
  }
  // ~50/50 split, and the hot side reuses exactly `hot_variants`
  // distinct payload strings.
  EXPECT_GT(hot, 100u);
  EXPECT_GT(cold, 100u);
  EXPECT_EQ(hot_payloads.size(), 4u);
}

TEST(loadgen, unknown_family_fails_schedule_build) {
  loadgen_config cfg;
  cfg.mix = {load_mix_entry{"not_a_family", 4, "block"}};
  auto schedule = build_schedule(cfg);
  ASSERT_FALSE(schedule.is_ok());
}

TEST(loadgen, short_run_against_real_worker_reports_sane_numbers) {
  const std::string spec = "unix:" + unique_socket_path();
  server_config scfg;
  scfg.listen = spec;
  eval_server server(std::move(scfg));
  ASSERT_TRUE(server.bind().is_ok());
  cancel_token cancel;
  status served = status::ok();
  thread_pool loop(1);
  loop.submit([&] { served = server.serve(cancel); });

  loadgen_config cfg;
  cfg.connect = spec;
  cfg.offered_qps = 200.0;
  cfg.duration_s = 0.25;  // 50 requests
  cfg.connections = 2;
  cfg.hot_variants = 4;  // tiny hot set: mostly cache hits

  auto schedule = build_schedule(cfg);
  ASSERT_TRUE(schedule.is_ok());
  auto report = run_load(cfg, schedule.value());
  ASSERT_TRUE(report.is_ok()) << report.error().to_string();

  const load_report& r = report.value();
  EXPECT_EQ(r.sent, schedule.value().size());
  EXPECT_EQ(r.ok, r.sent);  // healthy worker answers everything
  EXPECT_EQ(r.transport_error, 0u);
  EXPECT_EQ(r.hot_sent + r.cold_sent, r.sent);
  EXPECT_GT(r.elapsed_s, 0.0);
  EXPECT_GT(r.achieved_qps_ok, 0.0);
  EXPECT_EQ(r.latency_ms.count, r.ok);
  EXPECT_GT(r.latency_ms.p99, 0.0);
  EXPECT_GE(server.cache().stats().hits, 1u);  // the hot set did hit

  const std::string json = load_report_json(r, "unit", 1);
  for (const char* key :
       {"\"label\": \"unit\"", "\"workers\": 1", "\"offered_qps\"",
        "\"achieved_qps_ok\"", "\"latency_ms\"", "\"p99\"", "\"sent\"",
        "\"overflow\"", "\"sub_bin\"", "\"clamped\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }

  // A report whose every latency overflowed the 1ms-bin histogram must
  // say so instead of silently reporting the bin cap as a percentile.
  load_report hot = r;
  {
    metric_series over(/*hi=*/10.0, /*bins=*/10);
    over.record(123.0);
    hot.latency_ms = over.snapshot();
  }
  const std::string flagged = load_report_json(hot, "unit", 1);
  EXPECT_NE(flagged.find("\"clamped\": true"), std::string::npos);
  EXPECT_NE(flagged.find("\"overflow\": 1"), std::string::npos);

  cancel.request_cancel();
  loop.wait_idle();
  EXPECT_TRUE(served.is_ok());
}

}  // namespace
}  // namespace pn
