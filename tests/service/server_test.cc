// End-to-end tests: a real eval_server on a Unix socket in /tmp, real
// clients, real frames. The accept loop runs on a one-thread pool (R2:
// no raw std::thread), the test thread plays the operator.
#include "service/server.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/evaluator.h"
#include "service/client.h"
#include "service/framing.h"
#include "service/protocol.h"
#include "service/socket.h"
#include "topology/generators/families.h"
#include "twin/design_codec.h"
#include "twin/serialize.h"

namespace pn {
namespace {

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/pn_server_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// Binds and serves in the background; stop() cancels and returns the
// serve() status so every test asserts the drain was clean.
class server_fixture {
 public:
  explicit server_fixture(server_config cfg) {
    spec_ = "unix:" + unique_socket_path();
    cfg.listen = spec_;
    server = std::make_unique<eval_server>(std::move(cfg));
    bind_status = server->bind();
    if (bind_status.is_ok()) {
      loop_ = std::make_unique<thread_pool>(1);
      loop_->submit([this] { serve_status_ = server->serve(cancel); });
    }
  }
  ~server_fixture() { (void)stop(); }

  [[nodiscard]] status stop() {
    if (loop_) {
      cancel.request_cancel();
      loop_->wait_idle();
      loop_.reset();
    }
    return serve_status_;
  }

  [[nodiscard]] const std::string& spec() const { return spec_; }

  std::unique_ptr<eval_server> server;
  cancel_token cancel;
  status bind_status;

 private:
  std::string spec_;
  std::unique_ptr<thread_pool> loop_;
  status serve_status_;
};

eval_request make_request(const std::string& family, int size,
                          std::uint64_t seed = 1, bool repair = false) {
  eval_request req;
  req.name = family + "/" + std::to_string(size);
  req.options.seed = seed;
  req.options.run_repair_sim = repair;
  req.design_twin =
      serialize_twin(design_to_twin(build_family(family, size, seed).value()));
  return req;
}

// Bit-identity oracle: the checkpoint line renders every report field as
// %.17g / escaped tokens, so equal lines == bit-equal reports.
std::string report_line(const deployability_report& rep, std::uint64_t seed) {
  sweep_checkpoint_entry e;
  e.point_index = 0;
  e.seed = seed;
  e.ok = true;
  e.report = rep;
  e.report.eval_total_ms = 0.0;  // the wire zeroes wall time
  return sweep_checkpoint_line(e);
}

TEST(server, listen_refuses_live_socket_but_reclaims_stale_path) {
  const std::string path = unique_socket_path();
  const endpoint ep = parse_endpoint("unix:" + path).value();
  auto first = listen_on(ep, /*backlog=*/4);
  ASSERT_TRUE(first.is_ok()) << first.error().to_string();

  // Live listener on the path: a second daemon must refuse loudly
  // instead of silently stealing it, and the first stays bound.
  auto second = listen_on(ep, /*backlog=*/4);
  ASSERT_FALSE(second.is_ok());
  EXPECT_NE(second.error().to_string().find("already serving"),
            std::string::npos)
      << second.error().to_string();
  EXPECT_TRUE(connect_to(ep).is_ok());

  // Close without unlinking — the crashed-daemon case. The path still
  // exists but nothing accepts, so a fresh listener must reclaim it.
  first.value().reset();
  auto third = listen_on(ep, /*backlog=*/4);
  EXPECT_TRUE(third.is_ok()) << third.error().to_string();
  ::unlink(path.c_str());
}

TEST(server, ping_stats_invalidate_round_trip) {
  server_fixture fx{server_config{}};
  ASSERT_TRUE(fx.bind_status.is_ok()) << fx.bind_status.to_string();

  auto client = eval_client::connect(fx.spec());
  ASSERT_TRUE(client.is_ok()) << client.error().to_string();
  EXPECT_TRUE(client.value().ping().is_ok());

  auto stats = client.value().stats();
  ASSERT_TRUE(stats.is_ok());
  ASSERT_NE(stats_get(stats.value(), "cache.epoch"), nullptr);
  EXPECT_EQ(*stats_get(stats.value(), "cache.epoch"), "1");
  ASSERT_NE(stats_get(stats.value(), "connections.accepted"), nullptr);
  EXPECT_EQ(*stats_get(stats.value(), "connections.accepted"), "1");

  auto epoch = client.value().invalidate();
  ASSERT_TRUE(epoch.is_ok());
  EXPECT_EQ(epoch.value(), 2u);

  EXPECT_TRUE(fx.stop().is_ok());
}

TEST(server, served_report_is_bit_identical_to_local_evaluation) {
  server_fixture fx{server_config{}};
  ASSERT_TRUE(fx.bind_status.is_ok());

  // Full pipeline (repair sim on) with wire defaults.
  const eval_request req = make_request("fat_tree", 4, /*seed=*/7,
                                        /*repair=*/true);
  auto client = eval_client::connect(fx.spec());
  ASSERT_TRUE(client.is_ok());
  auto served = client.value().evaluate(req);
  ASSERT_TRUE(served.is_ok()) << served.error().to_string();

  // The same computation, locally: wire options over the server's
  // (default) base template.
  auto opt = req.options.apply_to(evaluation_options{});
  ASSERT_TRUE(opt.is_ok());
  auto g = build_family("fat_tree", 4, 7);
  ASSERT_TRUE(g.is_ok());
  auto local = evaluate_design(g.value(), req.name, opt.value());
  ASSERT_TRUE(local.is_ok()) << local.error().to_string();

  EXPECT_EQ(report_line(served.value(), req.options.seed),
            report_line(local.value().report, req.options.seed));
  EXPECT_TRUE(fx.stop().is_ok());
}

TEST(server, cached_response_bytes_equal_cold_response_bytes) {
  server_fixture fx{server_config{}};
  ASSERT_TRUE(fx.bind_status.is_ok());

  const std::string payload =
      encode_eval_request(make_request("leaf_spine", 4));
  auto ep = parse_endpoint(fx.spec());
  ASSERT_TRUE(ep.is_ok());
  auto fd = connect_to(ep.value());
  ASSERT_TRUE(fd.is_ok()) << fd.error().to_string();

  // Raw frames so nothing between the socket and the comparison can
  // re-serialize the response.
  ASSERT_TRUE(write_frame(fd.value().get(), payload).is_ok());
  auto cold = read_frame(fd.value().get());
  ASSERT_TRUE(cold.is_ok());
  ASSERT_TRUE(cold.value().has_value());

  ASSERT_TRUE(write_frame(fd.value().get(), payload).is_ok());
  auto cached = read_frame(fd.value().get());
  ASSERT_TRUE(cached.is_ok());
  ASSERT_TRUE(cached.value().has_value());

  EXPECT_EQ(*cold.value(), *cached.value());  // byte-identical
  EXPECT_EQ(fx.server->cache().stats().hits, 1u);
  EXPECT_EQ(fx.server->metrics().eval_ok.load(), 1u);
  EXPECT_TRUE(fx.stop().is_ok());
}

TEST(server, invalidate_forces_reevaluation) {
  server_fixture fx{server_config{}};
  ASSERT_TRUE(fx.bind_status.is_ok());
  auto client = eval_client::connect(fx.spec());
  ASSERT_TRUE(client.is_ok());

  const eval_request req = make_request("fat_tree", 4);
  ASSERT_TRUE(client.value().evaluate(req).is_ok());
  ASSERT_TRUE(client.value().evaluate(req).is_ok());
  EXPECT_EQ(fx.server->metrics().eval_ok.load(), 1u);  // second was cached

  ASSERT_TRUE(client.value().invalidate().is_ok());
  ASSERT_TRUE(client.value().evaluate(req).is_ok());
  EXPECT_EQ(fx.server->metrics().eval_ok.load(), 2u);  // cache emptied
  EXPECT_TRUE(fx.stop().is_ok());
}

TEST(server, serves_four_concurrent_connections) {
  server_fixture fx{server_config{}};
  ASSERT_TRUE(fx.bind_status.is_ok());

  const std::vector<std::pair<std::string, int>> designs = {
      {"fat_tree", 4}, {"leaf_spine", 4}, {"leaf_spine", 6}, {"jellyfish", 12}};
  std::vector<status> outcomes(designs.size(), unavailable_error("not run"));
  {
    thread_pool callers(4);
    for (std::size_t i = 0; i < designs.size(); ++i) {
      callers.submit([&, i] {
        auto client = eval_client::connect(fx.spec());
        if (!client.is_ok()) {
          outcomes[i] = client.error();
          return;
        }
        auto rep = client.value().evaluate(
            make_request(designs[i].first, designs[i].second));
        outcomes[i] = rep.is_ok() ? status::ok() : rep.error();
      });
    }
    callers.wait_idle();
  }
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].is_ok())
        << designs[i].first << ": " << outcomes[i].to_string();
  }
  EXPECT_EQ(fx.server->metrics().connections_accepted.load(), 4u);
  EXPECT_TRUE(fx.stop().is_ok());
}

TEST(server, malformed_payload_answers_error_and_keeps_connection) {
  server_fixture fx{server_config{}};
  ASSERT_TRUE(fx.bind_status.is_ok());
  auto ep = parse_endpoint(fx.spec());
  ASSERT_TRUE(ep.is_ok());
  auto fd = connect_to(ep.value());
  ASSERT_TRUE(fd.is_ok());

  // A well-framed payload that is not a request: answered, not fatal.
  ASSERT_TRUE(write_frame(fd.value().get(), "physnet/1 explode\n").is_ok());
  auto reply = read_frame(fd.value().get());
  ASSERT_TRUE(reply.is_ok());
  ASSERT_TRUE(reply.value().has_value());
  auto parsed = parse_response(*reply.value());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().error.code(), status_code::invalid_argument);

  // The connection is still in sync: a ping works.
  ASSERT_TRUE(
      write_frame(fd.value().get(), encode_plain_request(request_kind::ping))
          .is_ok());
  auto pong = read_frame(fd.value().get());
  ASSERT_TRUE(pong.is_ok());
  ASSERT_TRUE(pong.value().has_value());
  EXPECT_TRUE(parse_response(*pong.value()).is_ok());
  EXPECT_TRUE(fx.stop().is_ok());
}

TEST(server, garbage_framing_gets_error_then_close) {
  server_fixture fx{server_config{}};
  ASSERT_TRUE(fx.bind_status.is_ok());
  auto ep = parse_endpoint(fx.spec());
  ASSERT_TRUE(ep.is_ok());
  auto fd = connect_to(ep.value());
  ASSERT_TRUE(fd.is_ok());

  // A length prefix claiming ~2 GiB: past any sane cap.
  const char header[4] = {'\x7f', '\0', '\0', '\0'};
  ASSERT_EQ(::write(fd.value().get(), header, 4), 4);

  auto reply = read_frame(fd.value().get());
  ASSERT_TRUE(reply.is_ok());
  ASSERT_TRUE(reply.value().has_value());  // best-effort error frame
  auto parsed = parse_response(*reply.value());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().error.code(), status_code::bad_frame);

  auto eof = read_frame(fd.value().get());  // then the server hangs up
  ASSERT_TRUE(eof.is_ok());
  EXPECT_FALSE(eof.value().has_value());
  EXPECT_EQ(fx.server->metrics().bad_frames.load(), 1u);
  EXPECT_TRUE(fx.stop().is_ok());
}

// Holds evaluations at their first stage until released, so requests can
// be parked "in flight" across a shutdown.
class eval_gate {
 public:
  [[nodiscard]] std::function<status(eval_stage)> hook() {
    return [this](eval_stage stage) -> status {
      if (stage != eval_stage::topology_metrics) return status::ok();
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return open_; });
      return status::ok();
    };
  }
  void open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(server, shutdown_answers_every_admitted_request) {
  auto gate = std::make_shared<eval_gate>();
  server_config cfg;
  cfg.eval_threads = 2;
  cfg.base_options.fault_hook = gate->hook();
  server_fixture fx{cfg};
  ASSERT_TRUE(fx.bind_status.is_ok());

  const std::vector<std::pair<std::string, int>> designs = {
      {"fat_tree", 4}, {"leaf_spine", 4}, {"leaf_spine", 6}, {"jellyfish", 12}};
  std::vector<status> outcomes(designs.size(), unavailable_error("not run"));
  {
    thread_pool callers(4);
    for (std::size_t i = 0; i < designs.size(); ++i) {
      callers.submit([&, i] {
        auto client = eval_client::connect(fx.spec());
        if (!client.is_ok()) {
          outcomes[i] = client.error();
          return;
        }
        auto rep = client.value().evaluate(
            make_request(designs[i].first, designs[i].second));
        outcomes[i] = rep.is_ok() ? status::ok() : rep.error();
      });
    }
    // All four admitted (parked at the gate / in the queue) ...
    while (fx.server->metrics().requests_admitted.load() < 4) {
      sleep_ms(1.0);
    }
    // ... then the operator pulls the plug mid-flight.
    fx.cancel.request_cancel();
    gate->open();
    callers.wait_idle();
  }

  // The drain guarantee: every admitted request got its answer.
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].is_ok())
        << designs[i].first << ": " << outcomes[i].to_string();
  }
  EXPECT_TRUE(fx.stop().is_ok());
  EXPECT_EQ(fx.server->metrics().eval_ok.load(), 4u);
}

}  // namespace
}  // namespace pn
