#include "service/batcher.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/result_cache.h"
#include "topology/generators/families.h"
#include "twin/design_codec.h"
#include "twin/serialize.h"

namespace pn {
namespace {

eval_request make_request(const std::string& family, int size,
                          std::uint64_t seed = 1) {
  eval_request req;
  req.name = family + "/" + std::to_string(size);
  req.options.seed = seed;
  req.options.run_repair_sim = false;  // keep evals fast
  req.design_twin =
      serialize_twin(design_to_twin(build_family(family, size, seed).value()));
  return req;
}

status_code response_code(const std::string& payload) {
  auto parsed = parse_response(payload);
  if (!parsed.is_ok()) return parsed.error().code();
  return parsed.value().error.code();  // ok for success responses
}

TEST(batcher, evaluates_and_caches) {
  result_cache cache(16);
  service_metrics metrics;
  batcher_config cfg;
  cfg.eval_threads = 2;
  eval_batcher batcher(cfg, &cache, &metrics);

  const eval_request req = make_request("fat_tree", 4);
  const auto cold = batcher.evaluate(req);
  EXPECT_FALSE(cold.cached);
  EXPECT_EQ(response_code(cold.response), status_code::ok);

  const auto warm = batcher.evaluate(req);
  EXPECT_TRUE(warm.cached);
  // Byte-identical replay is the cache's contract.
  EXPECT_EQ(warm.response, cold.response);
  EXPECT_EQ(metrics.eval_ok.load(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(batcher, delta_hint_shares_cache_key_and_response_bytes) {
  // The differential contract for hints: a delta-hinted copy of a
  // request is the SAME request — it must hit the cache line the
  // unhinted evaluation populated and replay byte-identical bytes.
  result_cache cache(16);
  service_metrics metrics;
  batcher_config cfg;
  cfg.eval_threads = 2;
  eval_batcher batcher(cfg, &cache, &metrics);

  const eval_request plain = make_request("fat_tree", 4);
  eval_request hinted = plain;
  hinted.options.delta_hint = true;

  const auto cold = batcher.evaluate(plain);
  EXPECT_FALSE(cold.cached);
  const auto warm = batcher.evaluate(hinted);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(warm.response, cold.response);
  EXPECT_EQ(metrics.eval_ok.load(), 1u);  // one evaluation, not two
}

TEST(batcher, malformed_design_answers_without_admission) {
  result_cache cache(16);
  service_metrics metrics;
  eval_batcher batcher(batcher_config{}, &cache, &metrics);

  eval_request req = make_request("fat_tree", 4);
  req.design_twin = "entity fabric fabric\nattr fabric fabric family";
  const auto out = batcher.evaluate(req);
  EXPECT_NE(response_code(out.response), status_code::ok);
  EXPECT_EQ(metrics.requests_admitted.load(), 0u);
  EXPECT_EQ(metrics.bad_requests.load(), 1u);

  req = make_request("fat_tree", 4);
  req.options.strategy = "warp";
  EXPECT_EQ(response_code(batcher.evaluate(req).response),
            status_code::invalid_argument);
}

TEST(batcher, evaluation_failure_is_an_error_response_and_not_cached) {
  result_cache cache(16);
  service_metrics metrics;
  batcher_config cfg;
  cfg.base_options.fault_hook = [](eval_stage stage) -> status {
    return stage == eval_stage::cabling ? unavailable_error("chaos")
                                        : status::ok();
  };
  eval_batcher batcher(cfg, &cache, &metrics);

  const auto out = batcher.evaluate(make_request("fat_tree", 4));
  EXPECT_EQ(response_code(out.response), status_code::unavailable);
  EXPECT_EQ(metrics.eval_error.load(), 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// A fault hook that blocks every evaluation until released. The hook
// runs before the first stage on the eval worker, so a test can hold
// requests "in flight" deterministically.
class eval_gate {
 public:
  [[nodiscard]] std::function<status(eval_stage)> hook() {
    return [this](eval_stage stage) -> status {
      if (stage != eval_stage::topology_metrics) return status::ok();
      std::unique_lock<std::mutex> lock(mu_);
      ++waiting_;
      cv_.notify_all();
      cv_.wait(lock, [&] { return open_; });
      return status::ok();
    };
  }
  void wait_for_waiters(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return waiting_ >= n; });
  }
  void open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int waiting_ = 0;
  bool open_ = false;
};

TEST(batcher, coalesces_identical_inflight_requests) {
  result_cache cache(16);
  service_metrics metrics;
  auto gate = std::make_shared<eval_gate>();
  batcher_config cfg;
  cfg.eval_threads = 2;
  cfg.base_options.fault_hook = gate->hook();
  eval_batcher batcher(cfg, &cache, &metrics);

  const eval_request req = make_request("fat_tree", 4);
  std::vector<eval_batcher::outcome> outcomes(3);
  {
    thread_pool callers(3);
    for (int i = 0; i < 3; ++i) {
      callers.submit(
          [&batcher, &outcomes, &req, i] { outcomes[static_cast<std::size_t>(i)] = batcher.evaluate(req); });
    }
    gate->wait_for_waiters(1);  // the first request reached its eval
    gate->open();
    callers.wait_idle();
  }
  for (const auto& out : outcomes) {
    EXPECT_EQ(response_code(out.response), status_code::ok);
    EXPECT_EQ(out.response, outcomes[0].response);
  }
  // Exactly one admission+evaluation; the rest coalesced or hit the
  // cache (timing decides which, never a second evaluation).
  EXPECT_EQ(metrics.eval_ok.load(), 1u);
  EXPECT_EQ(metrics.requests_admitted.load(), 1u);
  EXPECT_EQ(metrics.coalesced.load() + cache.stats().hits, 2u);
}

TEST(batcher, full_queue_answers_overloaded_immediately) {
  result_cache cache(16);
  service_metrics metrics;
  auto gate = std::make_shared<eval_gate>();
  batcher_config cfg;
  cfg.eval_threads = 1;
  cfg.queue_limit = 1;
  cfg.max_batch = 1;
  cfg.base_options.fault_hook = gate->hook();
  eval_batcher batcher(cfg, &cache, &metrics);

  eval_batcher::outcome out_a;
  eval_batcher::outcome out_b;
  {
    thread_pool callers(2);
    callers.submit([&] { out_a = batcher.evaluate(make_request("fat_tree", 4)); });
    gate->wait_for_waiters(1);  // A occupies the eval worker...
    callers.submit([&] { out_b = batcher.evaluate(make_request("fat_tree", 6)); });
    // ...so B sits in the queue. Wait until it is actually admitted.
    while (metrics.requests_admitted.load() < 2) {
      sleep_ms(1.0);
    }
    // C finds the queue full: explicit overloaded, synchronously.
    const auto out_c = batcher.evaluate(make_request("fat_tree", 8));
    EXPECT_EQ(response_code(out_c.response), status_code::overloaded);
    EXPECT_EQ(metrics.rejected_overloaded.load(), 1u);

    gate->open();
    callers.wait_idle();
  }
  // Backpressure never dropped admitted work.
  EXPECT_EQ(response_code(out_a.response), status_code::ok);
  EXPECT_EQ(response_code(out_b.response), status_code::ok);
}

TEST(batcher, shutdown_drains_admitted_and_rejects_new) {
  result_cache cache(16);
  service_metrics metrics;
  auto gate = std::make_shared<eval_gate>();
  batcher_config cfg;
  cfg.eval_threads = 1;
  cfg.max_batch = 1;
  cfg.base_options.fault_hook = gate->hook();
  auto batcher = std::make_unique<eval_batcher>(cfg, &cache, &metrics);

  std::vector<eval_batcher::outcome> outcomes(2);
  {
    thread_pool callers(3);
    callers.submit(
        [&] { outcomes[0] = batcher->evaluate(make_request("fat_tree", 4)); });
    gate->wait_for_waiters(1);
    callers.submit(
        [&] { outcomes[1] = batcher->evaluate(make_request("fat_tree", 6)); });
    while (metrics.requests_admitted.load() < 2) {
      sleep_ms(1.0);
    }

    // Shutdown must block until both admitted requests are answered.
    callers.submit([&] {
      sleep_ms(5.0);  // let shutdown() start first (ordering is benign)
      gate->open();
    });
    batcher->shutdown();

    // Post-shutdown admissions answer shutting_down.
    const auto late = batcher->evaluate(make_request("fat_tree", 8));
    EXPECT_EQ(response_code(late.response), status_code::shutting_down);
    EXPECT_EQ(metrics.rejected_shutting_down.load(), 1u);
    // shutdown() returning proves the responses were *published*; the
    // caller tasks still have to copy them into outcomes[], so check
    // only after the pool is idle (reading earlier is a data race that
    // intermittently observed an empty response).
    callers.wait_idle();
    EXPECT_EQ(response_code(outcomes[0].response), status_code::ok);
    EXPECT_EQ(response_code(outcomes[1].response), status_code::ok);
  }
  batcher.reset();
}

TEST(batcher, cache_hits_still_served_while_draining) {
  result_cache cache(16);
  service_metrics metrics;
  auto batcher =
      std::make_unique<eval_batcher>(batcher_config{}, &cache, &metrics);
  const eval_request req = make_request("fat_tree", 4);
  const auto cold = batcher->evaluate(req);
  ASSERT_EQ(response_code(cold.response), status_code::ok);
  batcher->shutdown();
  const auto warm = batcher->evaluate(req);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(warm.response, cold.response);
}

}  // namespace
}  // namespace pn
