#include "service/result_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>

#include "service/metrics.h"

namespace pn {
namespace {

TEST(cache_key, differs_for_different_payloads) {
  const cache_key a = cache_key_of("payload a");
  const cache_key b = cache_key_of("payload b");
  EXPECT_TRUE(a == cache_key_of("payload a"));
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(cache_key_of("") == cache_key_of("x"));
}

TEST(result_cache, miss_then_insert_then_hit) {
  result_cache cache(/*capacity=*/8);
  const cache_key key = cache_key_of("request bytes");
  const cache_lookup miss = cache.lookup(key);
  EXPECT_FALSE(miss.hit.has_value());
  EXPECT_TRUE(cache.insert(key, "response bytes", miss.epoch));
  const cache_lookup hit = cache.lookup(key);
  ASSERT_TRUE(hit.hit.has_value());
  EXPECT_EQ(hit.hit->response, "response bytes");

  const cache_stats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.insertions, 1u);
  EXPECT_EQ(st.entries, 1u);
}

TEST(result_cache, zero_capacity_disables_caching) {
  result_cache cache(/*capacity=*/0);
  const cache_key key = cache_key_of("r");
  const cache_lookup miss = cache.lookup(key);
  EXPECT_FALSE(cache.insert(key, "v", miss.epoch));
  EXPECT_FALSE(cache.lookup(key).hit.has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(result_cache, lru_evicts_the_coldest_entry) {
  // One shard so recency order is total.
  result_cache cache(/*capacity=*/2, /*shards=*/1);
  const cache_key a = cache_key_of("a");
  const cache_key b = cache_key_of("b");
  const cache_key c = cache_key_of("c");
  const std::uint64_t epoch = cache.epoch();
  EXPECT_TRUE(cache.insert(a, "A", epoch));
  EXPECT_TRUE(cache.insert(b, "B", epoch));
  ASSERT_TRUE(cache.lookup(a).hit.has_value());  // touch a: b is coldest
  EXPECT_TRUE(cache.insert(c, "C", epoch));      // evicts b
  EXPECT_TRUE(cache.lookup(a).hit.has_value());
  EXPECT_FALSE(cache.lookup(b).hit.has_value());
  EXPECT_TRUE(cache.lookup(c).hit.has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(result_cache, invalidate_empties_and_blocks_stale_inserts) {
  result_cache cache(/*capacity=*/8);
  const cache_key key = cache_key_of("design");
  const cache_lookup before = cache.lookup(key);
  EXPECT_TRUE(cache.insert(key, "old", before.epoch));

  const std::uint64_t new_epoch = cache.invalidate();
  EXPECT_GT(new_epoch, before.epoch);
  // The old entry is invisible after the epoch bump.
  EXPECT_FALSE(cache.lookup(key).hit.has_value());

  // An insert computed against the pre-invalidate epoch (a long
  // evaluation that raced the invalidate) must be dropped.
  EXPECT_FALSE(cache.insert(key, "stale", before.epoch));
  EXPECT_FALSE(cache.lookup(key).hit.has_value());
  EXPECT_EQ(cache.stats().stale_inserts, 1u);

  // A fresh lookup/insert cycle works at the new epoch.
  const cache_lookup fresh = cache.lookup(key);
  EXPECT_TRUE(cache.insert(key, "new", fresh.epoch));
  ASSERT_TRUE(cache.lookup(key).hit.has_value());
  EXPECT_EQ(cache.lookup(key).hit->response, "new");
}

TEST(result_cache, reinsert_refreshes_in_place) {
  result_cache cache(/*capacity=*/4, /*shards=*/1);
  const cache_key key = cache_key_of("k");
  const std::uint64_t epoch = cache.epoch();
  EXPECT_TRUE(cache.insert(key, "v1", epoch));
  EXPECT_TRUE(cache.insert(key, "v2", epoch));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.lookup(key).hit->response, "v2");
}

// --- metric_series ------------------------------------------------------

TEST(metric_series, snapshot_tracks_moments_and_percentiles) {
  metric_series series(/*hi=*/100.0, /*bins=*/100);
  for (int i = 1; i <= 100; ++i) {
    series.record(static_cast<double>(i));
  }
  const auto snap = series.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, 100.0);
  EXPECT_NEAR(snap.mean(), 50.5, 1e-9);
  // Bin width is 1.0, so percentiles land within one bin of the truth.
  EXPECT_NEAR(snap.p50, 50.0, 1.5);
  EXPECT_NEAR(snap.p90, 90.0, 1.5);
  EXPECT_NEAR(snap.p99, 99.0, 1.5);
}

TEST(metric_series, empty_snapshot_is_all_zero) {
  metric_series series(10.0, 10);
  const auto snap = series.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.mean(), 0.0);
  EXPECT_EQ(snap.p99, 0.0);
}

TEST(metric_series, percentiles_clamped_to_observed_extrema) {
  metric_series series(/*hi=*/1000.0, /*bins=*/10);  // coarse 100-wide bins
  series.record(3.0);
  series.record(4.0);
  const auto snap = series.snapshot();
  // Without clamping the synthetic bin edge would report 100.
  EXPECT_LE(snap.p99, 4.0);
  EXPECT_GE(snap.p50, 3.0);
}

TEST(metric_series, overflow_samples_counted_and_percentiles_flagged) {
  metric_series series(/*hi=*/10.0, /*bins=*/10);
  // Everything past the top edge: the histogram collapses all three
  // into the last bin, so every percentile is pinned to the max.
  series.record(50.0);
  series.record(500.0);
  series.record(5000.0);
  const auto snap = series.snapshot();
  EXPECT_EQ(snap.overflow, 3u);
  EXPECT_EQ(snap.sub_bin, 0u);
  // The histogram has no information past 10.0; percentiles can only
  // be pinned into the observed range, and `clamped` says to distrust
  // them (the true p50 here is 500, the report says 50).
  EXPECT_TRUE(snap.clamped);
  EXPECT_EQ(snap.max, 5000.0);
  EXPECT_GE(snap.p50, 50.0);
  EXPECT_LE(snap.p50, 5000.0);
}

TEST(metric_series, sub_bin_samples_counted_without_clamp_flag) {
  metric_series series(/*hi=*/10'000.0, /*bins=*/10'000);  // 1ms bins
  series.record(0.25);  // sub-millisecond: finer than one bin
  series.record(0.75);
  series.record(2.5);
  const auto snap = series.snapshot();
  EXPECT_EQ(snap.sub_bin, 2u);
  EXPECT_EQ(snap.overflow, 0u);
  EXPECT_FALSE(snap.clamped);
  // Sub-bin percentiles still clamp into the observed range instead of
  // reporting the whole first bin.
  EXPECT_LE(snap.p50, 2.5);
  EXPECT_GE(snap.p50, 0.25);
}

TEST(metric_series, in_range_data_sets_no_resolution_flags) {
  metric_series series(/*hi=*/100.0, /*bins=*/100);
  for (int i = 1; i <= 50; ++i) series.record(static_cast<double>(i));
  const auto snap = series.snapshot();
  EXPECT_EQ(snap.overflow, 0u);
  EXPECT_EQ(snap.sub_bin, 0u);
  EXPECT_FALSE(snap.clamped);
}

TEST(service_metrics, stats_list_sorted_with_stable_keys_and_ratio) {
  service_metrics m;
  m.requests_admitted.store(10);
  m.eval_ok.store(9);
  m.eval_error.store(1);
  m.queue_wait_ms.record(2.0);
  const stats_list stats =
      m.to_stats(/*hits=*/3, /*misses=*/1, /*entries=*/2, /*epoch=*/1);
  ASSERT_TRUE(std::is_sorted(stats.begin(), stats.end()));
  auto value = [&](std::string_view key) {
    const std::string* v = stats_get(stats, key);
    return v == nullptr ? std::string("<absent>") : *v;
  };
  EXPECT_EQ(value("requests.admitted"), "10");
  EXPECT_EQ(value("eval.ok"), "9");
  EXPECT_EQ(value("cache.hits"), "3");
  EXPECT_EQ(value("cache.hit_ratio"), "0.750000");
  EXPECT_EQ(value("latency.queue_wait_ms.count"), "1");
  EXPECT_NE(stats_get(stats, "latency.eval_ms.p99"), nullptr);
  EXPECT_NE(stats_get(stats, "latency.eval_ms.p95"), nullptr);
  EXPECT_NE(stats_get(stats, "batch.size.mean"), nullptr);
  EXPECT_NE(stats_get(stats, "queue.depth"), nullptr);
  EXPECT_EQ(stats_get(stats, "no.such.key"), nullptr);
}

}  // namespace
}  // namespace pn
