// Proxy tests: real workers on Unix sockets, a real eval_proxy in
// front, real frames. Covers the routing/byte-identity contract, worker
// death and failover, cross-worker invalidation (including the lazy
// resync of a worker that missed a broadcast), and the client retry
// policy the proxy's backpressure contract relies on.
#include "service/proxy.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "service/client.h"
#include "service/framing.h"
#include "service/protocol.h"
#include "service/result_cache.h"
#include "service/ring.h"
#include "service/server.h"
#include "service/socket.h"
#include "topology/generators/families.h"
#include "twin/design_codec.h"
#include "twin/serialize.h"

namespace pn {
namespace {

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/pn_proxy_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// A worker on a caller-chosen spec, so a test can kill one and restart
// it on the same endpoint (the crash-and-reconnect path).
class worker_fixture {
 public:
  explicit worker_fixture(std::string spec, server_config cfg = {})
      : spec_(std::move(spec)) {
    cfg.listen = spec_;
    server = std::make_unique<eval_server>(std::move(cfg));
    bind_status = server->bind();
    if (bind_status.is_ok()) {
      loop_ = std::make_unique<thread_pool>(1);
      loop_->submit([this] { serve_status_ = server->serve(cancel); });
    }
  }
  ~worker_fixture() { (void)stop(); }

  [[nodiscard]] status stop() {
    if (loop_) {
      cancel.request_cancel();
      loop_->wait_idle();
      loop_.reset();
    }
    return serve_status_;
  }

  [[nodiscard]] const std::string& spec() const { return spec_; }

  std::unique_ptr<eval_server> server;
  cancel_token cancel;
  status bind_status;

 private:
  std::string spec_;
  std::unique_ptr<thread_pool> loop_;
  status serve_status_;
};

class proxy_fixture {
 public:
  explicit proxy_fixture(std::vector<std::string> workers,
                         proxy_config cfg = {}) {
    spec_ = "unix:" + unique_socket_path();
    cfg.listen = spec_;
    cfg.workers = std::move(workers);
    // Tests probe dead workers immediately; production defaults would
    // add tens of milliseconds per probe.
    cfg.backoff_base_ms = 1.0;
    cfg.backoff_cap_ms = 5.0;
    proxy = std::make_unique<eval_proxy>(std::move(cfg));
    bind_status = proxy->bind();
    if (bind_status.is_ok()) {
      loop_ = std::make_unique<thread_pool>(1);
      loop_->submit([this] { serve_status_ = proxy->serve(cancel); });
    }
  }
  ~proxy_fixture() { (void)stop(); }

  [[nodiscard]] status stop() {
    if (loop_) {
      cancel.request_cancel();
      loop_->wait_idle();
      loop_.reset();
    }
    return serve_status_;
  }

  [[nodiscard]] const std::string& spec() const { return spec_; }

  std::unique_ptr<eval_proxy> proxy;
  cancel_token cancel;
  status bind_status;

 private:
  std::string spec_;
  std::unique_ptr<thread_pool> loop_;
  status serve_status_;
};

eval_request make_request(const std::string& family, int size,
                          std::uint64_t seed = 1) {
  eval_request req;
  req.name = family + "/" + std::to_string(size);
  req.options.seed = seed;
  req.options.run_repair_sim = false;
  req.design_twin =
      serialize_twin(design_to_twin(build_family(family, size, seed).value()));
  return req;
}

// The router's key for a request: hash of the canonical encoding.
cache_key routing_key(const eval_request& req) {
  return cache_key_of(encode_eval_request(req));
}

// Finds a seed whose request routes to worker `want` first.
eval_request request_routed_to(const hash_ring& ring, std::uint32_t want) {
  for (std::uint64_t seed = 1; seed < 64; ++seed) {
    eval_request req = make_request("fat_tree", 4, seed);
    if (ring.preference(routing_key(req))[0] == want) return req;
  }
  ADD_FAILURE() << "no seed in [1,64) routed to worker " << want;
  return make_request("fat_tree", 4);
}

TEST(ring, preference_is_deterministic_and_covers_all_workers) {
  const std::vector<std::string> specs = {"unix:/tmp/a", "unix:/tmp/b",
                                          "unix:/tmp/c", "unix:/tmp/d"};
  const hash_ring a(specs), b(specs);
  for (std::uint64_t s = 0; s < 200; ++s) {
    const cache_key k = cache_key_of("request-" + std::to_string(s));
    const auto pa = a.preference(k);
    ASSERT_EQ(pa.size(), specs.size());
    EXPECT_EQ(pa, b.preference(k));  // pure function of the specs
    // A permutation of all workers.
    std::vector<std::uint8_t> seen(specs.size(), 0);
    for (const std::uint32_t w : pa) {
      ASSERT_LT(w, specs.size());
      EXPECT_EQ(seen[w], 0);
      seen[w] = 1;
    }
  }
}

TEST(ring, death_only_remaps_the_dead_workers_keys) {
  const std::vector<std::string> specs = {"unix:/tmp/a", "unix:/tmp/b",
                                          "unix:/tmp/c", "unix:/tmp/d"};
  const hash_ring ring(specs);
  const std::vector<std::uint8_t> all_alive(specs.size(), 1);
  std::vector<std::uint8_t> b_dead = all_alive;
  b_dead[1] = 0;

  std::size_t remapped = 0;
  for (std::uint64_t s = 0; s < 400; ++s) {
    const cache_key k = cache_key_of("request-" + std::to_string(s));
    const std::uint32_t before = ring.pick(k, all_alive);
    const std::uint32_t after = ring.pick(k, b_dead);
    if (before != 1) {
      EXPECT_EQ(after, before);  // survivor keys stay home
    } else {
      EXPECT_NE(after, 1u);
      EXPECT_EQ(after, ring.preference(k)[1]);  // next in preference
      ++remapped;
    }
  }
  EXPECT_GT(remapped, 0u);  // the distribution actually used worker 1

  const std::vector<std::uint8_t> none_alive(specs.size(), 0);
  EXPECT_EQ(ring.pick(cache_key_of("x"), none_alive), specs.size());
}

TEST(proxy, relays_response_bytes_identical_to_direct_worker) {
  worker_fixture w0("unix:" + unique_socket_path());
  worker_fixture w1("unix:" + unique_socket_path());
  ASSERT_TRUE(w0.bind_status.is_ok());
  ASSERT_TRUE(w1.bind_status.is_ok());
  proxy_fixture px({w0.spec(), w1.spec()});
  ASSERT_TRUE(px.bind_status.is_ok()) << px.bind_status.to_string();

  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const eval_request req = make_request("fat_tree", 4, seed);
    const std::string payload = encode_eval_request(req);
    const std::uint32_t home =
        px.proxy->ring().preference(routing_key(req))[0];
    const worker_fixture& home_fx = home == 0 ? w0 : w1;

    // Raw frames on both paths so nothing re-serializes the response.
    auto ask = [&](const std::string& spec) -> std::string {
      auto ep = parse_endpoint(spec);
      EXPECT_TRUE(ep.is_ok());
      auto fd = connect_to(ep.value());
      EXPECT_TRUE(fd.is_ok());
      EXPECT_TRUE(write_frame(fd.value().get(), payload).is_ok());
      auto frame = read_frame(fd.value().get());
      EXPECT_TRUE(frame.is_ok());
      EXPECT_TRUE(frame.value().has_value());
      return frame.value().value_or(std::string{});
    };
    const std::string proxied = ask(px.spec());
    const std::string direct = ask(home_fx.spec());
    EXPECT_EQ(proxied, direct);  // byte-identical
    // And the proxy really did route to the home worker: the direct
    // request was the only other evaluation it saw.
    EXPECT_GE(home_fx.server->cache().stats().hits, 1u);
  }
  EXPECT_TRUE(px.stop().is_ok());
  EXPECT_TRUE(w0.stop().is_ok());
  EXPECT_TRUE(w1.stop().is_ok());
}

TEST(proxy, worker_death_fails_over_then_kill_all_is_retryable) {
  worker_fixture w0("unix:" + unique_socket_path());
  worker_fixture w1("unix:" + unique_socket_path());
  ASSERT_TRUE(w0.bind_status.is_ok());
  ASSERT_TRUE(w1.bind_status.is_ok());
  proxy_fixture px({w0.spec(), w1.spec()});
  ASSERT_TRUE(px.bind_status.is_ok());

  // A request whose home is worker 1; then kill worker 1 mid-stream.
  const eval_request req = request_routed_to(px.proxy->ring(), 1);
  auto client = eval_client::connect(px.spec());
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(client.value().evaluate(req).is_ok());  // warm: routed to w1

  ASSERT_TRUE(w1.stop().is_ok());
  // The same request now fails over to the survivor and still answers.
  auto failed_over = client.value().evaluate(req);
  ASSERT_TRUE(failed_over.is_ok()) << failed_over.error().to_string();
  EXPECT_GE(px.proxy->metrics().failovers.load(), 1u);
  EXPECT_GE(px.proxy->metrics().worker_failures.load(), 1u);
  EXPECT_FALSE(px.proxy->worker_alive(1));
  // The survivor evaluated it (its cache had no such entry).
  EXPECT_GE(w0.server->metrics().eval_ok.load(), 1u);

  // Survivors keep serving unrelated requests.
  ASSERT_TRUE(client.value().evaluate(request_routed_to(px.proxy->ring(), 0))
                  .is_ok());

  // Kill the last worker: an admitted request is answered — with the
  // retryable backpressure status, never a hang or a dropped frame.
  ASSERT_TRUE(w0.stop().is_ok());
  auto none_left = client.value().evaluate(req);
  ASSERT_FALSE(none_left.is_ok());
  EXPECT_EQ(none_left.error().code(), status_code::overloaded);
  EXPECT_TRUE(is_retryable_backpressure(none_left.error()));
  EXPECT_GE(px.proxy->metrics().no_worker_available.load(), 1u);
  EXPECT_TRUE(px.stop().is_ok());
}

TEST(proxy, invalidate_broadcasts_to_every_worker) {
  worker_fixture w0("unix:" + unique_socket_path());
  worker_fixture w1("unix:" + unique_socket_path());
  ASSERT_TRUE(w0.bind_status.is_ok());
  ASSERT_TRUE(w1.bind_status.is_ok());
  proxy_fixture px({w0.spec(), w1.spec()});
  ASSERT_TRUE(px.bind_status.is_ok());

  // Warm both workers' caches through the proxy.
  auto client = eval_client::connect(px.spec());
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(
      client.value().evaluate(request_routed_to(px.proxy->ring(), 0)).is_ok());
  ASSERT_TRUE(
      client.value().evaluate(request_routed_to(px.proxy->ring(), 1)).is_ok());

  auto gen = client.value().invalidate();
  ASSERT_TRUE(gen.is_ok());
  EXPECT_EQ(gen.value(), 2u);  // proxy generation, started at 1
  // Every worker observed the bump: epochs moved, and the previously
  // cached requests now re-evaluate (entries evict lazily on lookup).
  EXPECT_EQ(w0.server->cache().stats().epoch, 2u);
  EXPECT_EQ(w1.server->cache().stats().epoch, 2u);
  const std::uint64_t w0_evals = w0.server->metrics().eval_ok.load();
  const std::uint64_t w1_evals = w1.server->metrics().eval_ok.load();
  ASSERT_TRUE(
      client.value().evaluate(request_routed_to(px.proxy->ring(), 0)).is_ok());
  ASSERT_TRUE(
      client.value().evaluate(request_routed_to(px.proxy->ring(), 1)).is_ok());
  EXPECT_EQ(w0.server->metrics().eval_ok.load(), w0_evals + 1);
  EXPECT_EQ(w1.server->metrics().eval_ok.load(), w1_evals + 1);
  EXPECT_TRUE(px.stop().is_ok());
}

TEST(proxy, worker_that_missed_an_invalidate_is_resynced_before_reuse) {
  const std::string w1_spec = "unix:" + unique_socket_path();
  worker_fixture w0("unix:" + unique_socket_path());
  auto w1 = std::make_unique<worker_fixture>(w1_spec);
  ASSERT_TRUE(w0.bind_status.is_ok());
  ASSERT_TRUE(w1->bind_status.is_ok());
  proxy_fixture px({w0.spec(), w1_spec});
  ASSERT_TRUE(px.bind_status.is_ok());

  const eval_request to_w1 = request_routed_to(px.proxy->ring(), 1);
  auto client = eval_client::connect(px.spec());
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(client.value().evaluate(to_w1).is_ok());

  // Worker 1 crashes; the fleet-wide invalidate can only reach w0.
  ASSERT_TRUE(w1->stop().is_ok());
  auto gen = client.value().invalidate();
  ASSERT_TRUE(gen.is_ok());
  EXPECT_EQ(gen.value(), 2u);
  EXPECT_EQ(w0.server->cache().stats().epoch, 2u);

  // Worker 1 comes back on the same endpoint, one generation behind.
  w1 = std::make_unique<worker_fixture>(w1_spec);
  ASSERT_TRUE(w1->bind_status.is_ok());

  // The next request the proxy routes to the reborn worker must be
  // preceded by the missed invalidate. Until its dead-mark backoff
  // expires the proxy may keep failing over to w0 (still a correct
  // answer), so drive requests until w1 is back in rotation.
  bool answered = false;
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto rep = client.value().evaluate(to_w1);
    answered = rep.is_ok();
    ASSERT_TRUE(answered) << rep.error().to_string();
    if (w1->server->cache().stats().epoch == 2u) break;
    sleep_ms(2.0);
  }
  EXPECT_TRUE(answered);
  EXPECT_EQ(w1->server->cache().stats().epoch, 2u);  // resynced
  EXPECT_GE(px.proxy->metrics().invalidate_resyncs.load(), 1u);
  EXPECT_TRUE(px.stop().is_ok());
}

TEST(client, retry_delay_is_deterministic_jittered_and_capped) {
  retry_policy policy;
  policy.backoff_ms = 100.0;
  policy.backoff_cap_ms = 400.0;
  policy.jitter_seed = 7;

  rng a(policy.jitter_seed), b(policy.jitter_seed);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double bound =
        std::min(policy.backoff_cap_ms,
                 policy.backoff_ms * static_cast<double>(1 << attempt));
    const double da = retry_delay_ms(policy, attempt, a);
    EXPECT_GE(da, 0.0);
    EXPECT_LT(da, bound);
    EXPECT_EQ(da, retry_delay_ms(policy, attempt, b));  // same seed, same
  }
}

TEST(client, evaluate_with_retry_sleeps_then_surfaces_backpressure) {
  // A fake service that answers every evaluate with `overloaded`.
  const std::string spec = "unix:" + unique_socket_path();
  auto ep = parse_endpoint(spec);
  ASSERT_TRUE(ep.is_ok());
  auto listener = listen_on(ep.value());
  ASSERT_TRUE(listener.is_ok());
  cancel_token cancel;
  thread_pool loop(1);
  loop.submit([&] {
    for (;;) {
      auto fd = accept_on(listener.value().get(), cancel);
      if (!fd.is_ok() || !fd.value().has_value()) return;
      for (;;) {
        auto frame = read_frame(fd.value()->get(),
                                default_max_frame_payload, &cancel);
        if (!frame.is_ok() || !frame.value().has_value()) break;
        if (!write_frame(fd.value()->get(),
                         encode_error_response(overloaded_error("busy")))
                 .is_ok()) {
          break;
        }
      }
    }
  });

  auto client = eval_client::connect(spec);
  ASSERT_TRUE(client.is_ok());
  retry_policy policy;
  policy.retries = 3;
  policy.backoff_ms = 10.0;
  policy.backoff_cap_ms = 20.0;
  policy.jitter_seed = 11;

  std::vector<double> slept;
  auto rep = client.value().evaluate_with_retry(
      make_request("fat_tree", 4), policy,
      [&](double ms) { slept.push_back(ms); });
  ASSERT_FALSE(rep.is_ok());
  EXPECT_EQ(rep.error().code(), status_code::overloaded);

  // One sleep per retry, each the policy's deterministic jittered delay.
  ASSERT_EQ(slept.size(), 3u);
  rng jitter(policy.jitter_seed);
  for (std::size_t i = 0; i < slept.size(); ++i) {
    EXPECT_EQ(slept[i],
              retry_delay_ms(policy, static_cast<int>(i), jitter));
  }
  cancel.request_cancel();
  loop.wait_idle();
}

TEST(client, evaluate_with_retry_succeeds_without_sleeping_when_healthy) {
  worker_fixture w0("unix:" + unique_socket_path());
  ASSERT_TRUE(w0.bind_status.is_ok());
  auto client = eval_client::connect(w0.spec());
  ASSERT_TRUE(client.is_ok());

  retry_policy policy;
  policy.retries = 5;
  std::vector<double> slept;
  auto rep = client.value().evaluate_with_retry(
      make_request("fat_tree", 4), policy,
      [&](double ms) { slept.push_back(ms); });
  ASSERT_TRUE(rep.is_ok());
  EXPECT_TRUE(slept.empty());
  EXPECT_TRUE(w0.stop().is_ok());
}

}  // namespace
}  // namespace pn
