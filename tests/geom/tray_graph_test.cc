#include "geom/tray_graph.h"

#include <gtest/gtest.h>

#include "geom/point.h"

namespace pn {
namespace {

using sqmm = square_millimeters;

// A 2x3 grid of junctions with unit spacing:
//   0 - 1 - 2
//   |   |   |
//   3 - 4 - 5
class tray_grid_test : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int row = 0; row < 2; ++row) {
      for (int col = 0; col < 3; ++col) {
        g.add_junction({static_cast<double>(col), static_cast<double>(row)});
      }
    }
    for (int col = 0; col + 1 < 3; ++col) {
      segs.push_back(g.add_segment(static_cast<std::size_t>(col),
                                   static_cast<std::size_t>(col + 1),
                                   sqmm{100.0}));
      segs.push_back(g.add_segment(static_cast<std::size_t>(col + 3),
                                   static_cast<std::size_t>(col + 4),
                                   sqmm{100.0}));
    }
    for (int col = 0; col < 3; ++col) {
      segs.push_back(g.add_segment(static_cast<std::size_t>(col),
                                   static_cast<std::size_t>(col + 3),
                                   sqmm{100.0}));
    }
  }
  tray_graph g;
  std::vector<tray_id> segs;
};

TEST_F(tray_grid_test, shortest_route_length) {
  const auto r = g.route_unconstrained(0, 5);
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r.value().length.value(), 3.0);
  EXPECT_EQ(r.value().segments.size(), 3u);
}

TEST_F(tray_grid_test, same_junction_route_is_empty) {
  const auto r = g.route_unconstrained(2, 2);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().segments.empty());
  EXPECT_DOUBLE_EQ(r.value().length.value(), 0.0);
}

TEST_F(tray_grid_test, reserve_and_release_roundtrip) {
  const auto r = g.route_unconstrained(0, 2);
  ASSERT_TRUE(r.is_ok());
  ASSERT_TRUE(g.reserve(r.value(), sqmm{30.0}).is_ok());
  for (tray_id t : r.value().segments) {
    EXPECT_DOUBLE_EQ(g.segment_used(t).value(), 30.0);
    EXPECT_DOUBLE_EQ(g.segment_free(t).value(), 70.0);
    EXPECT_NEAR(g.fill_fraction(t), 0.3, 1e-12);
  }
  g.release(r.value(), sqmm{30.0});
  for (tray_id t : r.value().segments) {
    EXPECT_DOUBLE_EQ(g.segment_used(t).value(), 0.0);
  }
}

TEST_F(tray_grid_test, reserve_fails_atomically_when_full) {
  const auto r = g.route_unconstrained(0, 2);
  ASSERT_TRUE(r.is_ok());
  ASSERT_TRUE(g.reserve(r.value(), sqmm{90.0}).is_ok());
  const auto s = g.reserve(r.value(), sqmm{20.0});
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), status_code::capacity_exceeded);
  // Nothing was partially reserved.
  for (tray_id t : r.value().segments) {
    EXPECT_DOUBLE_EQ(g.segment_used(t).value(), 90.0);
  }
}

TEST_F(tray_grid_test, constrained_route_detours_around_full_segment) {
  // Fill the direct 0-1 segment; the route 0->1 must detour 0-3-4-1.
  const auto direct = g.route_unconstrained(0, 1);
  ASSERT_TRUE(direct.is_ok());
  ASSERT_EQ(direct.value().segments.size(), 1u);
  ASSERT_TRUE(g.reserve(direct.value(), sqmm{95.0}).is_ok());

  const auto detour = g.route(0, 1, sqmm{10.0});
  ASSERT_TRUE(detour.is_ok());
  EXPECT_DOUBLE_EQ(detour.value().length.value(), 3.0);
  EXPECT_EQ(detour.value().segments.size(), 3u);
}

TEST_F(tray_grid_test, infeasible_when_everything_is_full) {
  for (tray_id t : segs) {
    tray_route one{{t}, g.segment_length(t)};
    ASSERT_TRUE(g.reserve(one, sqmm{100.0}).is_ok());
  }
  const auto r = g.route(0, 5, sqmm{1.0});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.error().code(), status_code::infeasible);
}

TEST_F(tray_grid_test, nearest_junction) {
  EXPECT_EQ(g.nearest_junction({0.1, 0.1}), 0u);
  EXPECT_EQ(g.nearest_junction({2.2, 1.3}), 5u);
}

TEST_F(tray_grid_test, release_below_zero_is_a_bug) {
  const auto r = g.route_unconstrained(0, 1);
  ASSERT_TRUE(r.is_ok());
  EXPECT_THROW(g.release(r.value(), sqmm{5.0}), std::logic_error);
}

TEST(tray_graph, self_loop_segment_is_a_bug) {
  tray_graph g;
  g.add_junction({0, 0});
  EXPECT_THROW(g.add_segment(0, 0, sqmm{10.0}), std::logic_error);
}

TEST(point, distances) {
  EXPECT_DOUBLE_EQ(manhattan_distance({0, 0}, {3, 4}).value(), 7.0);
  EXPECT_DOUBLE_EQ(euclidean_distance({0, 0}, {3, 4}).value(), 5.0);
}

TEST(rect, contains_and_overlaps) {
  const rect a{{0, 0}, {2, 2}};
  const rect b{{1, 1}, {3, 3}};
  const rect c{{5, 5}, {6, 6}};
  EXPECT_TRUE(a.contains({1, 1}));
  EXPECT_FALSE(a.contains({3, 1}));
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_EQ(a.center(), (point{1, 1}));
}

}  // namespace
}  // namespace pn
