#include "common/units.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pn {
namespace {

using namespace pn::literals;

TEST(units, arithmetic_is_closed_per_unit) {
  const meters a{3.0};
  const meters b{4.5};
  EXPECT_DOUBLE_EQ((a + b).value(), 7.5);
  EXPECT_DOUBLE_EQ((b - a).value(), 1.5);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 6.0);
  EXPECT_DOUBLE_EQ((b / 3.0).value(), 1.5);
  EXPECT_DOUBLE_EQ(b / a, 1.5);  // ratio is dimensionless
}

TEST(units, compound_assignment) {
  dollars d{10.0};
  d += dollars{5.0};
  EXPECT_DOUBLE_EQ(d.value(), 15.0);
  d -= dollars{3.0};
  EXPECT_DOUBLE_EQ(d.value(), 12.0);
  d *= 2.0;
  EXPECT_DOUBLE_EQ(d.value(), 24.0);
  d /= 4.0;
  EXPECT_DOUBLE_EQ(d.value(), 6.0);
}

TEST(units, comparisons) {
  EXPECT_LT(meters{1.0}, meters{2.0});
  EXPECT_GE(gbps{400.0}, gbps{100.0});
  EXPECT_EQ(hours{1.0}, hours{1.0});
}

TEST(units, conversions) {
  EXPECT_DOUBLE_EQ(to_millimeters(meters{1.5}).value(), 1500.0);
  EXPECT_DOUBLE_EQ(to_meters(millimeters{250.0}).value(), 0.25);
  EXPECT_DOUBLE_EQ(hours_from_minutes(90.0).value(), 1.5);
  EXPECT_DOUBLE_EQ(minutes(hours{2.0}), 120.0);
}

TEST(units, circle_area_matches_aws_numbers) {
  // §3.1: 6.7mm -> 11mm OD grows the cross-section ~2.7x.
  const double a100 = circle_area(6.7_mm).value();
  const double a400 = circle_area(11.0_mm).value();
  EXPECT_NEAR(a400 / a100, 2.7, 0.05);
}

TEST(units, literals) {
  EXPECT_DOUBLE_EQ((2.5_m).value(), 2.5);
  EXPECT_DOUBLE_EQ((400_gbps).value(), 400.0);
  EXPECT_DOUBLE_EQ((99.5_usd).value(), 99.5);
  EXPECT_DOUBLE_EQ((8_h).value(), 8.0);
  EXPECT_DOUBLE_EQ((0.75_db).value(), 0.75);
}

TEST(units, streaming) {
  std::ostringstream oss;
  oss << meters{3.5} << " " << dollars{20.0} << " " << watts{5.0};
  EXPECT_EQ(oss.str(), "3.5m $20 5W");
}

TEST(units, negation_and_default) {
  EXPECT_DOUBLE_EQ((-meters{2.0}).value(), -2.0);
  EXPECT_DOUBLE_EQ(dollars{}.value(), 0.0);
}

}  // namespace
}  // namespace pn
