#include <gtest/gtest.h>

#include "common/strings.h"
#include "common/table.h"

namespace pn {
namespace {

TEST(strings, str_format) {
  EXPECT_EQ(str_format("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(str_format("empty"), "empty");
}

TEST(strings, split_basic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(strings, split_no_separator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(strings, join_roundtrip) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(strings, starts_with) {
  EXPECT_TRUE(starts_with("pod0/tor1", "pod0"));
  EXPECT_FALSE(starts_with("pod0", "pod0/tor1"));
}

TEST(strings, csv_field_plain_values_pass_through) {
  EXPECT_EQ(csv_field("fat_tree"), "fat_tree");
  EXPECT_EQ(csv_field(""), "");
  EXPECT_EQ(csv_field("k=8 r=16"), "k=8 r=16");
}

TEST(strings, csv_field_quotes_commas_quotes_and_newlines) {
  EXPECT_EQ(csv_field("ft,k=8"), "\"ft,k=8\"");
  EXPECT_EQ(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_field("a\nb"), "\"a\nb\"");
  EXPECT_EQ(csv_field("a\rb"), "\"a\rb\"");
}

TEST(strings, human_count) {
  EXPECT_EQ(human_count(950), "950");
  EXPECT_EQ(human_count(12345), "12.3k");
  EXPECT_EQ(human_count(2500000), "2.50M");
  EXPECT_EQ(human_count(3.2e9), "3.20G");
}

TEST(strings, human_dollars) {
  EXPECT_EQ(human_dollars(950), "$950");
  EXPECT_EQ(human_dollars(12345), "$12.3k");
  EXPECT_EQ(human_dollars(2500000), "$2.50M");
}

TEST(table, renders_aligned_grid) {
  text_table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("b").cell(22LL);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1.5   |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22    |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(table, percent_cells) {
  text_table t({"x"});
  t.row().cell_pct(0.123456);
  EXPECT_NE(t.to_string().find("12.3%"), std::string::npos);
}

TEST(table, overflow_row_is_programming_error) {
  text_table t({"only"});
  t.row().cell("a");
  EXPECT_THROW(t.cell("b"), std::logic_error);
}

TEST(table, cell_before_row_is_programming_error) {
  text_table t({"h"});
  EXPECT_THROW(t.cell("x"), std::logic_error);
}

}  // namespace
}  // namespace pn
