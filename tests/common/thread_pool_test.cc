#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace pn {
namespace {

TEST(thread_pool, runs_all_submitted_tasks) {
  std::atomic<int> count{0};
  thread_pool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(thread_pool, wait_idle_is_reusable) {
  std::atomic<int> count{0};
  thread_pool pool(2);
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(thread_pool, destructor_drains_queue) {
  std::atomic<int> count{0};
  {
    thread_pool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(thread_pool, clamps_to_one_worker) {
  thread_pool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(parallel_for, covers_every_index_exactly_once) {
  for (const int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(threads, hits.size(),
                 [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(parallel_for, zero_items_is_a_noop) {
  parallel_for(4, 0, [](std::size_t) { FAIL(); });
}

TEST(default_thread_count, positive) {
  EXPECT_GE(default_thread_count(), 1);
}

TEST(cancel_token, default_token_never_fires_until_requested) {
  cancel_token t;
  EXPECT_FALSE(t.cancelled());
  t.request_cancel();
  EXPECT_TRUE(t.cancelled());
  // Copies share the underlying flag — that is what lets a signal
  // handler's copy cancel the sweep's copy.
  cancel_token copy = t;
  EXPECT_TRUE(copy.cancelled());
}

TEST(thread_pool, cancel_pending_drops_unstarted_tasks) {
  std::atomic<int> count{0};
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  thread_pool pool(1);
  // One blocker occupies the single worker; everything behind it is
  // queued-but-unstarted and must be droppable. Wait for it to start, or
  // cancel_pending could drop the blocker itself while it still queues.
  pool.submit([&started, &release] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 10; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  const std::size_t dropped = pool.cancel_pending();
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(dropped + static_cast<std::size_t>(count.load()), 10u);
  // The pool stays usable after a cancel.
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
}

TEST(parallel_for, cancelled_token_skips_remaining_indices) {
  // Serial path: cancel fires after index 2, so exactly 3 indices run.
  cancel_token cancel;
  std::vector<int> hits(100, 0);
  parallel_for(
      1, hits.size(),
      [&](std::size_t i) {
        hits[i] = 1;
        if (i == 2) cancel.request_cancel();
      },
      cancel);
  EXPECT_EQ(hits[0] + hits[1] + hits[2], 3);
  for (std::size_t i = 3; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 0) << "i=" << i;
  }
}

TEST(parallel_for, pre_cancelled_token_runs_nothing) {
  cancel_token cancel;
  cancel.request_cancel();
  for (const int threads : {1, 4}) {
    parallel_for(
        threads, 64, [](std::size_t) { FAIL(); }, cancel);
  }
}

TEST(parallel_for, parallel_cancel_joins_cleanly) {
  // Cancelling mid-flight must still join every worker and leave
  // dispatched indices completed exactly once.
  cancel_token cancel;
  std::vector<std::atomic<int>> hits(512);
  parallel_for(
      8, hits.size(),
      [&](std::size_t i) {
        hits[i].fetch_add(1);
        if (i == 100) cancel.request_cancel();
      },
      cancel);
  std::size_t ran = 0;
  for (auto& h : hits) {
    EXPECT_LE(h.load(), 1);
    ran += static_cast<std::size_t>(h.load());
  }
  EXPECT_GE(ran, 1u);
  EXPECT_LT(ran, hits.size());  // the tail after cancel was skipped
}

}  // namespace
}  // namespace pn
