#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace pn {
namespace {

TEST(thread_pool, runs_all_submitted_tasks) {
  std::atomic<int> count{0};
  thread_pool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(thread_pool, wait_idle_is_reusable) {
  std::atomic<int> count{0};
  thread_pool pool(2);
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(thread_pool, destructor_drains_queue) {
  std::atomic<int> count{0};
  {
    thread_pool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(thread_pool, clamps_to_one_worker) {
  thread_pool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(parallel_for, covers_every_index_exactly_once) {
  for (const int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(threads, hits.size(),
                 [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(parallel_for, zero_items_is_a_noop) {
  parallel_for(4, 0, [](std::size_t) { FAIL(); });
}

TEST(default_thread_count, positive) {
  EXPECT_GE(default_thread_count(), 1);
}

}  // namespace
}  // namespace pn
