#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pn {
namespace {

TEST(rng, deterministic_for_seed) {
  rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(rng, different_seeds_diverge) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(rng, next_double_in_unit_interval) {
  rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(rng, next_below_is_unbiased_enough) {
  rng r(99);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[r.next_below(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% of expectation
  }
}

TEST(rng, next_int_covers_inclusive_range) {
  rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(rng, normal_has_right_moments) {
  rng r(11);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(rng, exponential_has_right_mean) {
  rng r(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_exponential(5.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(rng, shuffle_is_a_permutation) {
  rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(rng, bool_probability) {
  rng r(19);
  int t = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.next_bool(0.25)) ++t;
  }
  EXPECT_NEAR(static_cast<double>(t) / n, 0.25, 0.01);
}

TEST(rng, fork_gives_independent_stream) {
  rng parent(23);
  rng child = parent.fork();
  // Child stream differs from the parent continuing.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(rng, pick_selects_member) {
  rng r(29);
  const std::vector<std::string> v{"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    const std::string& s = r.pick(v);
    EXPECT_TRUE(s == "a" || s == "b" || s == "c");
  }
}

}  // namespace
}  // namespace pn
