#include "common/stats.h"

#include <gtest/gtest.h>

#include <limits>

namespace pn {
namespace {

TEST(sample_stats, basic_moments) {
  sample_stats s;
  s.add_all({1, 2, 3, 4});
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.118, 1e-3);
}

TEST(sample_stats, percentiles_interpolate) {
  sample_stats s;
  s.add_all({10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.125), 15.0);  // interpolated
}

TEST(sample_stats, single_sample) {
  sample_stats s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(sample_stats, empty_queries_are_bugs) {
  sample_stats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.percentile(0.5), std::logic_error);
}

TEST(sample_stats, nonfinite_samples_are_bugs) {
  // One NaN would silently poison sum/mean/stddev and leave percentile's
  // sort order unspecified — reject at the door instead.
  sample_stats s;
  EXPECT_THROW(s.add(std::numeric_limits<double>::quiet_NaN()),
               std::logic_error);
  EXPECT_THROW(s.add(std::numeric_limits<double>::infinity()),
               std::logic_error);
  EXPECT_THROW(s.add(-std::numeric_limits<double>::infinity()),
               std::logic_error);
  EXPECT_TRUE(s.empty());  // rejected samples were not recorded
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
}

TEST(histogram, bins_and_clamping) {
  histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bin 0
  h.add(0.5);
  h.add(3.0);
  h.add(9.9);
  h.add(42.0);   // clamps to last bin
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(histogram, invalid_construction) {
  EXPECT_THROW(histogram(1.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(histogram(0.0, 1.0, 0), std::logic_error);
}

TEST(histogram, nonfinite_values_counted_aside_not_binned) {
  // Casting NaN or ±Inf to a bin index is UB; they must land in the
  // nonfinite tally without disturbing any bin or total().
  histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.nonfinite(), 3u);
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    EXPECT_EQ(h.count(b), 0u) << "bin " << b;
  }
  h.add(5.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.nonfinite(), 3u);
}

}  // namespace
}  // namespace pn
