#include "common/status.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/ids.h"

namespace pn {
namespace {

TEST(status, default_is_ok) {
  status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), status_code::ok);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(status, error_carries_code_and_message) {
  const status s = capacity_error("tray 7 full");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), status_code::capacity_exceeded);
  EXPECT_EQ(s.message(), "tray 7 full");
  EXPECT_EQ(s.to_string(), "capacity_exceeded: tray 7 full");
}

TEST(status, all_codes_have_names) {
  for (status_code c :
       {status_code::ok, status_code::invalid_argument, status_code::not_found,
        status_code::out_of_range, status_code::infeasible,
        status_code::capacity_exceeded, status_code::constraint_violated,
        status_code::unavailable, status_code::cancelled,
        status_code::deadline_exceeded, status_code::fault_injected,
        status_code::io_error, status_code::corrupt_data,
        status_code::bad_frame, status_code::overloaded,
        status_code::shutting_down}) {
    EXPECT_STRNE(status_code_name(c), "unknown");
  }
}

TEST(status, from_name_inverts_name_for_every_code) {
  for (status_code c :
       {status_code::ok, status_code::invalid_argument, status_code::not_found,
        status_code::out_of_range, status_code::infeasible,
        status_code::capacity_exceeded, status_code::constraint_violated,
        status_code::unavailable, status_code::cancelled,
        status_code::deadline_exceeded, status_code::fault_injected,
        status_code::io_error, status_code::corrupt_data,
        status_code::bad_frame, status_code::overloaded,
        status_code::shutting_down}) {
    const auto back = status_code_from_name(status_code_name(c));
    ASSERT_TRUE(back.has_value()) << status_code_name(c);
    EXPECT_EQ(*back, c);
  }
  EXPECT_FALSE(status_code_from_name("no_such_code").has_value());
  EXPECT_FALSE(status_code_from_name("").has_value());
}

TEST(status, service_codes_have_distinct_helpers) {
  EXPECT_EQ(overloaded_error("q full").code(), status_code::overloaded);
  EXPECT_EQ(shutting_down_error("drain").code(), status_code::shutting_down);
  EXPECT_EQ(bad_frame_error("torn").code(), status_code::bad_frame);
  EXPECT_EQ(fault_injected_error("chaos").code(), status_code::fault_injected);
  EXPECT_EQ(io_error_status("disk").code(), status_code::io_error);
  EXPECT_EQ(corrupt_data_error("bits").code(), status_code::corrupt_data);
}

TEST(result, holds_value) {
  result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(result, holds_error) {
  result<int> r = not_found_error("nope");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.error().code(), status_code::not_found);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(result, value_on_error_throws) {
  result<int> r = infeasible_error("x");
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(result, from_ok_status_is_a_bug) {
  EXPECT_THROW((result<int>{status::ok()}), std::logic_error);
}

TEST(result, move_only_friendly) {
  result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.is_ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 9);
}

TEST(check, fires_with_location) {
  try {
    PN_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("custom 42"), std::string::npos);
  }
}

TEST(ids, strong_ids_are_distinct_types) {
  const node_id n{3};
  EXPECT_TRUE(n.valid());
  EXPECT_EQ(n.value(), 3u);
  EXPECT_EQ(n.index(), 3u);
  EXPECT_FALSE(node_id{}.valid());
  static_assert(!std::is_convertible_v<node_id, rack_id>);
  static_assert(!std::is_convertible_v<node_id, std::uint32_t>);
}

TEST(ids, hashable) {
  std::unordered_map<rack_id, int> m;
  m[rack_id{1}] = 10;
  m[rack_id{2}] = 20;
  EXPECT_EQ(m.at(rack_id{1}), 10);
  EXPECT_EQ(m.at(rack_id{2}), 20);
}

}  // namespace
}  // namespace pn
