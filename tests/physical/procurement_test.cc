#include "physical/procurement.h"

#include <gtest/gtest.h>

#include "physical/placement.h"
#include "topology/generators/clos.h"

namespace pn {
namespace {

using namespace pn::literals;

// The catalog must outlive the plan (link_choice points into it).
const catalog& shared_catalog() {
  static const catalog cat = catalog::standard();
  return cat;
}

cabling_plan plan_for(const network_graph& g) {
  floorplan_params fpp;
  fpp.rows = 3;
  fpp.racks_per_row = 12;
  floorplan fp(fpp);
  const auto pl = block_placement(g, fp);
  return plan_cabling(g, pl.value(), fp, shared_catalog(), {}).value();
}

TEST(procurement, covers_every_cable_with_spares) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  const cabling_plan plan = plan_for(g);
  procurement_params p;
  p.spares_fraction = 0.10;
  const procurement_order order = build_procurement_order(plan, p);
  EXPECT_FALSE(order.skus.empty());
  // At least one spare per SKU, total >= runs * 1.1 (rounding up).
  EXPECT_GE(order.total_cables,
            static_cast<std::size_t>(
                static_cast<double>(plan.runs.size()) * 1.10));
  EXPECT_GT(order.total_cost.value(), 0.0);
  for (const procurement_sku& sku : order.skus) {
    EXPECT_GT(sku.quantity, 0u);
    EXPECT_FALSE(sku.offers.empty());
    EXPECT_GT(sku.unit_cost.value(), 0.0);
  }
}

TEST(procurement, sku_lengths_are_quantized) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  const cabling_plan plan = plan_for(g);
  procurement_params p;
  p.length_quantum = meters{5.0};
  const procurement_order order = build_procurement_order(plan, p);
  for (const procurement_sku& sku : order.skus) {
    const double q = sku.length.value() / 5.0;
    EXPECT_NEAR(q, std::round(q), 1e-9) << sku.description;
    EXPECT_GE(sku.length.value(), 5.0);
  }
}

TEST(procurement, active_cables_are_sole_source) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  const procurement_order order =
      build_procurement_order(plan_for(g), {});
  bool saw_active = false;
  for (const procurement_sku& sku : order.skus) {
    if (sku.medium == cable_medium::active_electrical ||
        sku.medium == cable_medium::active_optical) {
      saw_active = true;
      EXPECT_EQ(sku.offers.size(), 1u) << sku.description;
    }
    if (sku.medium == cable_medium::copper_dac ||
        sku.medium == cable_medium::fiber) {
      EXPECT_GT(sku.offers.size(), 1u) << sku.description;
    }
  }
  EXPECT_TRUE(saw_active);  // fat-tree k=8 uses AOC for mid-length runs
  EXPECT_GT(order.sole_source_skus, 0u);
}

TEST(procurement, fungible_vendor_outage_is_resourced) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  const procurement_order order =
      build_procurement_order(plan_for(g), {});
  const auto rep = assess_vendor_outage(order, "CuLink", 60.0);
  if (rep.affected_skus > 0) {
    // Commodity copper: alternatives exist, nothing blocks.
    EXPECT_EQ(rep.blocked_skus, 0u);
    EXPECT_EQ(rep.resourced_skus, rep.affected_skus);
    EXPECT_GT(rep.cost_premium.value(), 0.0);
    EXPECT_LT(rep.delay_days, 60.0);  // alt lead time, not the outage
  }
}

TEST(procurement, sole_source_outage_blocks_the_schedule) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  const procurement_order order =
      build_procurement_order(plan_for(g), {});
  const auto rep = assess_vendor_outage(order, "PhotonCord", 60.0);
  EXPECT_GT(rep.affected_skus, 0u);
  EXPECT_EQ(rep.blocked_skus, rep.affected_skus);
  EXPECT_DOUBLE_EQ(rep.delay_days, 60.0);
  EXPECT_DOUBLE_EQ(rep.cost_premium.value(), 0.0);
}

TEST(procurement, unknown_vendor_outage_is_a_noop) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const procurement_order order =
      build_procurement_order(plan_for(g), {});
  const auto rep = assess_vendor_outage(order, "NobodyCorp", 30.0);
  EXPECT_EQ(rep.affected_skus, 0u);
  EXPECT_DOUBLE_EQ(rep.delay_days, 0.0);
}

}  // namespace
}  // namespace pn
