#include <gtest/gtest.h>

#include "physical/bundling.h"
#include "physical/cabling.h"
#include "topology/generators/clos.h"
#include "topology/generators/jellyfish.h"

namespace pn {
namespace {

using namespace pn::literals;

struct rig {
  explicit rig(network_graph graph, int rows = 2, int per_row = 12)
      : g(std::move(graph)),
        fp([&] {
          floorplan_params p;
          p.rows = rows;
          p.racks_per_row = per_row;
          return p;
        }()),
        pl(block_placement(g, fp).value()) {}

  network_graph g;
  floorplan fp;
  placement pl;
  catalog cat = catalog::standard();
};

TEST(cabling, plans_every_live_edge) {
  rig r(build_fat_tree(4, 100_gbps));
  const auto plan = plan_cabling(r.g, r.pl, r.fp, r.cat, {});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().runs.size(), r.g.edge_count());
  EXPECT_GT(plan.value().total_cost().value(), 0.0);
  EXPECT_EQ(plan.value().copper_runs + plan.value().optical_runs,
            plan.value().runs.size());
}

TEST(cabling, intra_rack_runs_detected) {
  rig r(build_fat_tree(4, 100_gbps));
  const auto plan = plan_cabling(r.g, r.pl, r.fp, r.cat, {});
  ASSERT_TRUE(plan.is_ok());
  // Block placement packs whole pods into racks: many intra-rack links.
  EXPECT_GT(plan.value().intra_rack_runs, 0u);
  for (const cable_run& run : plan.value().runs) {
    if (run.rack_a == run.rack_b) {
      EXPECT_DOUBLE_EQ(run.length.value(), 2.0);
      EXPECT_TRUE(run.route.segments.empty());
    }
  }
}

TEST(cabling, short_runs_copper_long_runs_fiber) {
  rig r(build_fat_tree(8, 100_gbps), 4, 20);
  const auto plan = plan_cabling(r.g, r.pl, r.fp, r.cat, {});
  ASSERT_TRUE(plan.is_ok());
  for (const cable_run& run : plan.value().runs) {
    if (run.length.value() <= 2.5) {
      EXPECT_EQ(run.choice.cable->medium, cable_medium::copper_dac)
          << "short run should be DAC at " << run.length.value() << "m";
    }
    if (run.length.value() > 100.0) {
      EXPECT_EQ(run.choice.cable->medium, cable_medium::fiber);
    }
  }
}

TEST(cabling, reserves_tray_capacity) {
  rig r(build_fat_tree(4, 100_gbps));
  cabling_options opt;
  opt.reserve_tray_capacity = true;
  const auto plan = plan_cabling(r.g, r.pl, r.fp, r.cat, opt);
  ASSERT_TRUE(plan.is_ok());
  if (plan.value().runs.size() > plan.value().intra_rack_runs) {
    EXPECT_GT(plan.value().max_tray_fill, 0.0);
  }
}

TEST(cabling, tight_trays_force_detours_or_fail) {
  network_graph g = build_fat_tree(4, 100_gbps);
  floorplan_params p;
  p.rows = 2;
  p.racks_per_row = 12;
  p.row_tray_capacity = square_millimeters{60.0};  // absurdly small
  p.cross_tray_capacity = square_millimeters{60.0};
  floorplan fp(p);
  const auto pl = block_placement(g, fp);
  ASSERT_TRUE(pl.is_ok());
  cabling_options opt;
  opt.reserve_tray_capacity = true;
  const catalog cat = catalog::standard();
  const auto plan = plan_cabling(g, pl.value(), fp, cat, opt);
  // Either it fails loudly or every tray stayed within capacity.
  if (plan.is_ok()) {
    EXPECT_LE(plan.value().max_tray_fill, 1.0 + 1e-9);
  } else {
    EXPECT_EQ(plan.error().code(), status_code::capacity_exceeded);
  }
}

TEST(cabling, plenum_fill_reported_per_rack) {
  rig r(build_fat_tree(4, 100_gbps));
  const auto plan = plan_cabling(r.g, r.pl, r.fp, r.cat, {});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_FALSE(plan.value().plenum_fill.empty());
  for (const auto& [rk, fill] : plan.value().plenum_fill) {
    EXPECT_GE(fill, 0.0);
  }
}

TEST(cabling, plenum_enforcement_fails_overfull_racks) {
  network_graph g = build_fat_tree(6, 100_gbps);
  floorplan_params p;
  p.rows = 2;
  p.racks_per_row = 12;
  p.rack_plenum = square_millimeters{200.0};  // ~5 DAC cables worth
  floorplan fp(p);
  const auto pl = block_placement(g, fp);
  ASSERT_TRUE(pl.is_ok());
  cabling_options opt;
  opt.enforce_plenum = true;
  const catalog cat = catalog::standard();
  const auto plan = plan_cabling(g, pl.value(), fp, cat, opt);
  ASSERT_FALSE(plan.is_ok());
  EXPECT_EQ(plan.error().code(), status_code::capacity_exceeded);
}

TEST(cabling, indirection_forces_fiber_between_racks) {
  rig r(build_fat_tree(4, 100_gbps));
  cabling_options opt;
  opt.indirections_inter_rack = 1;  // a patch-panel fabric
  const auto plan = plan_cabling(r.g, r.pl, r.fp, r.cat, opt);
  ASSERT_TRUE(plan.is_ok());
  for (const cable_run& run : plan.value().runs) {
    if (run.rack_a != run.rack_b) {
      EXPECT_EQ(run.choice.cable->medium, cable_medium::fiber);
      EXPECT_EQ(run.indirections, 1);
    }
  }
}

TEST(bundling, clos_bundles_well) {
  rig r(build_fat_tree(8, 100_gbps), 4, 16);
  const auto plan = plan_cabling(r.g, r.pl, r.fp, r.cat, {});
  ASSERT_TRUE(plan.is_ok());
  const bundling_report rep = analyze_bundling(plan.value(), {});
  EXPECT_GT(rep.inter_rack_cables, 0u);
  // §4.2: Clos allows effective bundling.
  EXPECT_GT(rep.bundleability, 0.5);
  EXPECT_GT(rep.viable_bundles, 0u);
  EXPECT_LT(rep.bundled_install_time, rep.loose_install_time);
  EXPECT_GT(rep.capex_savings.value(), 0.0);
}

TEST(bundling, jellyfish_bundles_poorly_at_same_scale) {
  // §4.2: random wiring spreads cables across many rack pairs, so few
  // pairs reach a pre-buildable bundle size.
  const network_graph ft = build_fat_tree(8, 100_gbps);
  jellyfish_params jp;
  jp.switches = static_cast<int>(ft.node_count());
  jp.radix = 8;
  jp.hosts_per_switch = 4;
  jp.seed = 4;
  rig rf(ft, 4, 16);
  rig rj(build_jellyfish(jp), 4, 16);
  const auto pf = plan_cabling(rf.g, rf.pl, rf.fp, rf.cat, {});
  const auto pj = plan_cabling(rj.g, rj.pl, rj.fp, rj.cat, {});
  ASSERT_TRUE(pf.is_ok() && pj.is_ok());
  const auto bf = analyze_bundling(pf.value(), {});
  const auto bj = analyze_bundling(pj.value(), {});
  EXPECT_LT(bj.bundleability, bf.bundleability);
}

TEST(bundling, sku_quantization) {
  rig r(build_fat_tree(4, 100_gbps));
  const auto plan = plan_cabling(r.g, r.pl, r.fp, r.cat, {});
  ASSERT_TRUE(plan.is_ok());
  bundling_params p;
  p.min_bundle_size = 1;  // everything bundles
  const auto rep = analyze_bundling(plan.value(), p);
  EXPECT_LE(rep.distinct_skus, rep.bundles.size());
  EXPECT_DOUBLE_EQ(rep.bundleability, 1.0);
}

TEST(bundling, empty_plan) {
  cabling_plan plan;
  const auto rep = analyze_bundling(plan, {});
  EXPECT_EQ(rep.inter_rack_cables, 0u);
  EXPECT_DOUBLE_EQ(rep.bundleability, 0.0);
}

}  // namespace
}  // namespace pn
