#include <gtest/gtest.h>

#include "physical/cabling.h"
#include "physical/placement.h"
#include "physical/wireless.h"
#include "topology/generators/clos.h"

namespace pn {
namespace {

using namespace pn::literals;

struct rig {
  explicit rig(floorplan_params fpp, int k = 8)
      : g(build_fat_tree(k, 100_gbps)), fp(fpp) {
    pl.emplace(block_placement(g, fp).value());
    plan = plan_cabling(g, *pl, fp, cat, {}).value();
  }
  network_graph g;
  catalog cat = catalog::standard();
  floorplan fp;
  std::optional<placement> pl;
  cabling_plan plan;
};

floorplan_params base_floor() {
  floorplan_params p;
  p.rows = 3;
  p.racks_per_row = 14;
  return p;
}

TEST(obstacles, remove_rack_positions) {
  floorplan_params p = base_floor();
  const floorplan clean(p);
  // Block out the middle of row 1 (positions ~4..7).
  p.obstacles.push_back(
      {{4.0 * 0.6, 1.0 * 3.0}, {8.0 * 0.6, 2.0 * 3.0}});
  const floorplan blocked(p);
  EXPECT_LT(blocked.rack_count(), clean.rack_count());
  // No rack sits inside the obstacle.
  for (const rack& r : blocked.racks()) {
    EXPECT_FALSE(p.obstacles[0].contains(r.position)) << r.name;
  }
}

TEST(obstacles, sever_row_trays_and_force_detours) {
  floorplan_params p = base_floor();
  floorplan clean(p);
  const auto direct = clean.routed_length(rack_id{2}, rack_id{11});
  ASSERT_TRUE(direct.is_ok());

  // An obstacle in row 0 between the two racks (positions 5..7).
  p.obstacles.push_back({{5.0 * 0.6, 0.0}, {7.6 * 0.6, 1.6}});
  floorplan blocked(p);
  // Racks keep their names; find them by name.
  rack_id a, b;
  for (const rack& r : blocked.racks()) {
    if (r.name == "r00.02") a = r.id;
    if (r.name == "r00.11") b = r.id;
  }
  ASSERT_TRUE(a.valid() && b.valid());
  const auto detour = blocked.routed_length(a, b);
  ASSERT_TRUE(detour.is_ok());
  // The route must swing through another row: strictly longer.
  EXPECT_GT(detour.value().value(), direct.value().value());
}

TEST(obstacles, full_floor_coverage_is_a_bug) {
  floorplan_params p = base_floor();
  p.obstacles.push_back({{-100.0, -100.0}, {100.0, 100.0}});
  EXPECT_THROW(floorplan{p}, std::logic_error);
}

TEST(obstacles, cabling_still_plans_around_them) {
  floorplan_params p = base_floor();
  p.obstacles.push_back({{3.0 * 0.6, 1.0 * 3.0}, {6.0 * 0.6, 2.0 * 3.0}});
  rig r(p, 4);
  EXPECT_EQ(r.plan.runs.size(), r.g.edge_count());
}

TEST(wireless, presets_differ_sensibly) {
  const wireless_params wigig = wireless_params::wigig();
  const wireless_params fso = wireless_params::fso();
  EXPECT_LT(wigig.link_rate.value(), fso.link_rate.value());
  EXPECT_GT(wigig.interference_radius.value(),
            fso.interference_radius.value());
  EXPECT_DOUBLE_EQ(wigig.obstruction_probability, 0.0);
  EXPECT_GT(fso.obstruction_probability, 0.0);
}

TEST(wireless, cannot_replace_fat_tree_cabling) {
  rig r(base_floor());
  const wireless_report rep = assess_wireless_substitution(
      r.fp, r.plan, wireless_params::wigig());
  EXPECT_GT(rep.links_requested, 0u);
  EXPECT_GT(rep.demanded_gbps, 0.0);
  // The paper's claim: nowhere near full replacement.
  EXPECT_LT(rep.capacity_fraction, 0.5);
  // The pipeline is monotone: each filter only removes links.
  EXPECT_LE(rep.links_in_range, rep.links_requested);
  EXPECT_LE(rep.links_with_radios, rep.links_in_range);
  EXPECT_LE(rep.concurrent_beams, rep.links_with_radios);
}

TEST(wireless, narrow_beams_pack_better) {
  rig r(base_floor());
  wireless_params wide = wireless_params::wigig();
  wireless_params narrow = wide;
  narrow.interference_radius = meters{0.2};
  const auto a = assess_wireless_substitution(r.fp, r.plan, wide);
  const auto b = assess_wireless_substitution(r.fp, r.plan, narrow);
  EXPECT_GE(b.concurrent_beams, a.concurrent_beams);
}

TEST(wireless, more_radios_admit_more_links) {
  rig r(base_floor());
  wireless_params few = wireless_params::wigig();
  few.radios_per_rack = 1;
  wireless_params many = wireless_params::wigig();
  many.radios_per_rack = 16;
  const auto a = assess_wireless_substitution(r.fp, r.plan, few);
  const auto b = assess_wireless_substitution(r.fp, r.plan, many);
  EXPECT_LT(a.links_with_radios, b.links_with_radios);
}

TEST(wireless, obstruction_reduces_usable_links) {
  rig r(base_floor());
  // Radios must not be the binding constraint, or freeing them by
  // obstructing early links masks the effect.
  wireless_params clear = wireless_params::fso();
  clear.obstruction_probability = 0.0;
  clear.radios_per_rack = 1000;
  wireless_params blocked = clear;
  blocked.obstruction_probability = 0.9;
  const auto a = assess_wireless_substitution(r.fp, r.plan, clear, 3);
  const auto b = assess_wireless_substitution(r.fp, r.plan, blocked, 3);
  EXPECT_GT(a.links_with_radios, b.links_with_radios);
}

TEST(wireless, deterministic_per_seed) {
  rig r(base_floor());
  const auto a =
      assess_wireless_substitution(r.fp, r.plan, wireless_params::fso(), 9);
  const auto b =
      assess_wireless_substitution(r.fp, r.plan, wireless_params::fso(), 9);
  EXPECT_EQ(a.concurrent_beams, b.concurrent_beams);
  EXPECT_DOUBLE_EQ(a.capacity_fraction, b.capacity_fraction);
}

}  // namespace
}  // namespace pn
