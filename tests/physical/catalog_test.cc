#include "physical/catalog.h"

#include <gtest/gtest.h>

namespace pn {
namespace {

using namespace pn::literals;

class catalog_test : public ::testing::Test {
 protected:
  catalog cat = catalog::standard();
};

TEST_F(catalog_test, short_runs_prefer_copper) {
  const auto c = cat.best_link(100_gbps, 2.0_m);
  ASSERT_TRUE(c.is_ok());
  EXPECT_EQ(c.value().cable->medium, cable_medium::copper_dac);
}

TEST_F(catalog_test, mid_runs_prefer_aec_over_optics) {
  // §3.1: AWS moved to active electrical in-rack at 400G — cheaper and
  // more reliable than optics, thinner than 400G DAC.
  const auto c = cat.best_link(400_gbps, 5.0_m);
  ASSERT_TRUE(c.is_ok());
  EXPECT_EQ(c.value().cable->medium, cable_medium::active_electrical);
  EXPECT_LT(c.value().cable->outside_diameter, millimeters{11.0});
}

TEST_F(catalog_test, long_runs_need_fiber_and_transceivers) {
  const auto c = cat.best_link(400_gbps, 250.0_m);
  ASSERT_TRUE(c.is_ok());
  EXPECT_EQ(c.value().cable->medium, cable_medium::fiber);
  ASSERT_NE(c.value().transceiver, nullptr);
  EXPECT_GT(c.value().total_cost, dollars{2000.0});
}

TEST_F(catalog_test, options_sorted_by_cost) {
  const auto options = cat.link_options(100_gbps, 50.0_m);
  ASSERT_GE(options.size(), 2u);
  for (std::size_t i = 1; i < options.size(); ++i) {
    EXPECT_LE(options[i - 1].total_cost, options[i].total_cost);
  }
}

TEST_F(catalog_test, cost_grows_with_rate) {
  const auto c100 = cat.best_link(100_gbps, 2.0_m);
  const auto c400 = cat.best_link(400_gbps, 2.0_m);
  ASSERT_TRUE(c100.is_ok() && c400.is_ok());
  EXPECT_LT(c100.value().total_cost, c400.value().total_cost);
}

TEST_F(catalog_test, diameter_grows_with_rate_for_dac) {
  // §3.1 / AWS: 6.7mm at 100G -> 11mm at 400G.
  const auto c100 = cat.best_link(100_gbps, 2.0_m);
  const auto c400 = cat.best_link(400_gbps, 2.0_m);
  ASSERT_TRUE(c100.is_ok() && c400.is_ok());
  EXPECT_DOUBLE_EQ(c100.value().diameter.value(), 6.7);
  EXPECT_DOUBLE_EQ(c400.value().diameter.value(), 11.0);
}

TEST_F(catalog_test, unreachable_rate_is_infeasible) {
  EXPECT_FALSE(cat.best_link(gbps{1600.0}, 2.0_m).is_ok());
}

TEST_F(catalog_test, beyond_every_reach_is_infeasible) {
  const auto c = cat.best_link(100_gbps, meters{5000.0});
  ASSERT_FALSE(c.is_ok());
  EXPECT_EQ(c.error().code(), status_code::infeasible);
}

TEST_F(catalog_test, copper_cannot_cross_patch_panels) {
  // With one indirection only fiber remains viable at short lengths.
  const auto c = cat.best_link(100_gbps, 2.0_m, /*indirections=*/1);
  ASSERT_TRUE(c.is_ok());
  EXPECT_EQ(c.value().cable->medium, cable_medium::fiber);
}

TEST_F(catalog_test, indirection_loss_erodes_reach) {
  // Each panel costs 0.75dB; enough panels exhaust any loss budget even
  // at trivial fiber lengths (§3.1 / Telescent).
  const auto zero = cat.link_options(400_gbps, 100.0_m, 0);
  const auto five = cat.link_options(400_gbps, 100.0_m, 5);
  EXPECT_GT(zero.size(), 0u);
  EXPECT_LT(five.size(), zero.size());
}

TEST_F(catalog_test, cheapest_estimate_penalizes_impossible_runs) {
  const dollars feasible = cat.cheapest_cost_estimate(100_gbps, 50.0_m);
  const dollars impossible = cat.cheapest_cost_estimate(100_gbps,
                                                        meters{5000.0});
  EXPECT_GT(impossible, feasible);
  // And the gradient keeps growing with distance.
  EXPECT_GT(cat.cheapest_cost_estimate(100_gbps, meters{6000.0}),
            impossible);
}

TEST(switch_cost_model, scales_with_radix_and_rate) {
  const switch_cost_model m;
  EXPECT_LT(m.cost(32, 100_gbps), m.cost(64, 100_gbps));
  EXPECT_LT(m.cost(32, 100_gbps), m.cost(32, 400_gbps));
  EXPECT_LT(m.power(32, 100_gbps), m.power(32, 400_gbps));
}

TEST(switch_cost_model, rack_units_tiering) {
  EXPECT_EQ(switch_cost_model::rack_units(24), 1);
  EXPECT_EQ(switch_cost_model::rack_units(32), 1);
  EXPECT_EQ(switch_cost_model::rack_units(64), 2);
  EXPECT_EQ(switch_cost_model::rack_units(128), 4);
  EXPECT_EQ(switch_cost_model::rack_units(256), 8);
  EXPECT_EQ(switch_cost_model::rack_units(512), 16);
}

TEST(cable_medium, names) {
  EXPECT_STREQ(cable_medium_name(cable_medium::copper_dac), "DAC");
  EXPECT_STREQ(cable_medium_name(cable_medium::active_electrical), "AEC");
  EXPECT_STREQ(cable_medium_name(cable_medium::active_optical), "AOC");
  EXPECT_STREQ(cable_medium_name(cable_medium::fiber), "fiber");
}

}  // namespace
}  // namespace pn
