#include <gtest/gtest.h>

#include "physical/floorplan.h"
#include "physical/placement.h"
#include "topology/generators/clos.h"
#include "topology/generators/jellyfish.h"

namespace pn {
namespace {

using namespace pn::literals;

floorplan_params small_floor() {
  floorplan_params p;
  p.rows = 2;
  p.racks_per_row = 8;
  return p;
}

TEST(floorplan, builds_grid_with_trays) {
  const floorplan fp(small_floor());
  EXPECT_EQ(fp.rack_count(), 16u);
  // Junction per rack; row trays (7 per row) + cross trays at 0 and 7 and
  // every cross_every=8 -> columns {0, 7}.
  EXPECT_EQ(fp.trays().junction_count(), 16u);
  EXPECT_EQ(fp.trays().segment_count(), 2u * 7u + 2u);
}

TEST(floorplan, rack_naming_and_geometry) {
  const floorplan fp(small_floor());
  const rack& r0 = fp.rack_at(rack_id{0});
  const rack& r1 = fp.rack_at(rack_id{1});
  EXPECT_EQ(r0.name, "r00.00");
  EXPECT_EQ(r1.name, "r00.01");
  EXPECT_DOUBLE_EQ(fp.rack_distance(rack_id{0}, rack_id{1}).value(), 0.6);
}

TEST(floorplan, routed_length_includes_drops_and_slack) {
  const floorplan fp(small_floor());
  const auto len = fp.routed_length(rack_id{0}, rack_id{1});
  ASSERT_TRUE(len.is_ok());
  // (0.6 tray + 2*2.5 drops) * 1.1 slack.
  EXPECT_NEAR(len.value().value(), (0.6 + 5.0) * 1.1, 1e-9);
}

TEST(floorplan, intra_rack_length_is_fixed) {
  const floorplan fp(small_floor());
  const auto len = fp.routed_length(rack_id{3}, rack_id{3});
  ASSERT_TRUE(len.is_ok());
  EXPECT_DOUBLE_EQ(len.value().value(), 2.0);
}

TEST(floorplan, cross_row_routes_go_through_cross_trays) {
  const floorplan fp(small_floor());
  // Rack r0.03 to r1.03: must travel to a cross tray at column 0 or 7.
  const auto p = fp.routed_path_between(rack_id{3}, rack_id{8 + 3},
                                        square_millimeters{0.0});
  ASSERT_TRUE(p.is_ok());
  EXPECT_GT(p.value().route.length.value(), 3.0);  // not a straight hop
}

TEST(floorplan, doorway_limits_conjoined_racks) {
  floorplan_params p = small_floor();
  p.doorway_width = meters{1.3};
  EXPECT_EQ(floorplan(p).max_conjoined_racks(), 2);
  p.doorway_width = meters{0.9};
  EXPECT_EQ(floorplan(p).max_conjoined_racks(), 1);
}

TEST(placement, assign_tracks_capacity) {
  const floorplan fp(small_floor());
  placement pl(4, fp);
  EXPECT_TRUE(pl.assign(node_id{0}, rack_id{0}, 40).is_ok());
  EXPECT_EQ(pl.used_units(rack_id{0}), 40);
  EXPECT_EQ(pl.free_units(rack_id{0}), 2);
  const status s = pl.assign(node_id{1}, rack_id{0}, 4);
  EXPECT_EQ(s.code(), status_code::capacity_exceeded);
  EXPECT_TRUE(pl.assign(node_id{1}, rack_id{0}, 2).is_ok());
  EXPECT_FALSE(pl.complete());
}

TEST(placement, unassign_frees_units) {
  const floorplan fp(small_floor());
  placement pl(2, fp);
  ASSERT_TRUE(pl.assign(node_id{0}, rack_id{1}, 10).is_ok());
  pl.unassign(node_id{0}, 10);
  EXPECT_EQ(pl.used_units(rack_id{1}), 0);
  EXPECT_FALSE(pl.is_assigned(node_id{0}));
  EXPECT_THROW((void)pl.rack_of(node_id{0}), std::logic_error);
}

TEST(placement, double_assign_is_a_bug) {
  const floorplan fp(small_floor());
  placement pl(1, fp);
  ASSERT_TRUE(pl.assign(node_id{0}, rack_id{0}, 1).is_ok());
  EXPECT_THROW((void)pl.assign(node_id{0}, rack_id{1}, 1),
               std::logic_error);
}

TEST(block_placement, keeps_pods_contiguous) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const floorplan fp(small_floor());
  const auto pl = block_placement(g, fp);
  ASSERT_TRUE(pl.is_ok());
  ASSERT_TRUE(pl.value().complete());
  // All ToRs of pod 0 should land within one rack of each other.
  std::vector<rack_id> pod0;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const node_info& n = g.node(node_id{i});
    if (n.block == 0 && n.layer == 0) {
      pod0.push_back(pl.value().rack_of(node_id{i}));
    }
  }
  ASSERT_EQ(pod0.size(), 2u);
  EXPECT_LE(fp.rack_distance(pod0[0], pod0[1]).value(), 0.6 + 1e-9);
}

TEST(block_placement, fails_when_floor_too_small) {
  const network_graph g = build_fat_tree(16, 100_gbps);  // 320 switches
  floorplan_params p = small_floor();
  p.rows = 1;
  p.racks_per_row = 2;
  const auto pl = block_placement(g, floorplan(p));
  ASSERT_FALSE(pl.is_ok());
  EXPECT_EQ(pl.error().code(), status_code::capacity_exceeded);
}

TEST(random_placement, places_everything_with_seeded_spread) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const floorplan fp(small_floor());
  const auto pl = random_placement(g, fp, 5);
  ASSERT_TRUE(pl.is_ok());
  EXPECT_TRUE(pl.value().complete());
  // Different seeds give different layouts.
  const auto pl2 = random_placement(g, fp, 6);
  ASSERT_TRUE(pl2.is_ok());
  int moved = 0;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    if (pl.value().rack_of(node_id{i}) != pl2.value().rack_of(node_id{i})) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(placement_cost, block_beats_random_for_clos) {
  // The point of pre-planned placement: locality keeps links short/cheap.
  const network_graph g = build_fat_tree(8, 100_gbps);
  floorplan_params p = small_floor();
  p.rows = 4;
  p.racks_per_row = 16;
  const floorplan fp(p);
  const catalog cat = catalog::standard();
  const auto block = block_placement(g, fp);
  const auto rand = random_placement(g, fp, 3);
  ASSERT_TRUE(block.is_ok() && rand.is_ok());
  EXPECT_LT(placement_cable_cost(g, fp, cat, block.value()).value(),
            placement_cable_cost(g, fp, cat, rand.value()).value());
}

TEST(anneal_placement, never_worse_than_start) {
  jellyfish_params jp;
  jp.switches = 24;
  jp.radix = 12;
  jp.hosts_per_switch = 6;
  jp.seed = 2;
  const network_graph g = build_jellyfish(jp);
  const floorplan fp(small_floor());
  const catalog cat = catalog::standard();
  auto start = random_placement(g, fp, 1);
  ASSERT_TRUE(start.is_ok());
  const dollars before =
      placement_cable_cost(g, fp, cat, start.value());
  anneal_options opt;
  opt.iterations = 4000;
  const placement improved =
      anneal_placement(g, fp, cat, start.value(), opt);
  const dollars after = placement_cable_cost(g, fp, cat, improved);
  EXPECT_LE(after.value(), before.value() + 1e-6);
  EXPECT_TRUE(improved.complete());
}

TEST(anneal_placement, improves_random_jellyfish_substantially) {
  jellyfish_params jp;
  jp.switches = 32;
  jp.radix = 12;
  jp.hosts_per_switch = 6;
  jp.seed = 9;
  const network_graph g = build_jellyfish(jp);
  floorplan_params p = small_floor();
  p.rows = 4;
  const floorplan fp(p);
  const catalog cat = catalog::standard();
  auto start = random_placement(g, fp, 8);
  ASSERT_TRUE(start.is_ok());
  anneal_options opt;
  opt.iterations = 12000;
  const placement improved =
      anneal_placement(g, fp, cat, start.value(), opt);
  EXPECT_LT(placement_cable_cost(g, fp, cat, improved).value(),
            placement_cable_cost(g, fp, cat, start.value()).value());
}

TEST(node_rack_units, follows_radix) {
  network_graph g;
  g.add_node({"small", node_kind::tor, 24, 100_gbps, 0, 0, 0});
  g.add_node({"big", node_kind::spine, 128, 100_gbps, 0, 1, 0});
  EXPECT_EQ(node_rack_units(g, node_id{0}), 1);
  EXPECT_EQ(node_rack_units(g, node_id{1}), 4);
}

}  // namespace
}  // namespace pn
