#include <gtest/gtest.h>

#include "physical/cabling.h"
#include "physical/conjoin.h"
#include "topology/generators/clos.h"
#include "twin/builder.h"
#include "twin/constraints.h"
#include "twin/schema.h"

namespace pn {
namespace {

using namespace pn::literals;

struct rig {
  explicit rig(floorplan_params fpp) : g(build_fat_tree(8, 100_gbps)),
                                       fp(fpp) {
    pl.emplace(block_placement(g, fp).value());
    plan = plan_cabling(g, *pl, fp, cat, {}).value();
  }
  network_graph g;
  catalog cat = catalog::standard();
  floorplan fp;
  std::optional<placement> pl;
  cabling_plan plan;
};

floorplan_params wide_door() {
  floorplan_params p;
  p.rows = 3;
  p.racks_per_row = 12;
  p.doorway_width = meters{1.3};
  return p;
}

TEST(conjoin, finds_dense_adjacent_pairs) {
  rig r(wide_door());
  const conjoin_report rep = analyze_conjoining(r.fp, r.plan, {});
  // Block placement makes adjacent racks cable-dense: some pairs qualify.
  EXPECT_GT(rep.units.size(), 0u);
  EXPECT_GT(rep.precabled_cables, 0u);
  EXPECT_GT(rep.install_time_saved.value(), 0.0);
  EXPECT_EQ(rep.blocked_by_doorway, 0);
  // Units never overlap.
  std::set<rack_id> seen;
  for (const auto& u : rep.units) {
    EXPECT_TRUE(seen.insert(u.a).second);
    EXPECT_TRUE(seen.insert(u.b).second);
    EXPECT_GE(u.cables, conjoin_params{}.min_shared_cables);
  }
}

TEST(conjoin, narrow_door_blocks_everything) {
  floorplan_params p = wide_door();
  p.doorway_width = meters{0.8};  // single rack only
  rig r(p);
  const conjoin_report rep = analyze_conjoining(r.fp, r.plan, {});
  EXPECT_TRUE(rep.units.empty());
  EXPECT_GT(rep.blocked_by_doorway, 0);
  EXPECT_DOUBLE_EQ(rep.install_time_saved.value(), 0.0);
}

TEST(conjoin, odd_rows_strand_slots) {
  floorplan_params p = wide_door();
  p.racks_per_row = 13;  // odd
  rig r(p);
  const conjoin_report rep = analyze_conjoining(r.fp, r.plan, {});
  if (!rep.units.empty()) {
    EXPECT_GT(rep.stranded_slots, 0);
  }
}

TEST(conjoin, threshold_filters_sparse_pairs) {
  rig r(wide_door());
  conjoin_params strict;
  strict.min_shared_cables = 10000;  // nothing is that dense
  const conjoin_report rep = analyze_conjoining(r.fp, r.plan, strict);
  EXPECT_TRUE(rep.units.empty());
  EXPECT_EQ(rep.blocked_by_doorway, 0);
}

TEST(feeds, group_racks_by_busway_segment) {
  floorplan_params p;
  p.rows = 2;
  p.racks_per_row = 10;
  p.racks_per_feed = 4;
  const floorplan fp(p);
  // 3 feeds per row (4+4+2), 6 total.
  EXPECT_EQ(fp.feed_count(), 6);
  EXPECT_EQ(fp.feed_of(rack_id{0}), 0);
  EXPECT_EQ(fp.feed_of(rack_id{3}), 0);
  EXPECT_EQ(fp.feed_of(rack_id{4}), 1);
  EXPECT_EQ(fp.feed_of(rack_id{9}), 2);
  EXPECT_EQ(fp.feed_of(rack_id{10}), 3);  // second row
  EXPECT_EQ(fp.racks_on_feed(0).size(), 4u);
  EXPECT_EQ(fp.racks_on_feed(2).size(), 2u);
}

TEST(feeds, twin_builder_emits_power_feeds) {
  rig r(wide_door());
  const twin_model m =
      build_network_twin(r.g, *r.pl, r.fp, r.plan, r.cat);
  EXPECT_EQ(m.entities_of_kind("power_feed").size(),
            static_cast<std::size_t>(r.fp.feed_count()));
  // Every rack has exactly one feed.
  for (entity_id rk : m.entities_of_kind("rack")) {
    EXPECT_EQ(m.related_in(rk, "feeds").size(), 1u);
  }
  const auto v = twin_schema::network_schema().validate(m);
  EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v[0].rule + ": " + v[0].detail);
}

TEST(feeds, failure_domain_check_flags_single_feed_groups) {
  // A tiny fabric placed so a whole spine group shares one feed.
  clos_params cp;
  cp.pods = 2;
  cp.tors_per_pod = 2;
  cp.aggs_per_pod = 2;
  cp.spine_groups = 2;
  cp.spines_per_group = 2;
  cp.hosts_per_tor = 2;
  const network_graph g = build_clos(cp);

  floorplan_params fpp;
  fpp.rows = 1;
  fpp.racks_per_row = 8;
  fpp.racks_per_feed = 8;  // the whole row is one feed
  floorplan fp(fpp);
  const auto pl = block_placement(g, fp);
  ASSERT_TRUE(pl.is_ok());
  const catalog cat = catalog::standard();
  const auto plan = plan_cabling(g, pl.value(), fp, cat, {});
  ASSERT_TRUE(plan.is_ok());
  const physical_design d{&g, &pl.value(), &fp, &plan.value(), &cat};
  const auto violations = run_all_checks(d);
  bool saw = false;
  for (const auto& v : violations) {
    if (v.check == "failure_domain") saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(feeds, diverse_feeds_pass_failure_domain_check) {
  clos_params cp;
  cp.pods = 2;
  cp.tors_per_pod = 2;
  cp.aggs_per_pod = 2;
  cp.spine_groups = 2;
  cp.spines_per_group = 2;
  cp.hosts_per_tor = 2;
  const network_graph g = build_clos(cp);

  floorplan_params fpp;
  fpp.rows = 2;
  fpp.racks_per_row = 8;
  fpp.racks_per_feed = 1;  // every rack its own feed
  floorplan fp(fpp);
  // Deliberately feed-diverse placement: one switch per rack.
  placement pl(g.node_count(), fp);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    ASSERT_TRUE(
        pl.assign(node_id{i}, rack_id{i}, node_rack_units(g, node_id{i}))
            .is_ok());
  }
  const catalog cat = catalog::standard();
  const auto plan = plan_cabling(g, pl, fp, cat, {});
  ASSERT_TRUE(plan.is_ok());
  const physical_design d{&g, &pl, &fp, &plan.value(), &cat};
  for (const auto& v : run_all_checks(d)) {
    if (v.check == "failure_domain") {
      ADD_FAILURE() << v.subject << ": " << v.detail;
    }
  }
}

}  // namespace
}  // namespace pn
