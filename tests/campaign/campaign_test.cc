// Lifetime campaigns: the declarative text format must round-trip and
// reject malformed input with line numbers; compilation must produce a
// replayable scenario whose step 0 is the untouched day-1 design; and a
// replay must be byte-identical across delta/full evaluation and across
// an interrupt/resume cycle — the same contract the sweep checkpoint
// tests assert, extended to whole campaigns.
#include "campaign/campaign.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/checkpoint.h"
#include "core/sweep.h"
#include "deploy/scenario.h"
#include "topology/graph.h"

namespace pn {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

// A small campaign touching several event kinds; cheap enough that the
// replay tests stay fast.
constexpr char kSmallCampaign[] =
    "physnet-campaign v1\n"
    "name unit\n"
    "base jellyfish 16 seed 5\n"
    "years 2\n"
    "headroom 6\n"
    "option repair off\n"
    "option strategy block\n"
    "event year 1 grow g1 steps 2 links_per_step 2\n"
    "event year 2 upgrade u1 steps 2 factor 4\n"
    "event year 2 churn c1 steps 3 kills_per_step 1 repair_lag 1\n";

// --- parsing ---------------------------------------------------------

TEST(campaign_parse, serialize_parse_is_a_fixed_point) {
  campaign_spec spec;
  spec.name = "roundtrip";
  spec.family = "jellyfish";
  spec.size = 24;
  spec.seed = 99;
  spec.years = 4;
  spec.headroom = 8;
  spec.repair = true;
  spec.strategy = "block";
  // One event of every kind, with non-default knobs.
  campaign_event ev;
  ev.year = 1, ev.kind = campaign_event_kind::grow, ev.label = "g";
  ev.steps = 3, ev.links_per_step = 5;
  spec.events.push_back(ev);
  ev.year = 2, ev.kind = campaign_event_kind::trunk, ev.label = "t";
  spec.events.push_back(ev);
  ev.year = 2, ev.kind = campaign_event_kind::rewire, ev.label = "r";
  ev.moves_per_step = 4;
  spec.events.push_back(ev);
  ev.year = 3, ev.kind = campaign_event_kind::upgrade, ev.label = "u";
  ev.factor = 2.5;
  spec.events.push_back(ev);
  ev.year = 3, ev.kind = campaign_event_kind::migrate, ev.label = "m";
  spec.events.push_back(ev);
  ev.year = 4, ev.kind = campaign_event_kind::churn, ev.label = "c";
  ev.kills_per_step = 2, ev.repair_lag_steps = 3;
  spec.events.push_back(ev);
  ev.year = 4, ev.kind = campaign_event_kind::decom, ev.label = "d";
  ev.switches = 2;
  spec.events.push_back(ev);

  const std::string text = serialize_campaign(spec);
  auto parsed = parse_campaign(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.error().to_string();
  EXPECT_EQ(serialize_campaign(parsed.value()), text);

  const campaign_spec& p = parsed.value();
  EXPECT_EQ(p.name, "roundtrip");
  EXPECT_EQ(p.size, 24);
  EXPECT_EQ(p.seed, 99u);
  EXPECT_EQ(p.years, 4);
  EXPECT_EQ(p.headroom, 8);
  EXPECT_TRUE(p.repair);
  ASSERT_EQ(p.events.size(), 7u);
  EXPECT_EQ(p.events[3].kind, campaign_event_kind::upgrade);
  EXPECT_DOUBLE_EQ(p.events[3].factor, 2.5);
  EXPECT_EQ(p.events[6].kind, campaign_event_kind::decom);
  EXPECT_EQ(p.events[6].switches, 2);
}

TEST(campaign_parse, tolerates_comments_and_crlf) {
  const std::string text =
      "# a comment\r\n"
      "physnet-campaign v1\r\n"
      "\r\n"
      "base jellyfish 16 seed 1\r\n"
      "# another\r\n"
      "event year 1 grow g steps 1 links_per_step 1\r\n";
  auto parsed = parse_campaign(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().events.size(), 1u);
}

TEST(campaign_parse, errors_name_the_offending_line) {
  struct bad_case {
    const char* text;
    const char* needle;
  };
  const std::vector<bad_case> cases = {
      {"nonsense\n", "line 1"},
      {"physnet-campaign v1\nbase jellyfish 16\n", "line 2"},
      {"physnet-campaign v1\nbase jellyfish 16 seed 1\nyears 0\n",
       "line 3"},
      {"physnet-campaign v1\nbase jellyfish 16 seed 1\nheadroom -1\n",
       "headroom"},
      {"physnet-campaign v1\nbase jellyfish 16 seed 1\n"
       "option repair sometimes\n",
       "on|off"},
      {"physnet-campaign v1\nbase jellyfish 16 seed 1\n"
       "event year 1 shrink s steps 1\n",
       "unknown event kind"},
      {"physnet-campaign v1\nbase jellyfish 16 seed 1\n"
       "event year 1 grow g steps 0\n",
       "bad value"},
      {"physnet-campaign v1\nbase jellyfish 16 seed 1\n"
       "event year 1 grow g bogus 1\n",
       "unknown event key"},
      {"physnet-campaign v1\nbase jellyfish 16 seed 1\nfrobnicate\n",
       "unknown directive"},
      {"physnet-campaign v1\n", "no 'base'"},
      {"", "missing header"},
  };
  for (const bad_case& c : cases) {
    auto parsed = parse_campaign(c.text);
    ASSERT_FALSE(parsed.is_ok()) << "accepted: " << c.text;
    EXPECT_NE(parsed.error().to_string().find(c.needle), std::string::npos)
        << "error for '" << c.text
        << "' was: " << parsed.error().to_string();
  }
}

TEST(campaign_parse, rejects_year_outside_campaign_and_duplicate_labels) {
  auto late = parse_campaign(
      "physnet-campaign v1\nbase jellyfish 16 seed 1\nyears 2\n"
      "event year 3 grow g steps 1\n");
  ASSERT_FALSE(late.is_ok());
  EXPECT_NE(late.error().to_string().find("outside campaign years"),
            std::string::npos);

  auto dup = parse_campaign(
      "physnet-campaign v1\nbase jellyfish 16 seed 1\nyears 2\n"
      "event year 1 grow same steps 1\n"
      "event year 2 churn same steps 1\n");
  ASSERT_FALSE(dup.is_ok());
  EXPECT_NE(dup.error().to_string().find("duplicate event label"),
            std::string::npos);
}

// --- compilation -----------------------------------------------------

TEST(campaign_compile, step_zero_is_a_day1_noop_and_labels_carry_years) {
  auto spec = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(spec.is_ok());
  auto plan = compile_campaign(spec.value());
  ASSERT_TRUE(plan.is_ok()) << plan.error().to_string();

  const deploy_scenario& sc = plan.value().scenario;
  // 1 day-1 step + 2 grow + 2 upgrade + 3 churn.
  ASSERT_EQ(sc.steps.size(), 8u);
  EXPECT_EQ(sc.steps[0].label, "day1");
  EXPECT_TRUE(sc.steps[0].ops.empty());
  EXPECT_EQ(sc.steps[1].label.rfind("y1/g1/", 0), 0u) << sc.steps[1].label;
  EXPECT_EQ(sc.steps[3].label.rfind("y2/u1/", 0), 0u) << sc.steps[3].label;
  EXPECT_EQ(sc.steps[5].label.rfind("y2/c1/", 0), 0u) << sc.steps[5].label;

  // The whole timeline must replay cleanly against the day-1 base.
  network_graph g = plan.value().base;
  for (const scenario_step& st : sc.steps) apply_scenario_step(g, st);
}

TEST(campaign_compile, headroom_reserves_ports_on_every_switch) {
  auto spec = parse_campaign(
      "physnet-campaign v1\nbase jellyfish 16 seed 5\nheadroom 6\n");
  ASSERT_TRUE(spec.is_ok());
  auto plan = compile_campaign(spec.value());
  ASSERT_TRUE(plan.is_ok()) << plan.error().to_string();
  const network_graph& base = plan.value().base;
  for (std::size_t i = 0; i < base.node_count(); ++i) {
    EXPECT_GE(base.free_ports(node_id{i}), 6) << "switch " << i;
  }
}

TEST(campaign_compile, upgrade_relands_every_link_at_factor) {
  auto spec = parse_campaign(
      "physnet-campaign v1\nbase jellyfish 16 seed 5\n"
      "event year 1 upgrade u steps 3 factor 4\n");
  ASSERT_TRUE(spec.is_ok());
  auto plan = compile_campaign(spec.value());
  ASSERT_TRUE(plan.is_ok()) << plan.error().to_string();

  network_graph g = plan.value().base;
  const std::vector<edge_id> before = g.live_edges();
  double cap_before = 0.0;
  for (const edge_id e : before) cap_before += g.edge(e).capacity.value();

  for (const scenario_step& st : plan.value().scenario.steps) {
    apply_scenario_step(g, st);
  }
  const std::vector<edge_id> after = g.live_edges();
  EXPECT_EQ(after.size(), before.size());
  double cap_after = 0.0;
  for (const edge_id e : after) cap_after += g.edge(e).capacity.value();
  EXPECT_DOUBLE_EQ(cap_after, 4.0 * cap_before);
  // kill + re-add per link, no revives.
  EXPECT_EQ(plan.value().ops_killed(), before.size());
  EXPECT_EQ(plan.value().ops_added(), before.size());
  EXPECT_EQ(plan.value().ops_revived(), 0u);
}

TEST(campaign_compile, rejects_unknown_family_and_strategy) {
  auto family = parse_campaign(
      "physnet-campaign v1\nbase moebius 16 seed 1\n");
  ASSERT_TRUE(family.is_ok());  // parse accepts; compile resolves
  EXPECT_FALSE(compile_campaign(family.value()).is_ok());

  auto strategy = parse_campaign(
      "physnet-campaign v1\nbase jellyfish 16 seed 1\n"
      "option strategy psychic\n");
  ASSERT_TRUE(strategy.is_ok());
  EXPECT_FALSE(compile_campaign(strategy.value()).is_ok());
}

TEST(campaign_compile, decom_on_an_all_tor_family_errors_instead_of_crashing) {
  // Every jellyfish switch is host-facing, so there is nothing the
  // decom planner may retire; a campaign file is user input and must
  // get a structured error, not the planner's PN_CHECK abort.
  auto spec = parse_campaign(
      "physnet-campaign v1\nbase jellyfish 16 seed 1\n"
      "event year 1 decom d switches 1 links_per_step 2\n");
  ASSERT_TRUE(spec.is_ok());
  auto plan = compile_campaign(spec.value());
  ASSERT_FALSE(plan.is_ok());
  EXPECT_NE(plan.error().to_string().find("non-host-facing"),
            std::string::npos)
      << plan.error().to_string();
}

TEST(campaign_compile, event_seeds_are_salted_away_from_sweep_points) {
  // Event i must never share a seed with sweep point i of the same
  // campaign: both streams derive from spec.seed.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NE(campaign_event_seed(5, i), sweep_point_seed(5, i)) << i;
    // Deterministic: same inputs, same seed.
    EXPECT_EQ(campaign_event_seed(5, i), campaign_event_seed(5, i));
  }
}

// --- replay ----------------------------------------------------------

TEST(campaign_run, delta_and_full_evaluation_are_byte_identical) {
  auto spec = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(spec.is_ok());
  auto plan = compile_campaign(spec.value());
  ASSERT_TRUE(plan.is_ok()) << plan.error().to_string();

  campaign_run_options delta;
  delta.delta = true;
  campaign_run_options full;
  full.delta = false;

  const sweep_results a = run_campaign(plan.value(), delta);
  const sweep_results b = run_campaign(plan.value(), full);
  ASSERT_EQ(a.reports.size(), plan.value().scenario.steps.size());
  EXPECT_TRUE(a.failures.empty());
  EXPECT_EQ(sweep_to_csv(a), sweep_to_csv(b));
}

TEST(campaign_run, interrupted_replay_resumes_byte_identical) {
  auto spec = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(spec.is_ok());
  auto plan = compile_campaign(spec.value());
  ASSERT_TRUE(plan.is_ok()) << plan.error().to_string();

  campaign_run_options plain;
  const sweep_results whole = run_campaign(plan.value(), plain);
  ASSERT_TRUE(whole.failures.empty());

  const std::string path = temp_path("campaign_resume.ckpt");
  campaign_run_options interrupted;
  interrupted.checkpoint_path = path;
  interrupted.cancel_after_points = 3;
  const sweep_results partial = run_campaign(plan.value(), interrupted);
  EXPECT_TRUE(partial.cancelled);
  EXPECT_EQ(partial.reports.size(), 3u);

  auto cp = load_sweep_checkpoint(path);
  ASSERT_TRUE(cp.is_ok()) << cp.error().to_string();
  campaign_run_options resumed;
  resumed.checkpoint_path = path;
  resumed.resume = &cp.value();
  const sweep_results merged = run_campaign(plan.value(), resumed);
  EXPECT_FALSE(merged.cancelled);
  EXPECT_EQ(merged.resumed_points, 3u);
  EXPECT_EQ(sweep_to_csv(merged), sweep_to_csv(whole));
  std::remove(path.c_str());
}

// --- summary ---------------------------------------------------------

TEST(campaign_summary_t, reduces_day1_and_lifetime_endpoints) {
  auto spec = parse_campaign(kSmallCampaign);
  ASSERT_TRUE(spec.is_ok());
  auto plan = compile_campaign(spec.value());
  ASSERT_TRUE(plan.is_ok()) << plan.error().to_string();

  campaign_run_options ropt;
  const sweep_results res = run_campaign(plan.value(), ropt);
  ASSERT_TRUE(res.failures.empty());

  const campaign_summary s = summarize_campaign(plan.value(), res.reports);
  EXPECT_EQ(s.campaign, "unit");
  EXPECT_EQ(s.family, "jellyfish");
  EXPECT_EQ(s.evaluations, res.reports.size());
  EXPECT_EQ(s.events, 3u);
  EXPECT_DOUBLE_EQ(s.day1_capex_usd, res.reports.front().capex().value());
  EXPECT_DOUBLE_EQ(s.final_capex_usd, res.reports.back().capex().value());
  EXPECT_LE(s.min_bisection_gbps_per_host, s.day1_bisection_gbps_per_host);
  EXPECT_LE(s.min_bisection_gbps_per_host, s.final_bisection_gbps_per_host);
  // The upgrade quadruples link speed: lifetime bisection must exceed
  // day 1's.
  EXPECT_GT(s.final_bisection_gbps_per_host,
            s.day1_bisection_gbps_per_host);

  // Header and row agree on column count.
  const std::string header = campaign_summary_csv_header();
  const std::string row = campaign_summary_csv_row(s);
  const auto commas = [](const std::string& t) {
    return std::count(t.begin(), t.end(), ',');
  };
  EXPECT_EQ(commas(header), commas(row));
}

}  // namespace
}  // namespace pn
