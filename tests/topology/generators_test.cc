// Property tests over every topology family: connectivity, validation,
// expected node/edge counts, degree regularity where the family promises
// it. Parameterized (TEST_P) across families and sizes.
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "topology/generators/clos.h"
#include "topology/generators/dragonfly.h"
#include "topology/generators/flattened_butterfly.h"
#include "topology/generators/jellyfish.h"
#include "topology/generators/jupiter.h"
#include "topology/generators/leaf_spine.h"
#include "topology/generators/slim_fly.h"
#include "topology/generators/vl2.h"
#include "topology/generators/xpander.h"
#include "topology/metrics.h"

namespace pn {
namespace {

using namespace pn::literals;

struct family_case {
  std::string label;
  std::function<network_graph()> build;
  std::size_t expected_switches;
  std::size_t expected_edges;  // 0 = don't check
};

std::vector<family_case> all_families() {
  std::vector<family_case> cases;
  cases.push_back({"fat_tree_k4", [] { return build_fat_tree(4, 100_gbps); },
                   // 4 pods * (2+2) + 4 spines
                   20, 32});
  cases.push_back({"fat_tree_k8", [] { return build_fat_tree(8, 100_gbps); },
                   8 * 8 + 16, 256});
  cases.push_back({"clos_generalized",
                   [] {
                     clos_params p;
                     p.pods = 6;
                     p.tors_per_pod = 4;
                     p.aggs_per_pod = 3;
                     p.spine_groups = 3;
                     p.spines_per_group = 2;
                     p.hosts_per_tor = 10;
                     return build_clos(p);
                   },
                   6 * 7 + 6, 6 * (4 * 3 + 3 * 2)});
  cases.push_back({"leaf_spine",
                   [] {
                     leaf_spine_params p;
                     p.leaves = 12;
                     p.spines = 4;
                     p.hosts_per_leaf = 20;
                     return build_leaf_spine(p);
                   },
                   16, 48});
  cases.push_back({"jellyfish",
                   [] {
                     jellyfish_params p;
                     p.switches = 40;
                     p.radix = 16;
                     p.hosts_per_switch = 8;
                     p.seed = 3;
                     return build_jellyfish(p);
                   },
                   40, 0});
  cases.push_back({"xpander_d8_l5",
                   [] {
                     xpander_params p;
                     p.degree = 8;
                     p.lift_size = 5;
                     p.hosts_per_switch = 6;
                     p.seed = 2;
                     return build_xpander(p);
                   },
                   45, 45 * 8 / 2});
  cases.push_back({"flattened_butterfly_4x4",
                   [] {
                     flattened_butterfly_params p;
                     p.dims = {4, 4};
                     p.hosts_per_switch = 4;
                     return build_flattened_butterfly(p);
                   },
                   16, 16 * 6 / 2});
  cases.push_back({"flattened_butterfly_3d",
                   [] {
                     flattened_butterfly_params p;
                     p.dims = {3, 3, 3};
                     p.hosts_per_switch = 2;
                     return build_flattened_butterfly(p);
                   },
                   27, 27 * 6 / 2});
  cases.push_back({"slim_fly_q5",
                   [] {
                     slim_fly_params p;
                     p.q = 5;
                     p.hosts_per_switch = 4;
                     return build_slim_fly(p).value();
                   },
                   50, 50u * 7u / 2u});
  cases.push_back({"vl2",
                   [] {
                     vl2_params p;
                     p.tors = 20;
                     p.aggs = 6;
                     p.intermediates = 3;
                     return build_vl2(p);
                   },
                   29, 6 * 3 + 20 * 2});
  cases.push_back({"vl2_spread",
                   [] {
                     vl2_params p;
                     p.tors = 20;
                     p.aggs = 6;
                     p.intermediates = 3;
                     p.spread_tor_uplinks = true;
                     return build_vl2(p);
                   },
                   29, 6 * 3 + 20 * 2});
  cases.push_back({"jupiter_fat_tree",
                   [] {
                     jupiter_params p;
                     p.agg_blocks = 4;
                     p.tors_per_block = 4;
                     p.mbs_per_block = 2;
                     p.uplinks_per_mb = 4;
                     p.spine_blocks = 2;
                     p.ocs_count = 4;
                     return build_jupiter(p).graph;
                   },
                   4 * 6 + 2, 4 * 8 + 4 * 8});
  cases.push_back({"jupiter_direct",
                   [] {
                     jupiter_params p;
                     p.agg_blocks = 5;
                     p.tors_per_block = 4;
                     p.mbs_per_block = 2;
                     p.uplinks_per_mb = 4;
                     p.ocs_count = 4;
                     p.mode = jupiter_mode::direct;
                     return build_jupiter(p).graph;
                   },
                   5 * 6, 5 * 8 + 5 * 8 / 2});
  return cases;
}

class generator_properties : public ::testing::TestWithParam<family_case> {};

TEST_P(generator_properties, builds_expected_size) {
  const network_graph g = GetParam().build();
  EXPECT_EQ(g.node_count(), GetParam().expected_switches);
  if (GetParam().expected_edges > 0) {
    EXPECT_EQ(g.edge_count(), GetParam().expected_edges);
  }
}

TEST_P(generator_properties, is_connected) {
  const network_graph g = GetParam().build();
  EXPECT_TRUE(is_connected(g));
}

TEST_P(generator_properties, validates) {
  const network_graph g = GetParam().build();
  EXPECT_EQ(g.validate(), "");
}

TEST_P(generator_properties, no_parallel_duplicate_unless_clos) {
  const network_graph g = GetParam().build();
  // Families built here use single links between pairs except Clos-style
  // fabrics which may stripe multiple; just check adjacency symmetry.
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    for (const auto& adj : g.neighbors(node_id{i})) {
      EXPECT_TRUE(g.has_edge_between(adj.neighbor, node_id{i}));
    }
  }
}

TEST_P(generator_properties, has_hosts) {
  const network_graph g = GetParam().build();
  EXPECT_GT(g.total_hosts(), 0u);
}

TEST_P(generator_properties, named_family) {
  const network_graph g = GetParam().build();
  EXPECT_FALSE(g.family.empty());
}

INSTANTIATE_TEST_SUITE_P(
    families, generator_properties, ::testing::ValuesIn(all_families()),
    [](const ::testing::TestParamInfo<family_case>& info) {
      return info.param.label;
    });

// Family-specific structure.

TEST(jellyfish, is_regular_random_graph) {
  jellyfish_params p;
  p.switches = 50;
  p.radix = 20;
  p.hosts_per_switch = 10;
  p.seed = 7;
  const network_graph g = build_jellyfish(p);
  const int degree = p.radix - p.hosts_per_switch;
  std::size_t at_full_degree = 0;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    EXPECT_LE(g.degree(node_id{i}), degree);
    if (g.degree(node_id{i}) == degree) ++at_full_degree;
  }
  // The fixup phase should leave at most a couple of switches short.
  EXPECT_GE(at_full_degree, g.node_count() - 2);
}

TEST(jellyfish, seeds_give_different_wirings) {
  jellyfish_params p;
  p.switches = 30;
  p.radix = 12;
  p.hosts_per_switch = 6;
  p.seed = 1;
  const network_graph a = build_jellyfish(p);
  p.seed = 2;
  const network_graph b = build_jellyfish(p);
  int differing = 0;
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    for (const auto& adj : a.neighbors(node_id{i})) {
      if (!b.has_edge_between(node_id{i}, adj.neighbor)) ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(jellyfish, incremental_add_rewires_about_half_degree) {
  jellyfish_params p;
  p.switches = 40;
  p.radix = 16;
  p.hosts_per_switch = 8;
  p.seed = 5;
  network_graph g = build_jellyfish(p);
  const std::size_t before = g.node_count();
  const int rewired = jellyfish_add_switch(g, p, 99);
  EXPECT_EQ(g.node_count(), before + 1);
  const int degree = p.radix - p.hosts_per_switch;
  EXPECT_GE(rewired, degree / 2 - 1);
  EXPECT_LE(rewired, degree);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.validate(), "");
}

TEST(xpander, is_d_regular_with_group_structure) {
  xpander_params p;
  p.degree = 6;
  p.lift_size = 8;
  p.hosts_per_switch = 4;
  const network_graph g = build_xpander(p);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    EXPECT_EQ(g.degree(node_id{i}), p.degree);
    // No edges within a group (lift of a simple graph).
    for (const auto& adj : g.neighbors(node_id{i})) {
      EXPECT_NE(g.node(node_id{i}).block, g.node(adj.neighbor).block);
    }
  }
}

TEST(xpander, add_switch_rewires_existing_links) {
  xpander_params p;
  p.degree = 8;
  p.lift_size = 6;
  p.hosts_per_switch = 4;
  network_graph g = build_xpander(p);
  const int rewired = xpander_add_switch(g, p, 0, 42);
  // §4.2: "as many as d/2 links to be rewired"; our splice procedure does
  // one rewire per port filled, up to d.
  EXPECT_GE(rewired, p.degree / 2);
  EXPECT_LE(rewired, p.degree);
  EXPECT_TRUE(is_connected(g));
}

TEST(slim_fly, degree_matches_mms_construction) {
  slim_fly_params p;
  p.q = 13;
  p.hosts_per_switch = 0;
  const auto g = build_slim_fly(p);
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(g.value().node_count(), 2u * 13u * 13u);
  for (std::size_t i = 0; i < g.value().node_count(); ++i) {
    EXPECT_EQ(g.value().degree(node_id{i}), slim_fly_degree(13));
  }
}

TEST(slim_fly, has_diameter_two) {
  slim_fly_params p;
  p.q = 5;
  p.hosts_per_switch = 1;
  const auto g = build_slim_fly(p);
  ASSERT_TRUE(g.is_ok());
  const auto stats = compute_path_length_stats(g.value());
  EXPECT_LE(stats.diameter, 2);
}

TEST(slim_fly, rejects_bad_q) {
  slim_fly_params p;
  p.q = 7;  // prime but 7 % 4 == 3
  EXPECT_FALSE(build_slim_fly(p).is_ok());
  p.q = 9;  // 9 % 4 == 1 but not prime
  EXPECT_FALSE(build_slim_fly(p).is_ok());
}

TEST(fat_tree, supports_full_bisection_structure) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  // Every ToR: k/2 hosts + k/2 uplinks.
  for (node_id t : g.nodes_of_kind(node_kind::tor)) {
    EXPECT_EQ(g.node(t).host_ports, 2);
    EXPECT_EQ(g.degree(t), 2);
  }
  for (node_id s : g.nodes_of_kind(node_kind::spine)) {
    EXPECT_EQ(g.degree(s), 4);  // one per pod
  }
}

TEST(fat_tree, odd_k_rejected) {
  EXPECT_THROW(build_fat_tree(5, 100_gbps), std::logic_error);
}

TEST(jupiter, ocs_striping_is_even) {
  jupiter_params p;
  p.agg_blocks = 6;
  p.mbs_per_block = 4;
  p.uplinks_per_mb = 8;
  p.spine_blocks = 4;
  p.ocs_count = 8;
  const jupiter_fabric f = build_jupiter(p);
  const auto counts = ocs_fiber_counts(f);
  ASSERT_EQ(counts.size(), 8u);
  const std::size_t total = 6u * 4u * 8u;
  for (std::size_t c : counts) {
    EXPECT_EQ(c, total / 8u);
  }
}

TEST(jupiter, direct_mode_consumes_all_uplinks) {
  jupiter_params p;
  p.agg_blocks = 9;  // others=8 divides 32 uplinks
  p.mbs_per_block = 4;
  p.uplinks_per_mb = 8;
  p.mode = jupiter_mode::direct;
  const jupiter_fabric f = build_jupiter(p);
  // Every middle block should have exactly its uplink count used.
  for (node_id mb : f.graph.nodes_of_kind(node_kind::aggregation)) {
    EXPECT_EQ(f.graph.free_ports(mb), 0);
  }
}

TEST(jupiter, direct_mode_handles_remainders) {
  jupiter_params p;
  p.agg_blocks = 6;  // others=5 does not divide 32
  p.mbs_per_block = 4;
  p.uplinks_per_mb = 8;
  p.mode = jupiter_mode::direct;
  const jupiter_fabric f = build_jupiter(p);
  EXPECT_TRUE(is_connected(f.graph));
  EXPECT_EQ(f.graph.validate(), "");
}


TEST(dragonfly, balanced_construction_is_regular) {
  const dragonfly_params p = balanced_dragonfly(2, 9, 100_gbps);
  const auto g = build_dragonfly(p);
  ASSERT_TRUE(g.is_ok());
  // 9 groups x 4 switches; each switch: 3 local + 2 global + 2 hosts.
  EXPECT_EQ(g.value().node_count(), 36u);
  for (std::size_t i = 0; i < g.value().node_count(); ++i) {
    EXPECT_EQ(g.value().degree(node_id{i}), 5);
    EXPECT_EQ(g.value().free_ports(node_id{i}), 0);
  }
  EXPECT_TRUE(is_connected(g.value()));
  EXPECT_EQ(g.value().validate(), "");
}

TEST(dragonfly, diameter_is_small) {
  const auto g = build_dragonfly(balanced_dragonfly(2, 9, 100_gbps));
  ASSERT_TRUE(g.is_ok());
  // local-global-local worst case: <= 3 hops (plus 2 when pair lacks a
  // direct global link at this size; allow 5).
  EXPECT_LE(compute_path_length_stats(g.value()).diameter, 5);
}

TEST(dragonfly, rejects_unstripeable_configs) {
  dragonfly_params p;
  p.groups = 5;              // others = 4
  p.switches_per_group = 3;
  p.global_per_switch = 1;   // 3 globals over 4 peers: odd remainder, odd n
  EXPECT_FALSE(build_dragonfly(p).is_ok());
}

TEST(dragonfly, group_pairs_balanced_within_one) {
  const auto g = build_dragonfly(balanced_dragonfly(3, 8, 100_gbps));
  ASSERT_TRUE(g.is_ok());
  std::map<std::pair<int, int>, int> pair_counts;
  for (edge_id e : g.value().live_edges()) {
    const edge_info& info = g.value().edge(e);
    const int ba = g.value().node(info.a).block;
    const int bb = g.value().node(info.b).block;
    if (ba != bb) {
      ++pair_counts[std::minmax(ba, bb)];
    }
  }
  int mn = 1 << 30, mx = 0;
  for (const auto& [k, c] : pair_counts) {
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  EXPECT_LE(mx - mn, 2);
}

}  // namespace
}  // namespace pn
