#include <gtest/gtest.h>

#include "topology/export.h"
#include "topology/generators/clos.h"
#include "topology/generators/jellyfish.h"
#include "topology/generators/leaf_spine.h"
#include "topology/paths.h"
#include "topology/routing.h"
#include "topology/traffic.h"

namespace pn {
namespace {

using namespace pn::literals;

TEST(vlb, conserves_demand_volume) {
  leaf_spine_params p;
  p.leaves = 4;
  p.spines = 2;
  p.hosts_per_leaf = 4;
  const network_graph g = build_leaf_spine(p);
  traffic_matrix tm(g.host_facing_nodes());
  tm.set_demand(0, 1, 100.0);
  const auto direct = compute_ecmp_loads(g, tm);
  const auto vlb = compute_vlb_loads(g, tm);
  auto total = [](const link_load_report& l) {
    double s = 0.0;
    for (double v : l.loads_ab) s += v;
    for (double v : l.loads_ba) s += v;
    return s;
  };
  // VLB paths are longer (two phases), so total link-Gbps grows, but by a
  // bounded factor (< mean path stretch ~2.5x here).
  EXPECT_GT(total(vlb), total(direct));
  EXPECT_LT(total(vlb), 4.0 * total(direct));
}

TEST(vlb, beats_ecmp_on_adversarial_permutation_in_expander) {
  // Harsh et al. / §4.2: expanders need non-shortest-path routing. A
  // permutation matrix drives all of a pair's demand down few shortest
  // paths; VLB spreads it fabric-wide.
  jellyfish_params p;
  p.switches = 40;
  p.radix = 12;
  p.hosts_per_switch = 6;
  p.seed = 4;
  const network_graph g = build_jellyfish(p);
  const traffic_matrix tm = permutation_traffic(g, 40_gbps, 7);
  const auto direct = ecmp_throughput(g, tm);
  const auto vlb = vlb_throughput(g, tm);
  EXPECT_GT(vlb.alpha, direct.alpha);
}

TEST(vlb, loses_to_ecmp_on_uniform_traffic) {
  // Uniform all-to-all is ECMP's best case: bouncing doubles path length
  // for no balance gain.
  const network_graph g = build_fat_tree(4, 100_gbps);
  const traffic_matrix tm = uniform_traffic(g, 25_gbps);
  EXPECT_LT(vlb_throughput(g, tm).alpha, ecmp_throughput(g, tm).alpha);
}

TEST(vlb, best_routing_picks_the_winner) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const traffic_matrix uni = uniform_traffic(g, 25_gbps);
  EXPECT_DOUBLE_EQ(best_routing_throughput(g, uni).alpha,
                   ecmp_throughput(g, uni).alpha);
}

network_graph diamond() {
  // s - a - t and s - b - t, plus a direct s - t link.
  network_graph g;
  for (int i = 0; i < 4; ++i) {
    g.add_node({"n" + std::to_string(i), node_kind::expander, 8, 100_gbps,
                1, 0, i});
  }
  g.add_edge(node_id{0}, node_id{1}, 100_gbps);  // s-a
  g.add_edge(node_id{1}, node_id{3}, 100_gbps);  // a-t
  g.add_edge(node_id{0}, node_id{2}, 100_gbps);  // s-b
  g.add_edge(node_id{2}, node_id{3}, 100_gbps);  // b-t
  g.add_edge(node_id{0}, node_id{3}, 100_gbps);  // s-t
  return g;
}

TEST(k_shortest_paths, enumerates_in_length_order) {
  const network_graph g = diamond();
  const auto paths = k_shortest_paths(g, node_id{0}, node_id{3}, 5);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0].size(), 2u);  // direct
  EXPECT_EQ(paths[1].size(), 3u);  // via a or b
  EXPECT_EQ(paths[2].size(), 3u);
  EXPECT_NE(paths[1][1], paths[2][1]);  // distinct intermediates
  for (const auto& p : paths) {
    EXPECT_EQ(p.front(), node_id{0});
    EXPECT_EQ(p.back(), node_id{3});
  }
}

TEST(k_shortest_paths, k_limits_output) {
  const network_graph g = diamond();
  EXPECT_EQ(k_shortest_paths(g, node_id{0}, node_id{3}, 2).size(), 2u);
  EXPECT_EQ(k_shortest_paths(g, node_id{0}, node_id{3}, 1).size(), 1u);
}

TEST(k_shortest_paths, unreachable_returns_empty) {
  network_graph g = diamond();
  g.add_node({"island", node_kind::expander, 4, 100_gbps, 1, 0, 9});
  EXPECT_TRUE(k_shortest_paths(g, node_id{0}, node_id{4}, 3).empty());
}

TEST(k_shortest_paths, leaf_spine_has_spine_many_paths) {
  leaf_spine_params p;
  p.leaves = 4;
  p.spines = 3;
  p.hosts_per_leaf = 2;
  const network_graph g = build_leaf_spine(p);
  const auto paths = k_shortest_paths(g, node_id{0}, node_id{1}, 10);
  // 3 two-hop paths via spines, then four-hop ones.
  ASSERT_GE(paths.size(), 3u);
  EXPECT_EQ(paths[0].size(), 3u);
  EXPECT_EQ(paths[2].size(), 3u);
  if (paths.size() > 3) {
    EXPECT_GT(paths[3].size(), 3u);
  }
}

TEST(edge_connectivity, diamond_cut) {
  const network_graph g = diamond();
  EXPECT_EQ(edge_connectivity(g, node_id{0}, node_id{3}), 3);
  EXPECT_EQ(edge_connectivity(g, node_id{1}, node_id{2}), 2);
}

TEST(edge_connectivity, equals_degree_on_regular_expander) {
  jellyfish_params p;
  p.switches = 24;
  p.radix = 10;
  p.hosts_per_switch = 4;
  p.seed = 6;
  const network_graph g = build_jellyfish(p);
  // A well-mixed random regular graph is maximally edge-connected: the
  // min cut between any pair is the degree.
  const int conn = sampled_min_edge_connectivity(g, 16, 3);
  EXPECT_EQ(conn, 6);
}

TEST(edge_connectivity, respects_cap) {
  const network_graph g = diamond();
  EXPECT_EQ(edge_connectivity(g, node_id{0}, node_id{3}, 2), 2);
}

TEST(dot_export, contains_nodes_and_edges) {
  const network_graph g = diamond();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph"), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"n0\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n3"), std::string::npos);
}

TEST(dot_export, merges_parallel_edges) {
  network_graph g;
  g.add_node({"a", node_kind::tor, 8, 100_gbps, 0, 0, 0});
  g.add_node({"b", node_kind::tor, 8, 100_gbps, 0, 0, 0});
  g.add_edge(node_id{0}, node_id{1}, 100_gbps);
  g.add_edge(node_id{0}, node_id{1}, 100_gbps);
  const std::string merged = to_dot(g);
  EXPECT_NE(merged.find("x2"), std::string::npos);
  dot_options opt;
  opt.merge_parallel = false;
  opt.label_capacity = true;
  const std::string full = to_dot(g, opt);
  EXPECT_NE(full.find("100G"), std::string::npos);
}

}  // namespace
}  // namespace pn
