#include "topology/graph.h"

#include <gtest/gtest.h>

namespace pn {
namespace {

using namespace pn::literals;

network_graph triangle() {
  network_graph g;
  for (int i = 0; i < 3; ++i) {
    g.add_node({"n" + std::to_string(i), node_kind::expander, 8, 100_gbps, 2,
                0, i});
  }
  g.add_edge(node_id{0}, node_id{1}, 100_gbps);
  g.add_edge(node_id{1}, node_id{2}, 100_gbps);
  g.add_edge(node_id{2}, node_id{0}, 100_gbps);
  return g;
}

TEST(network_graph, basic_accounting) {
  const network_graph g = triangle();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(node_id{0}), 2);
  EXPECT_EQ(g.free_ports(node_id{0}), 8 - 2 - 2);
  EXPECT_EQ(g.total_hosts(), 6u);
  EXPECT_TRUE(g.validate().empty());
}

TEST(network_graph, multigraph_parallel_edges) {
  network_graph g;
  g.add_node({"a", node_kind::tor, 8, 100_gbps, 0, 0, 0});
  g.add_node({"b", node_kind::tor, 8, 100_gbps, 0, 0, 0});
  g.add_edge(node_id{0}, node_id{1}, 100_gbps);
  g.add_edge(node_id{0}, node_id{1}, 100_gbps);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(node_id{0}), 2);
  EXPECT_TRUE(g.has_edge_between(node_id{0}, node_id{1}));
}

TEST(network_graph, remove_edge_updates_adjacency) {
  network_graph g = triangle();
  g.remove_edge(edge_id{0});  // 0-1
  EXPECT_FALSE(g.edge_alive(edge_id{0}));
  EXPECT_EQ(g.degree(node_id{0}), 1);
  EXPECT_EQ(g.degree(node_id{1}), 1);
  EXPECT_FALSE(g.has_edge_between(node_id{0}, node_id{1}));
  EXPECT_EQ(g.live_edges().size(), 2u);
  // Double removal is a programming error.
  EXPECT_THROW(g.remove_edge(edge_id{0}), std::logic_error);
}

TEST(network_graph, removed_ports_are_freed) {
  network_graph g = triangle();
  const int before = g.free_ports(node_id{0});
  g.remove_edge(edge_id{0});
  EXPECT_EQ(g.free_ports(node_id{0}), before + 1);
}

TEST(network_graph, self_loop_rejected) {
  network_graph g;
  g.add_node({"a", node_kind::tor, 4, 100_gbps, 0, 0, 0});
  EXPECT_THROW(g.add_edge(node_id{0}, node_id{0}, 100_gbps),
               std::logic_error);
}

TEST(network_graph, validate_detects_radix_overflow) {
  network_graph g;
  g.add_node({"a", node_kind::tor, 2, 100_gbps, 1, 0, 0});
  g.add_node({"b", node_kind::tor, 8, 100_gbps, 0, 0, 0});
  g.add_edge(node_id{0}, node_id{1}, 100_gbps);
  EXPECT_TRUE(g.validate().empty());
  g.add_edge(node_id{0}, node_id{1}, 100_gbps);  // a now over radix
  EXPECT_FALSE(g.validate().empty());
}

TEST(network_graph, kind_filters) {
  network_graph g;
  g.add_node({"t", node_kind::tor, 8, 100_gbps, 4, 0, 0});
  g.add_node({"s", node_kind::spine, 8, 100_gbps, 0, 1, 0});
  g.add_node({"x", node_kind::expander, 8, 100_gbps, 4, 0, 0});
  EXPECT_EQ(g.nodes_of_kind(node_kind::tor).size(), 1u);
  EXPECT_EQ(g.nodes_of_kind(node_kind::spine).size(), 1u);
  // host_facing covers ToR + expander (both have host ports).
  EXPECT_EQ(g.host_facing_nodes().size(), 2u);
}

TEST(network_graph, node_kind_names) {
  EXPECT_STREQ(node_kind_name(node_kind::tor), "tor");
  EXPECT_STREQ(node_kind_name(node_kind::aggregation), "aggregation");
  EXPECT_STREQ(node_kind_name(node_kind::spine), "spine");
  EXPECT_STREQ(node_kind_name(node_kind::expander), "expander");
}

TEST(network_graph, invalid_node_params_rejected) {
  network_graph g;
  EXPECT_THROW(g.add_node({"bad", node_kind::tor, 0, 100_gbps, 0, 0, 0}),
               std::logic_error);
  EXPECT_THROW(g.add_node({"bad", node_kind::tor, 4, 100_gbps, 5, 0, 0}),
               std::logic_error);
}

}  // namespace
}  // namespace pn
