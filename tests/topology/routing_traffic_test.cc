#include <gtest/gtest.h>

#include <algorithm>

#include "topology/generators/clos.h"
#include "topology/generators/leaf_spine.h"
#include "topology/routing.h"
#include "topology/traffic.h"

namespace pn {
namespace {

using namespace pn::literals;

network_graph two_tors_one_spine() {
  network_graph g;
  g.add_node({"t0", node_kind::tor, 8, 100_gbps, 4, 0, 0});
  g.add_node({"t1", node_kind::tor, 8, 100_gbps, 4, 0, 1});
  g.add_node({"s", node_kind::spine, 8, 100_gbps, 0, 1, 2});
  g.add_edge(node_id{0}, node_id{2}, 100_gbps);
  g.add_edge(node_id{1}, node_id{2}, 100_gbps);
  return g;
}

TEST(traffic, uniform_sums_to_per_host_rate) {
  const network_graph g = two_tors_one_spine();
  const traffic_matrix tm = uniform_traffic(g, 10_gbps);
  // 8 hosts, each sourcing 10G -> 80G total.
  EXPECT_NEAR(tm.total_demand(), 80.0, 1e-9);
  EXPECT_NEAR(tm.demand(0, 1), 40.0, 1e-9);
  EXPECT_DOUBLE_EQ(tm.demand(0, 0), 0.0);
}

TEST(traffic, permutation_is_a_derangement) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const traffic_matrix tm = permutation_traffic(g, 5_gbps, 42);
  const std::size_t n = tm.size();
  for (std::size_t s = 0; s < n; ++s) {
    EXPECT_DOUBLE_EQ(tm.demand(s, s), 0.0);
    std::size_t targets = 0;
    for (std::size_t t = 0; t < n; ++t) {
      if (tm.demand(s, t) > 0) ++targets;
    }
    EXPECT_EQ(targets, 1u);
  }
}

TEST(traffic, skewed_concentrates_on_popular_ranks) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const traffic_matrix tm = skewed_traffic(g, 5_gbps, 1.5, 7);
  // Per-destination totals should be highly unequal.
  std::vector<double> in(tm.size(), 0.0);
  for (std::size_t s = 0; s < tm.size(); ++s) {
    for (std::size_t t = 0; t < tm.size(); ++t) {
      in[t] += tm.demand(s, t);
    }
  }
  const auto [mn, mx] = std::minmax_element(in.begin(), in.end());
  EXPECT_GT(*mx, 4.0 * *mn);
}

TEST(traffic, hotspot_share_is_respected) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const traffic_matrix tm = hotspot_traffic(g, 5_gbps, 0.25, 0.8, 3);
  // ~25% of endpoints should receive ~80% of bytes.
  std::vector<double> in(tm.size(), 0.0);
  double total = 0.0;
  for (std::size_t s = 0; s < tm.size(); ++s) {
    for (std::size_t t = 0; t < tm.size(); ++t) {
      in[t] += tm.demand(s, t);
      total += tm.demand(s, t);
    }
  }
  std::sort(in.rbegin(), in.rend());
  double hot = 0.0;
  for (std::size_t i = 0; i < tm.size() / 4; ++i) hot += in[i];
  EXPECT_NEAR(hot / total, 0.8, 0.05);
}

TEST(traffic, scale) {
  const network_graph g = two_tors_one_spine();
  traffic_matrix tm = uniform_traffic(g, 10_gbps);
  tm.scale(0.5);
  EXPECT_NEAR(tm.total_demand(), 40.0, 1e-9);
}

TEST(ecmp, loads_on_simple_relay) {
  const network_graph g = two_tors_one_spine();
  traffic_matrix tm(g.host_facing_nodes());
  tm.set_demand(0, 1, 60.0);  // t0 -> t1 via s
  const auto loads = compute_ecmp_loads(g, tm);
  // Edge 0 is t0-s (a=t0), edge 1 is t1-s (a=t1).
  EXPECT_DOUBLE_EQ(loads.loads_ab[0], 60.0);  // t0 -> s
  EXPECT_DOUBLE_EQ(loads.loads_ba[1], 60.0);  // s -> t1
  EXPECT_DOUBLE_EQ(loads.loads_ba[0], 0.0);
  EXPECT_DOUBLE_EQ(loads.max_load, 60.0);
}

TEST(ecmp, splits_over_equal_paths) {
  // Two spines between two leaves: flow splits 50/50.
  leaf_spine_params p;
  p.leaves = 2;
  p.spines = 2;
  p.hosts_per_leaf = 4;
  const network_graph g = build_leaf_spine(p);
  traffic_matrix tm(g.host_facing_nodes());
  tm.set_demand(0, 1, 80.0);
  const auto loads = compute_ecmp_loads(g, tm);
  double nonzero = 0;
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const double l = loads.loads_ab[e] + loads.loads_ba[e];
    if (l > 0) {
      EXPECT_DOUBLE_EQ(l, 40.0);
      ++nonzero;
    }
  }
  EXPECT_DOUBLE_EQ(nonzero, 4.0);  // leaf0->s0, leaf0->s1, s0->leaf1, s1->leaf1
}

TEST(ecmp, throughput_alpha_of_relay) {
  const network_graph g = two_tors_one_spine();
  traffic_matrix tm(g.host_facing_nodes());
  tm.set_demand(0, 1, 50.0);
  const auto t = ecmp_throughput(g, tm);
  // 50G over a 100G path: alpha 2, max util 0.5.
  EXPECT_DOUBLE_EQ(t.alpha, 2.0);
  EXPECT_DOUBLE_EQ(t.max_utilization, 0.5);
}

TEST(ecmp, fat_tree_admits_full_uniform_load) {
  // A non-blocking fat-tree should carry uniform all-to-all at line rate:
  // per-host 100G with k/2=2 hosts per 100G ToR uplink pair -> alpha >= 1.
  const network_graph g = build_fat_tree(4, 100_gbps);
  const traffic_matrix tm = uniform_traffic(g, 50_gbps);
  const auto t = ecmp_throughput(g, tm);
  EXPECT_GE(t.alpha, 1.0);
}

TEST(ecmp, empty_matrix_gives_zero_alpha) {
  const network_graph g = two_tors_one_spine();
  traffic_matrix tm(g.host_facing_nodes());
  const auto t = ecmp_throughput(g, tm);
  EXPECT_DOUBLE_EQ(t.alpha, 0.0);
  EXPECT_DOUBLE_EQ(t.max_utilization, 0.0);
}

TEST(ecmp, path_count_on_leaf_spine) {
  leaf_spine_params p;
  p.leaves = 4;
  p.spines = 3;
  p.hosts_per_leaf = 4;
  const network_graph g = build_leaf_spine(p);
  // Every leaf pair has exactly `spines` shortest paths.
  EXPECT_DOUBLE_EQ(mean_ecmp_path_count(g), 3.0);
}

}  // namespace
}  // namespace pn
