// CSR snapshot + distance cache: structural correctness of the flattened
// arrays, epoch bumping on every mutation, and cache invalidation when
// the graph changes underneath a warmed cache.
#include "topology/csr.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/distance_cache.h"
#include "topology/generators/clos.h"
#include "topology/generators/jellyfish.h"
#include "topology/graph.h"
#include "topology/metrics.h"

namespace pn {
namespace {

using namespace pn::literals;

network_graph square_with_tail() {
  network_graph g;
  for (int i = 0; i < 5; ++i) {
    g.add_node({"n" + std::to_string(i), node_kind::tor, 16, 100_gbps, 4, 0,
                i});
  }
  g.add_edge(node_id{0}, node_id{1}, 100_gbps);  // e0
  g.add_edge(node_id{1}, node_id{2}, 100_gbps);  // e1
  g.add_edge(node_id{2}, node_id{3}, 100_gbps);  // e2
  g.add_edge(node_id{3}, node_id{0}, 100_gbps);  // e3
  g.add_edge(node_id{3}, node_id{4}, 100_gbps);  // e4 (tail)
  return g;
}

TEST(csr_graph, mirrors_adjacency_lists_in_order) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const csr_graph csr = csr_graph::build(g);

  ASSERT_EQ(csr.num_nodes, g.node_count());
  ASSERT_EQ(csr.row_offsets.size(), g.node_count() + 1);
  EXPECT_EQ(csr.epoch, g.epoch());
  EXPECT_EQ(csr.adjacency.size(), 2 * g.live_edges().size());

  for (std::size_t u = 0; u < g.node_count(); ++u) {
    const auto& entries = g.neighbors(node_id{u});
    const auto ui = static_cast<std::uint32_t>(u);
    ASSERT_EQ(csr.degree(ui), entries.size());
    const auto nbrs = csr.neighbors(ui);
    for (std::size_t j = 0; j < entries.size(); ++j) {
      const std::uint32_t k = csr.row_offsets[u] +
                              static_cast<std::uint32_t>(j);
      // Same neighbor, same edge, same position.
      EXPECT_EQ(nbrs[j], entries[j].neighbor.index());
      EXPECT_EQ(csr.arc_edge[k], entries[j].edge.index());
      const edge_info& info = g.edge(entries[j].edge);
      EXPECT_EQ(csr.arc_forward[k] != 0, info.a == node_id{u});
      EXPECT_EQ(csr.edge_capacity[csr.arc_edge[k]], info.capacity.value());
    }
  }
}

TEST(csr_graph, excludes_dead_edges) {
  network_graph g = square_with_tail();
  g.remove_edge(edge_id{1});  // 1-2
  const csr_graph csr = csr_graph::build(g);

  EXPECT_EQ(csr.live_edge_count(), 4u);
  EXPECT_EQ(csr.adjacency.size(), 8u);
  EXPECT_TRUE(std::find(csr.arc_edge.begin(), csr.arc_edge.end(), 1u) ==
              csr.arc_edge.end());
  // live_edge_ids is ascending and matches the graph's live set.
  const std::vector<std::uint32_t> expect_live = {0, 2, 3, 4};
  EXPECT_EQ(csr.live_edge_ids, expect_live);
  EXPECT_TRUE(std::is_sorted(csr.live_edge_ids.begin(),
                             csr.live_edge_ids.end()));
}

TEST(csr_graph, epoch_bumps_on_every_mutation) {
  network_graph g;
  const std::uint64_t e0 = g.epoch();
  g.add_node({"a", node_kind::tor, 8, 100_gbps, 0, 0, 0});
  EXPECT_GT(g.epoch(), e0);
  const std::uint64_t e1 = g.epoch();
  g.add_node({"b", node_kind::tor, 8, 100_gbps, 0, 0, 0});
  EXPECT_GT(g.epoch(), e1);
  const std::uint64_t e2 = g.epoch();
  const edge_id e = g.add_edge(node_id{0}, node_id{1}, 100_gbps);
  EXPECT_GT(g.epoch(), e2);
  const std::uint64_t e3 = g.epoch();
  g.remove_edge(e);
  EXPECT_GT(g.epoch(), e3);
}

TEST(csr_graph, stale_detects_mutation) {
  network_graph g = square_with_tail();
  const csr_graph csr = csr_graph::build(g);
  EXPECT_FALSE(csr.stale(g));
  g.remove_edge(edge_id{4});
  EXPECT_TRUE(csr.stale(g));
}

TEST(bfs_workspace, matches_reference_bfs) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const csr_graph csr = csr_graph::build(g);
  bfs_workspace ws;
  std::vector<int> dist;
  for (std::size_t s = 0; s < g.node_count(); ++s) {
    ws.distances(csr, static_cast<std::uint32_t>(s), dist);
    EXPECT_EQ(dist, bfs_distances(g, node_id{s})) << "source " << s;
  }
}

TEST(bfs_workspace, masked_distances_skip_blocked_nodes) {
  const network_graph g = square_with_tail();
  const csr_graph csr = csr_graph::build(g);
  bfs_workspace ws;
  std::vector<int> dist;
  std::vector<std::uint8_t> blocked(g.node_count(), 0);
  blocked[3] = 1;  // node 4 hangs off node 3: blocking 3 strands it
  ws.distances_masked(csr, 0, blocked, dist);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], -1);
  EXPECT_EQ(dist[4], -1);

  // A blocked source yields an all-unreachable row.
  ws.distances_masked(csr, 3, blocked, dist);
  EXPECT_TRUE(std::all_of(dist.begin(), dist.end(),
                          [](int d) { return d == -1; }));
}

TEST(distance_cache, row_is_memoized_until_mutation) {
  network_graph g = square_with_tail();
  distance_cache cache(g);

  const std::vector<int> first = cache.row(node_id{0});
  EXPECT_EQ(cache.misses(), 1u);
  (void)cache.row(node_id{0});
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first[4], 2);  // 0 -> 3 -> 4

  // Satellite check: remove_edge bumps the epoch and invalidates every
  // cached row — the next read reflects the mutated graph.
  g.remove_edge(edge_id{3});  // cut 3-0
  EXPECT_EQ(cache.rows_cached(), 1u);  // stale row still sitting there
  const std::vector<int>& after = cache.row(node_id{0});
  EXPECT_EQ(cache.misses(), 2u);  // recomputed, not served stale
  EXPECT_EQ(after[4], 4);         // now 0 -> 1 -> 2 -> 3 -> 4
  EXPECT_EQ(cache.rows_cached(), 1u);
  EXPECT_EQ(cache.csr().epoch, g.epoch());
}

TEST(distance_cache, warm_all_thread_counts_agree) {
  jellyfish_params p;
  p.switches = 90;  // > 64 forces multiple multi-source BFS batches
  p.radix = 8;
  p.hosts_per_switch = 4;
  p.seed = 11;
  const network_graph g = build_jellyfish(p);
  std::vector<node_id> all;
  for (std::size_t i = 0; i < g.node_count(); ++i) all.push_back(node_id{i});

  distance_cache serial(g);
  serial.warm_all(all, 1);
  distance_cache threaded(g);
  threaded.warm_all(all, 4);
  EXPECT_EQ(serial.rows_cached(), g.node_count());
  EXPECT_EQ(threaded.rows_cached(), g.node_count());
  for (node_id s : all) {
    EXPECT_EQ(serial.row(s), threaded.row(s)) << "source " << s.index();
    EXPECT_EQ(serial.row(s), bfs_distances(g, s)) << "source " << s.index();
  }
}

}  // namespace
}  // namespace pn
