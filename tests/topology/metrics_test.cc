#include "topology/metrics.h"

#include <gtest/gtest.h>

#include "topology/generators/clos.h"
#include "topology/generators/jellyfish.h"
#include "topology/generators/leaf_spine.h"

namespace pn {
namespace {

using namespace pn::literals;

network_graph path3() {
  network_graph g;
  for (int i = 0; i < 3; ++i) {
    g.add_node({"n" + std::to_string(i), node_kind::expander, 8, 100_gbps, 2,
                0, i});
  }
  g.add_edge(node_id{0}, node_id{1}, 100_gbps);
  g.add_edge(node_id{1}, node_id{2}, 100_gbps);
  return g;
}

TEST(bfs, distances_on_path) {
  const network_graph g = path3();
  const auto d = bfs_distances(g, node_id{0});
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2}));
}

TEST(bfs, unreachable_is_minus_one) {
  network_graph g = path3();
  g.add_node({"island", node_kind::expander, 8, 100_gbps, 2, 0, 9});
  const auto d = bfs_distances(g, node_id{0});
  EXPECT_EQ(d[3], -1);
  EXPECT_FALSE(is_connected(g));
}

TEST(path_length_stats, path_graph) {
  const network_graph g = path3();
  const auto s = compute_path_length_stats(g);
  // Pairs (ordered): 0-1:1, 0-2:2, 1-0:1, 1-2:1, 2-0:2, 2-1:1 -> mean 8/6.
  EXPECT_NEAR(s.mean, 8.0 / 6.0, 1e-12);
  EXPECT_EQ(s.diameter, 2);
  ASSERT_EQ(s.hop_histogram.size(), 3u);
  EXPECT_NEAR(s.hop_histogram[1], 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(s.hop_histogram[2], 2.0 / 6.0, 1e-12);
}

TEST(path_length_stats, fat_tree_inter_pod_is_four_hops) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const auto s = compute_path_length_stats(g);
  EXPECT_EQ(s.diameter, 4);  // tor-agg-spine-agg-tor
  EXPECT_GT(s.mean, 2.0);
  EXPECT_LE(s.mean, 4.0);
}

TEST(path_length_stats, jellyfish_beats_fat_tree_on_mean_path) {
  // The Jellyfish paper's headline: shorter paths at equal gear.
  const network_graph ft = build_fat_tree(8, 100_gbps);
  jellyfish_params p;
  p.switches = static_cast<int>(ft.node_count());
  p.radix = 8;
  p.hosts_per_switch = 3;  // degree 5, host count close to fat-tree's 128
  p.seed = 11;
  const network_graph jf = build_jellyfish(p);
  EXPECT_LT(compute_path_length_stats(jf).mean,
            compute_path_length_stats(ft).mean);
}

TEST(spectral, complete_graph_is_a_great_expander) {
  network_graph g;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    g.add_node({"n" + std::to_string(i), node_kind::expander, 16, 100_gbps,
                2, 0, i});
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      g.add_edge(node_id{static_cast<std::size_t>(i)},
                 node_id{static_cast<std::size_t>(j)}, 100_gbps);
    }
  }
  // K_n has lambda2 = 1/(n-1) for the random-walk matrix.
  EXPECT_NEAR(spectral_lambda2(g), 1.0 / (n - 1), 0.02);
}

TEST(spectral, path_graph_is_a_poor_expander) {
  network_graph g;
  const int n = 16;
  for (int i = 0; i < n; ++i) {
    g.add_node({"n" + std::to_string(i), node_kind::expander, 4, 100_gbps, 1,
                0, i});
  }
  for (int i = 0; i + 1 < n; ++i) {
    g.add_edge(node_id{static_cast<std::size_t>(i)},
               node_id{static_cast<std::size_t>(i + 1)}, 100_gbps);
  }
  EXPECT_GT(spectral_lambda2(g), 0.9);
}

TEST(spectral, jellyfish_expands_better_than_leaf_spine_leaves) {
  jellyfish_params p;
  p.switches = 64;
  p.radix = 12;
  p.hosts_per_switch = 4;
  p.seed = 3;
  const double jf = spectral_lambda2(build_jellyfish(p));
  // Random regular graphs are near-Ramanujan: lambda2 ~ 2*sqrt(d-1)/d
  // (~0.66 at degree 8). Anything close to that is a strong expander.
  EXPECT_LT(jf, 0.72);
}

TEST(spectral, disconnected_returns_one) {
  network_graph g = path3();
  g.add_node({"island", node_kind::expander, 8, 100_gbps, 2, 0, 9});
  EXPECT_DOUBLE_EQ(spectral_lambda2(g), 1.0);
}

TEST(bisection, path_graph_bottleneck) {
  const network_graph g = path3();
  const auto b = estimate_bisection(g, 1);
  // Cutting a 3-path in half crosses exactly one 100G link.
  EXPECT_DOUBLE_EQ(b.cut_gbps, 100.0);
}

TEST(bisection, fat_tree_scales_with_size) {
  const auto small = estimate_bisection(build_fat_tree(4, 100_gbps), 1);
  const auto large = estimate_bisection(build_fat_tree(8, 100_gbps), 1);
  EXPECT_GT(large.cut_gbps, small.cut_gbps);
  EXPECT_GT(small.per_host_gbps, 0.0);
}

}  // namespace
}  // namespace pn
