// Sweep robustness coverage: stage-level fault injection, cooperative
// cancellation, per-point deadlines, and checkpoint/resume — including
// the headline property that an interrupted-then-resumed sweep's merged
// CSVs are byte-identical to an uninterrupted run's.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "common/strings.h"
#include "core/sweep.h"
#include "topology/generators/clos.h"
#include "topology/generators/jellyfish.h"

namespace pn {
namespace {

using namespace pn::literals;

evaluation_options fast_options() {
  evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  return opt;
}

std::vector<sweep_point> small_grid() {
  std::vector<sweep_point> grid;
  for (const int k : {4, 6}) {
    grid.push_back(sweep_point{str_format("ft-k=%d", k),
                               [k] { return build_fat_tree(k, 100_gbps); }});
  }
  for (int i = 0; i < 4; ++i) {
    jellyfish_params p;
    p.switches = 24 + 4 * i;
    p.radix = 12;
    p.hosts_per_switch = 6;
    p.seed = 11;
    grid.push_back(sweep_point{str_format("jf-%d", p.switches),
                               [p] { return build_jellyfish(p); }});
  }
  return grid;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

// --- fault injection -------------------------------------------------

TEST(fault_injection, every_stage_converts_to_structured_failure) {
  // One point, all eight stages enabled; injecting a fault into each
  // stage in turn must produce a structured sweep_failure naming exactly
  // that stage — never a crash, never a report.
  std::vector<sweep_point> grid{
      {"ft-k=4", [] { return build_fat_tree(4, 100_gbps); }}};
  evaluation_options opt;
  opt.run_repair_sim = true;  // so repair_sim runs instead of skipping
  opt.repair.horizon = hours{365.0 * 24};

  for (const eval_stage s : all_eval_stages()) {
    sweep_options sopt;
    sopt.jobs = 1;
    sopt.faults.targets = {fault_target{0, s}};
    const sweep_results res = run_sweep(grid, opt, sopt);
    ASSERT_EQ(res.failures.size(), 1u) << eval_stage_name(s);
    EXPECT_TRUE(res.reports.empty()) << eval_stage_name(s);
    EXPECT_FALSE(res.cancelled) << eval_stage_name(s);
    const sweep_failure& f = res.failures[0];
    EXPECT_EQ(f.point_index, 0u);
    EXPECT_EQ(f.stage, s) << eval_stage_name(s);
    EXPECT_EQ(f.error.code(), status_code::fault_injected);
    EXPECT_NE(f.error.message().find("injected fault"), std::string::npos);
    EXPECT_NE(f.error.message().find(eval_stage_name(s)), std::string::npos);
  }
}

TEST(fault_injection, probability_one_fails_every_point_at_first_stage) {
  const std::vector<sweep_point> grid = small_grid();
  sweep_options sopt;
  sopt.jobs = 4;
  sopt.faults.probability = 1.0;
  sopt.faults.seed = 7;
  const sweep_results res = run_sweep(grid, fast_options(), sopt);
  ASSERT_EQ(res.failures.size(), grid.size());
  EXPECT_TRUE(res.reports.empty());
  for (const sweep_failure& f : res.failures) {
    EXPECT_EQ(f.stage, eval_stage::topology_metrics);
    EXPECT_EQ(f.error.code(), status_code::fault_injected);
  }
}

TEST(fault_injection, probabilistic_decisions_are_deterministic) {
  fault_plan plan;
  plan.probability = 0.5;
  plan.seed = 42;
  std::size_t fails = 0;
  for (std::size_t point = 0; point < 32; ++point) {
    for (const eval_stage s : all_eval_stages()) {
      const bool a = plan.should_fail(point, s);
      const bool b = plan.should_fail(point, s);
      EXPECT_EQ(a, b);
      fails += a ? 1u : 0u;
    }
  }
  // At p=0.5 over 256 draws, all-fail or none-fail would mean the hash
  // is not mixing point/stage at all.
  EXPECT_GT(fails, 0u);
  EXPECT_LT(fails, 256u);

  fault_plan other = plan;
  other.seed = 43;
  bool any_difference = false;
  for (std::size_t point = 0; point < 32 && !any_difference; ++point) {
    for (const eval_stage s : all_eval_stages()) {
      if (plan.should_fail(point, s) != other.should_fail(point, s)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(fault_injection, parse_fault_targets_accepts_and_rejects) {
  const auto ok = parse_fault_targets("0:cabling,3:repair_sim");
  ASSERT_TRUE(ok.is_ok()) << ok.error().to_string();
  ASSERT_EQ(ok.value().size(), 2u);
  EXPECT_EQ(ok.value()[0].point_index, 0u);
  EXPECT_EQ(ok.value()[0].stage, eval_stage::cabling);
  EXPECT_EQ(ok.value()[1].point_index, 3u);
  EXPECT_EQ(ok.value()[1].stage, eval_stage::repair_sim);

  EXPECT_FALSE(parse_fault_targets("").is_ok());
  EXPECT_FALSE(parse_fault_targets("cabling").is_ok());
  EXPECT_FALSE(parse_fault_targets(":cabling").is_ok());
  EXPECT_FALSE(parse_fault_targets("0:").is_ok());
  EXPECT_FALSE(parse_fault_targets("x:cabling").is_ok());
  EXPECT_FALSE(parse_fault_targets("0:flux_capacitor").is_ok());
}

// --- cancellation and deadlines ---------------------------------------

TEST(sweep_cancel, pre_cancelled_token_runs_nothing) {
  const std::vector<sweep_point> grid = small_grid();
  sweep_options sopt;
  sopt.jobs = 4;
  sopt.cancel.request_cancel();
  const sweep_results res = run_sweep(grid, fast_options(), sopt);
  EXPECT_TRUE(res.cancelled);
  EXPECT_TRUE(res.reports.empty());
  EXPECT_TRUE(res.failures.empty());
  EXPECT_EQ(res.cancelled_points.size(), grid.size());
}

TEST(sweep_cancel, cancel_after_points_drains_deterministically) {
  const std::vector<sweep_point> grid = small_grid();
  sweep_options sopt;
  sopt.jobs = 1;  // serial: completion order == input order
  sopt.cancel_after_points = 2;
  const sweep_results res = run_sweep(grid, fast_options(), sopt);
  EXPECT_TRUE(res.cancelled);
  ASSERT_EQ(res.reports.size(), 2u);
  EXPECT_EQ(res.reports[0].name, grid[0].label);
  EXPECT_EQ(res.reports[1].name, grid[1].label);
  ASSERT_EQ(res.cancelled_points.size(), grid.size() - 2);
  for (std::size_t i = 0; i < res.cancelled_points.size(); ++i) {
    EXPECT_EQ(res.cancelled_points[i], i + 2);
  }
}

TEST(sweep_cancel, tiny_deadline_fails_points_with_deadline_exceeded) {
  std::vector<sweep_point> grid{
      {"ft-k=4", [] { return build_fat_tree(4, 100_gbps); }}};
  sweep_options sopt;
  sopt.jobs = 1;
  sopt.point_deadline_ms = 1e-6;  // expires before any stage can finish
  const sweep_results res = run_sweep(grid, fast_options(), sopt);
  EXPECT_FALSE(res.cancelled);  // a deadline is a real outcome, not a ^C
  ASSERT_EQ(res.failures.size(), 1u);
  EXPECT_EQ(res.failures[0].error.code(), status_code::deadline_exceeded);
  EXPECT_TRUE(res.reports.empty());
}

// --- checkpoint format -------------------------------------------------

TEST(checkpoint, fail_entry_line_round_trips_hostile_strings) {
  sweep_checkpoint_entry e;
  e.point_index = 5;
  e.seed = 0xdeadbeefULL;
  e.ok = false;
  e.label = "label with spaces\nnewline\ttab \\slash";
  e.stage = eval_stage::cabling;
  e.error = fault_injected_error("injected fault (point 5, stage cabling)");

  std::string line = sweep_checkpoint_line(e);
  ASSERT_FALSE(line.empty());
  ASSERT_EQ(line.back(), '\n');
  line.pop_back();
  // Escaping keeps the entry on one physical line.
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const auto back = parse_sweep_checkpoint_line(line);
  ASSERT_TRUE(back.is_ok()) << back.error().to_string();
  EXPECT_EQ(back.value().point_index, 5u);
  EXPECT_EQ(back.value().seed, 0xdeadbeefULL);
  EXPECT_FALSE(back.value().ok);
  EXPECT_EQ(back.value().label, e.label);
  EXPECT_EQ(back.value().stage, eval_stage::cabling);
  EXPECT_EQ(back.value().error.code(), status_code::fault_injected);
  EXPECT_EQ(back.value().error.message(), e.error.message());
  // And the re-serialization is byte-identical.
  EXPECT_EQ(sweep_checkpoint_line(back.value()), line + "\n");
}

TEST(checkpoint, empty_label_and_message_round_trip) {
  sweep_checkpoint_entry e;
  e.point_index = 0;
  e.seed = 1;
  e.ok = false;
  e.label = "";
  e.stage = eval_stage::report;
  e.error = status(status_code::infeasible, "");

  std::string line = sweep_checkpoint_line(e);
  line.pop_back();
  const auto back = parse_sweep_checkpoint_line(line);
  ASSERT_TRUE(back.is_ok()) << back.error().to_string();
  EXPECT_EQ(back.value().label, "");
  EXPECT_EQ(back.value().error.message(), "");
}

TEST(checkpoint, ok_entry_from_real_sweep_round_trips) {
  std::vector<sweep_point> grid{
      {"ft,k=4 with spaces", [] { return build_fat_tree(4, 100_gbps); }}};
  const std::string path = temp_path("cp_roundtrip.ckpt");
  sweep_options sopt;
  sopt.jobs = 1;
  sopt.checkpoint_path = path;
  const sweep_results res = run_sweep(grid, fast_options(), sopt);
  ASSERT_EQ(res.reports.size(), 1u);

  const auto loaded = load_sweep_checkpoint(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded.value().base_seed, fast_options().seed);
  EXPECT_EQ(loaded.value().point_count, 1u);
  const sweep_checkpoint_entry* e = loaded.value().find(0);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->ok);
  EXPECT_EQ(e->report.name, "ft,k=4 with spaces");
  EXPECT_EQ(e->seed, sweep_point_seed(fast_options().seed, 0));
  // Line-level fixed point across every report field, doubles included.
  std::string line = sweep_checkpoint_line(*e);
  line.pop_back();
  const auto back = parse_sweep_checkpoint_line(line);
  ASSERT_TRUE(back.is_ok()) << back.error().to_string();
  EXPECT_EQ(sweep_checkpoint_line(back.value()), line + "\n");
  std::remove(path.c_str());
}

TEST(checkpoint, torn_final_line_is_ignored_interior_garbage_is_not) {
  const std::string path = temp_path("cp_torn.ckpt");
  {
    std::ofstream out(path);
    out << sweep_checkpoint_header(9, 4);
    sweep_checkpoint_entry e;
    e.point_index = 1;
    e.seed = sweep_point_seed(9, 1);
    e.ok = false;
    e.label = "p1";
    e.stage = eval_stage::placement;
    e.error = unavailable_error("boom");
    out << sweep_checkpoint_line(e);
    out << "ok 2 123 torn-by-a-cra";  // no newline: a torn append
  }
  const auto loaded = load_sweep_checkpoint(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded.value().entries.size(), 1u);
  EXPECT_NE(loaded.value().find(1), nullptr);
  EXPECT_EQ(loaded.value().find(2), nullptr);

  // The same garbage in the *interior* means the file is not trustworthy.
  {
    std::ofstream out(path, std::ios::app);
    out << "\nfail 3 " << sweep_point_seed(9, 3)
        << " p3 placement unavailable boom\n";
  }
  EXPECT_FALSE(load_sweep_checkpoint(path).is_ok());
  std::remove(path.c_str());
}

TEST(checkpoint, rejects_bad_header_and_out_of_range_points) {
  const std::string path = temp_path("cp_bad.ckpt");
  {
    std::ofstream out(path);
    out << "not a checkpoint\n";
  }
  EXPECT_FALSE(load_sweep_checkpoint(path).is_ok());
  {
    std::ofstream out(path, std::ios::trunc);
    out << sweep_checkpoint_header(9, 2);
    out << "fail 7 1 p7 placement unavailable boom\n";  // 7 >= 2 points
  }
  EXPECT_FALSE(load_sweep_checkpoint(path).is_ok());
  EXPECT_EQ(load_sweep_checkpoint(temp_path("cp_missing.ckpt")).error().code(),
            status_code::not_found);
  std::remove(path.c_str());
}

// --- resume ------------------------------------------------------------

TEST(checkpoint, parallel_sweep_checkpoints_every_completed_point) {
  const std::vector<sweep_point> grid = small_grid();
  const std::string path = temp_path("cp_parallel.ckpt");
  sweep_options sopt;
  sopt.jobs = 4;
  sopt.checkpoint_path = path;
  sopt.faults.targets = {fault_target{1, eval_stage::cabling}};
  const sweep_results res = run_sweep(grid, fast_options(), sopt);
  ASSERT_EQ(res.reports.size(), grid.size() - 1);
  ASSERT_EQ(res.failures.size(), 1u);

  const auto loaded = load_sweep_checkpoint(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded.value().entries.size(), grid.size());
  const sweep_checkpoint_entry* failed = loaded.value().find(1);
  ASSERT_NE(failed, nullptr);
  EXPECT_FALSE(failed->ok);
  EXPECT_EQ(failed->stage, eval_stage::cabling);
  std::remove(path.c_str());
}

TEST(checkpoint, interrupted_then_resumed_sweep_is_byte_identical) {
  // The acceptance property: interrupt a checkpointed sweep partway,
  // resume it, and the merged CSVs — including a real injected failure —
  // must match an uninterrupted run byte for byte.
  const std::vector<sweep_point> grid = small_grid();
  evaluation_options opt = fast_options();
  sweep_options base;
  base.jobs = 1;
  base.faults.targets = {fault_target{1, eval_stage::cabling}};

  const sweep_results uninterrupted = run_sweep(grid, opt, base);
  ASSERT_EQ(uninterrupted.failures.size(), 1u);
  ASSERT_EQ(uninterrupted.reports.size(), grid.size() - 1);

  // Leg 1: cancel after two completed points (one ok, one injected fail).
  const std::string path = temp_path("cp_resume.ckpt");
  sweep_options interrupted = base;
  interrupted.checkpoint_path = path;
  interrupted.cancel_after_points = 2;
  const sweep_results partial = run_sweep(grid, opt, interrupted);
  EXPECT_TRUE(partial.cancelled);
  EXPECT_EQ(partial.reports.size() + partial.failures.size(), 2u);
  EXPECT_EQ(partial.cancelled_points.size(), grid.size() - 2);

  // Cancelled points must not have been checkpointed.
  const auto cp = load_sweep_checkpoint(path);
  ASSERT_TRUE(cp.is_ok()) << cp.error().to_string();
  EXPECT_EQ(cp.value().entries.size(), 2u);
  for (const std::size_t i : partial.cancelled_points) {
    EXPECT_EQ(cp.value().find(i), nullptr) << "point " << i;
  }

  // Leg 2: resume. Restored points are not re-evaluated; the rest run.
  sweep_options resumed = base;
  // Copying options shares the cancel token's flag, and leg 1 tripped
  // it — a resume (like the CLI's fresh process) needs a fresh token.
  resumed.cancel = cancel_token{};
  resumed.checkpoint_path = path;
  resumed.resume = &cp.value();
  const sweep_results merged = run_sweep(grid, opt, resumed);
  EXPECT_FALSE(merged.cancelled);
  EXPECT_EQ(merged.resumed_points, 2u);
  EXPECT_EQ(merged.reports.size(), uninterrupted.reports.size());
  EXPECT_EQ(merged.failures.size(), uninterrupted.failures.size());

  EXPECT_EQ(sweep_to_csv(merged), sweep_to_csv(uninterrupted));
  EXPECT_EQ(sweep_failures_to_csv(merged),
            sweep_failures_to_csv(uninterrupted));

  // The resume appended the remaining points to the same file: loading
  // it again now yields a complete checkpoint.
  const auto full = load_sweep_checkpoint(path);
  ASSERT_TRUE(full.is_ok()) << full.error().to_string();
  EXPECT_EQ(full.value().entries.size(), grid.size());
  std::remove(path.c_str());
}

TEST(checkpoint, fully_complete_checkpoint_resumes_without_evaluating) {
  std::vector<sweep_point> grid{
      {"ft-k=4", [] { return build_fat_tree(4, 100_gbps); }},
      {"boom", [] { return build_fat_tree(4, 100_gbps); }}};
  const std::string path = temp_path("cp_full.ckpt");
  sweep_options first;
  first.jobs = 1;
  first.checkpoint_path = path;
  first.faults.targets = {fault_target{1, eval_stage::bundling}};
  const sweep_results a = run_sweep(grid, fast_options(), first);
  ASSERT_EQ(a.reports.size() + a.failures.size(), 2u);

  const auto cp = load_sweep_checkpoint(path);
  ASSERT_TRUE(cp.is_ok());
  // Second run: every point restored — even with a build hook that would
  // abort the test if invoked, nothing is re-built or re-evaluated.
  std::vector<sweep_point> tripwire_grid{
      {"ft-k=4",
       []() -> network_graph {
         ADD_FAILURE() << "restored point was re-built";
         return build_fat_tree(4, 100_gbps);
       }},
      {"boom",
       []() -> network_graph {
         ADD_FAILURE() << "restored point was re-built";
         return build_fat_tree(4, 100_gbps);
       }}};
  sweep_options second;
  second.jobs = 1;
  second.resume = &cp.value();
  const sweep_results b = run_sweep(tripwire_grid, fast_options(), second);
  EXPECT_EQ(b.resumed_points, 2u);
  EXPECT_EQ(sweep_to_csv(b), sweep_to_csv(a));
  EXPECT_EQ(sweep_failures_to_csv(b), sweep_failures_to_csv(a));
  std::remove(path.c_str());
}

TEST(checkpoint, resume_rejects_foreign_checkpoints) {
  std::vector<sweep_point> grid{
      {"ft-k=4", [] { return build_fat_tree(4, 100_gbps); }}};
  sweep_checkpoint cp;
  cp.base_seed = fast_options().seed + 1;  // wrong seed
  cp.point_count = 1;
  sweep_options sopt;
  sopt.resume = &cp;
  EXPECT_THROW((void)run_sweep(grid, fast_options(), sopt),
               std::logic_error);

  cp.base_seed = fast_options().seed;
  cp.point_count = 2;  // wrong grid size
  EXPECT_THROW((void)run_sweep(grid, fast_options(), sopt),
               std::logic_error);
}

}  // namespace
}  // namespace pn
