// Integration tests: the full evaluate_design pipeline across families,
// plus the cross-family shape claims the paper makes (§4.2).
#include <gtest/gtest.h>

#include "core/compare.h"
#include "core/evaluator.h"
#include "topology/generators/clos.h"
#include "topology/generators/jellyfish.h"
#include "topology/generators/leaf_spine.h"
#include "topology/generators/xpander.h"

namespace pn {
namespace {

using namespace pn::literals;

evaluation_options fast_options() {
  evaluation_options opt;
  opt.run_repair_sim = false;  // keep unit tests quick
  return opt;
}

TEST(evaluator, produces_complete_report_for_fat_tree) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const auto ev = evaluate_design(g, "ft4", fast_options());
  ASSERT_TRUE(ev.is_ok());
  const deployability_report& r = ev.value().report;
  EXPECT_EQ(r.name, "ft4");
  EXPECT_EQ(r.family, "fat_tree");
  EXPECT_EQ(r.switches, 20u);
  EXPECT_EQ(r.hosts, 16u);
  EXPECT_EQ(r.links, 32u);
  EXPECT_GT(r.mean_path_length, 0.0);
  EXPECT_GT(r.capex().value(), 0.0);
  EXPECT_GT(r.capex_per_host.value(), 0.0);
  EXPECT_GT(r.time_to_deploy.value(), 0.0);
  EXPECT_GE(r.deploy_labor, r.time_to_deploy);
  EXPECT_GT(r.first_pass_yield, 0.5);
  EXPECT_GT(r.switch_power.value(), 0.0);
}

TEST(evaluator, auto_sizes_floor_with_headroom) {
  const network_graph g = build_fat_tree(8, 100_gbps);
  floorplan_params base;
  const floorplan_params sized = auto_size_floor(g, base, 0.3);
  int ru = 0;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    ru += node_rack_units(g, node_id{i});
  }
  EXPECT_GE(sized.rows * sized.racks_per_row * sized.rack_units,
            static_cast<int>(ru * 1.3) - sized.rack_units);
}

TEST(evaluator, repair_sim_integrates) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = true;
  opt.repair.horizon = hours{5.0 * 365 * 24};
  const auto ev = evaluate_design(g, "ft4", opt);
  ASSERT_TRUE(ev.is_ok());
  EXPECT_LT(ev.value().report.availability, 1.0);
  EXPECT_GT(ev.value().report.availability, 0.9);
}

TEST(evaluator, placement_strategy_changes_cable_bill) {
  jellyfish_params p;
  p.switches = 40;
  p.radix = 16;
  p.hosts_per_switch = 8;
  p.seed = 3;
  const network_graph g = build_jellyfish(p);
  evaluation_options random = fast_options();
  random.strategy = placement_strategy::random;
  evaluation_options annealed = fast_options();
  annealed.strategy = placement_strategy::annealed;
  annealed.anneal.iterations = 8000;
  const auto a = evaluate_design(g, "jf-random", random);
  const auto b = evaluate_design(g, "jf-annealed", annealed);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_LT(b.value().report.cable_cost.value() +
                b.value().report.transceiver_cost.value(),
            a.value().report.cable_cost.value() +
                a.value().report.transceiver_cost.value());
}

TEST(evaluator, jellyfish_wins_abstract_loses_physical) {
  // The paper's §4.2 story in one test: at comparable gear, the expander
  // has shorter paths, but bundles worse than the Clos.
  const network_graph ft = build_fat_tree(8, 100_gbps);
  jellyfish_params p;
  p.switches = static_cast<int>(ft.node_count());
  p.radix = 8;
  p.hosts_per_switch = 2;
  p.seed = 5;
  const network_graph jf = build_jellyfish(p);
  const auto eft = evaluate_design(ft, "ft", fast_options());
  const auto ejf = evaluate_design(jf, "jf", fast_options());
  ASSERT_TRUE(eft.is_ok() && ejf.is_ok());
  EXPECT_LT(ejf.value().report.mean_path_length,
            eft.value().report.mean_path_length);
  EXPECT_LT(ejf.value().report.bundleability,
            eft.value().report.bundleability);
}

TEST(evaluator, deterministic_per_seed) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  evaluation_options opt = fast_options();
  opt.seed = 9;
  const auto a = evaluate_design(g, "x", opt);
  const auto b = evaluate_design(g, "x", opt);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_DOUBLE_EQ(a.value().report.time_to_deploy.value(),
                   b.value().report.time_to_deploy.value());
  EXPECT_DOUBLE_EQ(a.value().report.capex().value(),
                   b.value().report.capex().value());
}

TEST(compare_tables, render_all_sections) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const auto ev = evaluate_design(g, "ft4", fast_options());
  ASSERT_TRUE(ev.is_ok());
  const std::vector<deployability_report> reports{ev.value().report};
  for (const text_table& t :
       {abstract_metrics_table(reports), cost_table(reports),
        deployability_table(reports), operations_table(reports)}) {
    EXPECT_EQ(t.row_count(), 1u);
    EXPECT_NE(t.to_string().find("ft4"), std::string::npos);
  }
}

TEST(placement_strategy, names) {
  EXPECT_STREQ(placement_strategy_name(placement_strategy::block), "block");
  EXPECT_STREQ(placement_strategy_name(placement_strategy::random),
               "random");
  EXPECT_STREQ(placement_strategy_name(placement_strategy::annealed),
               "annealed");
}

}  // namespace
}  // namespace pn
