// Staged-pipeline + parallel-sweep coverage: trace population, parallel
// vs. serial bit-identity, structured failure attribution, CSV escaping.
#include <gtest/gtest.h>

#include <set>

#include "common/strings.h"
#include "core/sweep.h"
#include "topology/generators/clos.h"
#include "topology/generators/jellyfish.h"

namespace pn {
namespace {

using namespace pn::literals;

evaluation_options fast_options() {
  evaluation_options opt;
  opt.run_repair_sim = false;
  opt.run_throughput = false;
  return opt;
}

std::vector<sweep_point> fat_tree_grid() {
  // 12 points: fat trees at three sizes, four seeds' worth of labels each
  // via jellyfish designs, so the grid is heterogeneous.
  std::vector<sweep_point> grid;
  for (const int k : {4, 6, 8}) {
    grid.push_back(sweep_point{str_format("ft-k=%d", k),
                               [k] { return build_fat_tree(k, 100_gbps); }});
  }
  for (int i = 0; i < 9; ++i) {
    jellyfish_params p;
    p.switches = 24 + 4 * i;
    p.radix = 12;
    p.hosts_per_switch = 6;
    p.seed = 11;
    grid.push_back(sweep_point{str_format("jf-%d", p.switches),
                               [p] { return build_jellyfish(p); }});
  }
  return grid;
}

TEST(stage_trace, populated_on_success) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  evaluation_options opt;
  opt.run_repair_sim = true;
  opt.repair.horizon = hours{365.0 * 24};
  const evaluation ev = evaluate_design_staged(g, "ft4", opt);
  ASSERT_TRUE(ev.trace.ok());
  ASSERT_EQ(ev.trace.stages.size(), eval_stage_count);
  for (const stage_record& r : ev.trace.stages) {
    EXPECT_EQ(r.outcome, stage_outcome::ok)
        << eval_stage_name(r.stage);
    EXPECT_GT(r.wall_ms, 0.0) << eval_stage_name(r.stage);
  }
  EXPECT_GT(ev.trace.total_ms(), 0.0);
  EXPECT_GT(ev.report.eval_total_ms, 0.0);
  EXPECT_FALSE(ev.trace.failed_stage().has_value());

  // Stage-specific counters made it in.
  const stage_record& cabling = ev.trace.at(eval_stage::cabling);
  ASSERT_FALSE(cabling.counters.empty());
  EXPECT_EQ(cabling.counters[0].name, "runs");
  EXPECT_GT(cabling.counters[0].value, 0.0);
}

TEST(stage_trace, repair_stage_skipped_when_disabled) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  const evaluation ev = evaluate_design_staged(g, "ft4", fast_options());
  ASSERT_TRUE(ev.trace.ok());
  EXPECT_EQ(ev.trace.at(eval_stage::repair_sim).outcome,
            stage_outcome::skipped);
  EXPECT_EQ(ev.trace.at(eval_stage::deploy_sim).outcome, stage_outcome::ok);
}

TEST(stage_trace, failure_attributed_to_placement_stage) {
  // A floor too small for the design (k=8 needs ~336 RU, the 2x2 floor
  // has 168): placement must be the failing stage, stages before it ok,
  // stages after it not_run.
  const network_graph g = build_fat_tree(8, 100_gbps);
  evaluation_options opt = fast_options();
  opt.auto_size_floor = false;
  opt.floor.rows = 2;
  opt.floor.racks_per_row = 2;
  const evaluation ev = evaluate_design_staged(g, "ft8-tiny", opt);
  ASSERT_FALSE(ev.trace.ok());
  ASSERT_TRUE(ev.trace.failed_stage().has_value());
  EXPECT_EQ(*ev.trace.failed_stage(), eval_stage::placement);
  EXPECT_EQ(ev.trace.first_error().code(), status_code::capacity_exceeded);
  EXPECT_EQ(ev.trace.at(eval_stage::floor_sizing).outcome,
            stage_outcome::ok);
  EXPECT_EQ(ev.trace.at(eval_stage::cabling).outcome,
            stage_outcome::not_run);
  EXPECT_EQ(ev.trace.at(eval_stage::report).outcome, stage_outcome::not_run);

  // The wrapper surfaces the stage in the error message.
  const auto wrapped = evaluate_design(g, "ft8-tiny", opt);
  ASSERT_FALSE(wrapped.is_ok());
  EXPECT_NE(wrapped.error().message().find("placement"), std::string::npos);
}

TEST(sweep_parallel, jobs8_bit_identical_to_serial_on_12_point_grid) {
  const std::vector<sweep_point> grid = fat_tree_grid();
  ASSERT_EQ(grid.size(), 12u);
  const evaluation_options opt = fast_options();
  sweep_options serial;
  serial.jobs = 1;
  sweep_options parallel;
  parallel.jobs = 8;
  const sweep_results a = run_sweep(grid, opt, serial);
  const sweep_results b = run_sweep(grid, opt, parallel);
  ASSERT_EQ(a.reports.size(), 12u);
  ASSERT_EQ(b.reports.size(), 12u);
  EXPECT_TRUE(a.failures.empty());
  EXPECT_TRUE(b.failures.empty());
  // Byte-identical CSV (timings excluded — they are wall-clock noise).
  EXPECT_EQ(sweep_to_csv(a), sweep_to_csv(b));
  // And input order is preserved.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(a.reports[i].name, grid[i].label);
  }
}

TEST(sweep_parallel, failure_reports_failing_stage_and_point) {
  std::vector<sweep_point> grid{
      {"ok-k=4", [] { return build_fat_tree(4, 100_gbps); }},
      {"too-big-k=8", [] { return build_fat_tree(8, 100_gbps); }},
  };
  evaluation_options opt = fast_options();
  opt.auto_size_floor = false;
  opt.floor.rows = 2;
  opt.floor.racks_per_row = 2;  // 168 RU: fits k=4 (~52), not k=8 (~336)
  sweep_options sopt;
  sopt.jobs = 4;
  const sweep_results res = run_sweep(grid, opt, sopt);
  ASSERT_EQ(res.reports.size(), 1u);
  ASSERT_EQ(res.failures.size(), 1u);
  const sweep_failure& f = res.failures[0];
  EXPECT_EQ(f.point_index, 1u);
  EXPECT_EQ(f.label, "too-big-k=8");
  EXPECT_EQ(f.stage, eval_stage::placement);
  EXPECT_EQ(f.error.code(), status_code::capacity_exceeded);
  EXPECT_NE(f.to_string().find("[placement]"), std::string::npos);

  const std::string csv = sweep_failures_to_csv(res);
  EXPECT_NE(csv.find("too-big-k=8,placement,capacity_exceeded"),
            std::string::npos);
}

TEST(sweep_parallel, per_point_seeds_distinct_and_deterministic) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 100; ++i) {
    seeds.insert(sweep_point_seed(1, i));
  }
  EXPECT_EQ(seeds.size(), 100u);
  EXPECT_EQ(sweep_point_seed(42, 7), sweep_point_seed(42, 7));
  EXPECT_NE(sweep_point_seed(42, 7), sweep_point_seed(43, 7));
}

TEST(sweep_csv, name_with_comma_is_escaped) {
  std::vector<sweep_point> grid{
      {"ft,k=4", [] { return build_fat_tree(4, 100_gbps); }}};
  const sweep_results res = run_sweep(grid, fast_options());
  ASSERT_EQ(res.reports.size(), 1u);
  const std::string csv = sweep_to_csv(res);
  const auto lines = split(csv, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_TRUE(starts_with(lines[1], "\"ft,k=4\",fat_tree,"));
  // Column count survives the embedded comma: the quoted field parses as
  // one cell, so raw-splitting yields exactly one extra separator.
  EXPECT_EQ(split(lines[1], ',').size(), split(lines[0], ',').size() + 1);
}

TEST(sweep_csv, stage_timing_columns_present_when_requested) {
  std::vector<sweep_point> grid{
      {"k=4", [] { return build_fat_tree(4, 100_gbps); }}};
  const sweep_results res = run_sweep(grid, fast_options());
  sweep_csv_options copt;
  copt.stage_timings = true;
  const std::string csv = sweep_to_csv(res, copt);
  const auto lines = split(csv, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].find("t_total_ms"), std::string::npos);
  EXPECT_NE(lines[0].find("t_placement_ms"), std::string::npos);
  EXPECT_EQ(split(lines[0], ',').size(), split(lines[1], ',').size());
}

TEST(sweep_parallel, oversubscribed_jobs_handle_small_grid) {
  // More workers than points must not deadlock or drop points.
  std::vector<sweep_point> grid{
      {"k=4", [] { return build_fat_tree(4, 100_gbps); }},
      {"k=6", [] { return build_fat_tree(6, 100_gbps); }}};
  sweep_options sopt;
  sopt.jobs = 16;
  const sweep_results res = run_sweep(grid, fast_options(), sopt);
  EXPECT_EQ(res.reports.size(), 2u);
  EXPECT_EQ(res.traces.size(), 2u);
}

}  // namespace
}  // namespace pn
