#include "twin/design_codec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "topology/generators/families.h"
#include "twin/serialize.h"

namespace pn {
namespace {

// Two graphs are interchangeable for evaluation iff every node field,
// every edge field, edge order, and liveness match. Edge *ids* matter:
// downstream code (cabling, repair) indexes by edge_id.
void expect_same_design(const network_graph& a, const network_graph& b) {
  EXPECT_EQ(a.family, b.family);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    const node_info& na = a.node(node_id{i});
    const node_info& nb = b.node(node_id{i});
    EXPECT_EQ(na.name, nb.name);
    EXPECT_EQ(na.kind, nb.kind);
    EXPECT_EQ(na.radix, nb.radix);
    EXPECT_EQ(na.port_rate.value(), nb.port_rate.value());
    EXPECT_EQ(na.host_ports, nb.host_ports);
    EXPECT_EQ(na.layer, nb.layer);
    EXPECT_EQ(na.block, nb.block);
  }
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < a.edge_count(); ++i) {
    const edge_info& ea = a.edge(edge_id{i});
    const edge_info& eb = b.edge(edge_id{i});
    EXPECT_EQ(ea.a, eb.a);
    EXPECT_EQ(ea.b, eb.b);
    EXPECT_EQ(ea.capacity.value(), eb.capacity.value());
    EXPECT_EQ(ea.via_indirection, eb.via_indirection);
    EXPECT_EQ(ea.indirection_unit, eb.indirection_unit);
    EXPECT_EQ(a.edge_alive(edge_id{i}), b.edge_alive(edge_id{i}));
  }
}

TEST(design_codec, round_trips_every_family) {
  const std::vector<std::pair<std::string, int>> designs = {
      {"fat_tree", 4},  {"leaf_spine", 6}, {"jellyfish", 20},
      {"xpander", 18},  {"dragonfly", 6},  {"vl2", 8},
  };
  for (const auto& [family, size] : designs) {
    auto g = build_family(family, size, /*seed=*/3);
    ASSERT_TRUE(g.is_ok()) << family;
    const twin_model twin = design_to_twin(g.value());
    auto back = design_from_twin(twin);
    ASSERT_TRUE(back.is_ok()) << family << ": "
                              << back.error().to_string();
    expect_same_design(g.value(), back.value());
  }
}

TEST(design_codec, survives_text_serialization) {
  auto g = build_family("jellyfish", 16, 11);
  ASSERT_TRUE(g.is_ok());
  const std::string text = serialize_twin(design_to_twin(g.value()));
  auto twin = parse_twin(text);
  ASSERT_TRUE(twin.is_ok());
  auto back = design_from_twin(twin.value());
  ASSERT_TRUE(back.is_ok()) << back.error().to_string();
  expect_same_design(g.value(), back.value());
}

TEST(design_codec, preserves_dead_edges_and_edge_ids) {
  auto g = build_family("fat_tree", 4, 1);
  ASSERT_TRUE(g.is_ok());
  network_graph& graph = g.value();
  const std::size_t live_before = graph.live_edges().size();
  graph.remove_edge(edge_id{2});
  graph.remove_edge(edge_id{5});
  auto back = design_from_twin(design_to_twin(graph));
  ASSERT_TRUE(back.is_ok()) << back.error().to_string();
  expect_same_design(graph, back.value());
  EXPECT_EQ(back.value().live_edges().size(), live_before - 2);
  EXPECT_FALSE(back.value().edge_alive(edge_id{2}));
  EXPECT_TRUE(back.value().edge_alive(edge_id{3}));
}

TEST(design_codec, malformed_twins_are_corrupt_data) {
  auto g = build_family("fat_tree", 4, 1);
  ASSERT_TRUE(g.is_ok());

  {
    // Missing fabric entity entirely.
    twin_model empty;
    auto back = design_from_twin(empty);
    ASSERT_FALSE(back.is_ok());
    EXPECT_EQ(back.error().code(), status_code::corrupt_data);
  }
  {
    // A switch with a wrongly-typed index attribute.
    twin_model twin = design_to_twin(g.value());
    const auto switches = twin.entities_of_kind("switch");
    ASSERT_FALSE(switches.empty());
    twin.set_attr(switches.front(), "index", std::string("zero"));
    auto back = design_from_twin(twin);
    ASSERT_FALSE(back.is_ok());
    EXPECT_EQ(back.error().code(), status_code::corrupt_data);
  }
  {
    // Duplicate switch indices (not a permutation).
    twin_model twin = design_to_twin(g.value());
    const auto switches = twin.entities_of_kind("switch");
    ASSERT_GE(switches.size(), 2u);
    twin.set_attr(switches[1], "index", std::int64_t{0});
    auto back = design_from_twin(twin);
    ASSERT_FALSE(back.is_ok());
    EXPECT_EQ(back.error().code(), status_code::corrupt_data);
  }
  {
    // An edge endpoint out of range.
    twin_model twin = design_to_twin(g.value());
    const auto links = twin.entities_of_kind("link");
    ASSERT_FALSE(links.empty());
    twin.set_attr(links.front(), "a", std::int64_t{10'000});
    auto back = design_from_twin(twin);
    ASSERT_FALSE(back.is_ok());
    EXPECT_EQ(back.error().code(), status_code::corrupt_data);
  }
}

}  // namespace
}  // namespace pn
