#include "twin/dryrun.h"

#include <gtest/gtest.h>

#include "twin/model.h"
#include "twin/schema.h"

namespace pn {
namespace {

twin_model seeded_model() {
  twin_model m;
  const entity_id r = m.add_entity("rack", "r0");
  m.set_attr(r, "rack_units", std::int64_t{42});
  m.set_attr(r, "power_budget_w", 17000.0);
  const entity_id s = m.add_entity("switch", "sw0");
  m.set_attr(s, "radix", std::int64_t{32});
  m.set_attr(s, "port_rate_gbps", 100.0);
  m.set_attr(s, "rack_units", std::int64_t{1});
  m.set_attr(s, "power_w", 450.0);
  (void)m.add_relation("placed_in", s, r);
  return m;
}

TEST(dry_run, clean_plan_passes) {
  const twin_schema schema = twin_schema::network_schema();
  dry_run_engine eng(seeded_model(), &schema);
  const std::vector<twin_op> plan{
      op_add_entity("switch", "sw1",
                    {{"radix", std::int64_t{32}},
                     {"port_rate_gbps", 100.0},
                     {"rack_units", std::int64_t{1}},
                     {"power_w", 450.0}}),
      op_add_relation("placed_in", "switch", "sw1", "rack", "r0"),
  };
  const auto report = eng.run(plan);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.steps_executed, 2u);
  EXPECT_TRUE(report.failures.empty());
  EXPECT_TRUE(eng.model().find("switch", "sw1").has_value());
}

TEST(dry_run, original_model_untouched) {
  const twin_schema schema = twin_schema::network_schema();
  twin_model original = seeded_model();
  dry_run_engine eng(original, &schema);
  (void)eng.run({op_remove_relation("placed_in", "switch", "sw0", "rack",
                                    "r0"),
                 op_remove_entity("switch", "sw0")});
  EXPECT_TRUE(original.find("switch", "sw0").has_value());
  EXPECT_FALSE(eng.model().find("switch", "sw0").has_value());
}

TEST(dry_run, removing_connected_switch_fails_at_the_right_step) {
  const twin_schema schema = twin_schema::network_schema();
  dry_run_engine eng(seeded_model(), &schema);
  const std::vector<twin_op> plan{
      op_set_attr("switch", "sw0", "drained", true),
      op_remove_entity("switch", "sw0"),  // still placed_in r0!
  };
  const auto report = eng.run(plan);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].step, 1u);
  EXPECT_EQ(report.failures[0].op_status.code(), status_code::unavailable);
}

TEST(dry_run, schema_violation_surfaces_at_introducing_step) {
  const twin_schema schema = twin_schema::network_schema();
  dry_run_engine eng(seeded_model(), &schema);
  const std::vector<twin_op> plan{
      // Missing required attributes: schema validation flags step 0.
      op_add_entity("switch", "incomplete"),
  };
  const auto report = eng.run(plan);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_FALSE(report.failures[0].violations.empty());
}

TEST(dry_run, stop_on_first_failure) {
  const twin_schema schema = twin_schema::network_schema();
  dry_run_engine eng(seeded_model(), &schema);
  const std::vector<twin_op> plan{
      op_remove_entity("switch", "sw0"),  // fails
      op_add_entity("rack", "r9",
                    {{"rack_units", std::int64_t{42}},
                     {"power_budget_w", 1000.0}}),
  };
  dry_run_options opt;
  opt.continue_after_failure = false;
  const auto report = eng.run(plan, opt);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.steps_executed, 1u);
  EXPECT_FALSE(eng.model().find("rack", "r9").has_value());
}

TEST(dry_run, final_validation_mode) {
  const twin_schema schema = twin_schema::network_schema();
  dry_run_engine eng(seeded_model(), &schema);
  dry_run_options opt;
  opt.validate_each_step = false;
  const auto report = eng.run({op_add_entity("switch", "incomplete")}, opt);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].description, "final validation");
}

TEST(dry_run, duplicate_entity_rejected) {
  const twin_schema schema = twin_schema::network_schema();
  dry_run_engine eng(seeded_model(), &schema);
  const auto report = eng.run({op_add_entity(
      "switch", "sw0", {{"radix", std::int64_t{32}},
                        {"port_rate_gbps", 100.0},
                        {"rack_units", std::int64_t{1}},
                        {"power_w", 450.0}})});
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.failures[0].op_status.code(),
            status_code::invalid_argument);
}

TEST(dry_run, missing_relation_endpoint_reported) {
  const twin_schema schema = twin_schema::network_schema();
  dry_run_engine eng(seeded_model(), &schema);
  const auto report = eng.run(
      {op_add_relation("placed_in", "switch", "ghost", "rack", "r0")});
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.failures[0].op_status.code(), status_code::not_found);
}

TEST(dry_run, op_descriptions_default_sensibly) {
  EXPECT_EQ(op_add_entity("switch", "s").description, "add switch s");
  EXPECT_EQ(op_remove_entity("cable", "c").description, "remove cable c");
  EXPECT_EQ(op_add_relation("placed_in", "switch", "s", "rack", "r")
                .description,
            "relate s -placed_in-> r");
  EXPECT_EQ(op_remove_relation("placed_in", "switch", "s", "rack", "r")
                .description,
            "unrelate s -placed_in-> r");
  EXPECT_EQ(op_set_attr("switch", "s", "drained", true).description,
            "set s.drained");
}

}  // namespace
}  // namespace pn
