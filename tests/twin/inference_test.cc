#include "twin/inference.h"

#include <gtest/gtest.h>

#include "physical/cabling.h"
#include "physical/placement.h"
#include "topology/generators/clos.h"
#include "twin/builder.h"

namespace pn {
namespace {

using namespace pn::literals;

twin_model fabric_twin() {
  const network_graph g = build_fat_tree(8, 100_gbps);
  floorplan_params fpp;
  fpp.rows = 3;
  fpp.racks_per_row = 12;
  floorplan local(fpp);
  const auto pl = block_placement(g, local);
  const catalog cat = catalog::standard();
  const auto plan = plan_cabling(g, pl.value(), local, cat, {});
  return build_network_twin(g, pl.value(), local, plan.value(), cat);
}

TEST(inference, learns_ranges_vocabularies_and_degrees) {
  const twin_model m = fabric_twin();
  const auto rules = infer_rules(m);
  ASSERT_FALSE(rules.empty());
  bool saw_range = false, saw_vocab = false, saw_out = false, saw_in = false;
  for (const auto& r : rules) {
    if (r.kind == inferred_rule::rule_kind::attr_range) saw_range = true;
    if (r.kind == inferred_rule::rule_kind::attr_vocabulary) {
      saw_vocab = true;
    }
    if (r.kind == inferred_rule::rule_kind::out_degree) saw_out = true;
    if (r.kind == inferred_rule::rule_kind::in_degree) saw_in = true;
    EXPECT_FALSE(r.describe().empty());
    EXPECT_GE(r.support, inference_params{}.min_support);
  }
  EXPECT_TRUE(saw_range);
  EXPECT_TRUE(saw_vocab);  // cable.medium
  EXPECT_TRUE(saw_out);    // cable --terminates_on--> exactly 2
  EXPECT_TRUE(saw_in);
}

TEST(inference, clean_model_passes_its_own_rules) {
  const twin_model m = fabric_twin();
  const auto rules = infer_rules(m);
  const auto violations = check_against_rules(m, rules);
  EXPECT_TRUE(violations.empty())
      << violations.front().entity << ": " << violations.front().detail;
}

TEST(inference, flags_numeric_outlier) {
  twin_model m = fabric_twin();
  const auto rules = infer_rules(m);
  // A cable whose recorded length is wildly out of family — the classic
  // fat-fingered survey datum §5.3 worries about.
  const auto cable = m.find("cable", "cable0");
  ASSERT_TRUE(cable.has_value());
  m.set_attr(*cable, "length_m", 900.0);
  const auto violations = check_against_rules(m, rules);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].entity, "cable0");
  EXPECT_NE(violations[0].detail.find("length_m"), std::string::npos);
}

TEST(inference, flags_vocabulary_deviant) {
  twin_model m = fabric_twin();
  const auto rules = infer_rules(m);
  const auto cable = m.find("cable", "cable1");
  ASSERT_TRUE(cable.has_value());
  m.set_attr(*cable, "medium", std::string("carrier-pigeon"));
  const auto violations = check_against_rules(m, rules);
  bool saw = false;
  for (const auto& v : violations) {
    if (v.entity == "cable1" &&
        v.detail.find("medium") != std::string::npos) {
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(inference, flags_degree_deviant) {
  twin_model m = fabric_twin();
  const auto rules = infer_rules(m);
  // Every cable terminates on exactly two switches; cut one end off.
  const auto cable = m.find("cable", "cable2");
  ASSERT_TRUE(cable.has_value());
  const auto ends = m.related(*cable, "terminates_on");
  ASSERT_EQ(ends.size(), 2u);
  ASSERT_TRUE(
      m.remove_relation("terminates_on", *cable, ends[0]).is_ok());
  const auto violations = check_against_rules(m, rules);
  bool saw = false;
  for (const auto& v : violations) {
    if (v.entity == "cable2" &&
        v.detail.find("terminates_on") != std::string::npos) {
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(inference, min_support_suppresses_thin_rules) {
  twin_model m;
  for (int i = 0; i < 3; ++i) {  // below default min_support of 5
    const entity_id e =
        m.add_entity("oddity", "o" + std::to_string(i));
    m.set_attr(e, "x", static_cast<double>(i));
  }
  EXPECT_TRUE(infer_rules(m).empty());
  inference_params loose;
  loose.min_support = 2;
  EXPECT_FALSE(infer_rules(m, loose).empty());
}

TEST(inference, range_slack_tolerates_small_drift) {
  twin_model m = fabric_twin();
  inference_params p;
  p.range_slack = 0.5;
  const auto rules = infer_rules(m, p);
  const auto cable = m.find("cable", "cable3");
  ASSERT_TRUE(cable.has_value());
  const double len = *m.attr_number(*cable, "length_m");
  m.set_attr(*cable, "length_m", len * 1.2);  // within 50% slack of max
  EXPECT_TRUE(check_against_rules(m, rules).empty());
}

}  // namespace
}  // namespace pn
