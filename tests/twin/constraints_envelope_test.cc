#include <gtest/gtest.h>

#include "physical/cabling.h"
#include "topology/generators/clos.h"
#include "topology/generators/jellyfish.h"
#include "twin/builder.h"
#include "twin/constraints.h"
#include "twin/envelope.h"
#include "twin/schema.h"

namespace pn {
namespace {

using namespace pn::literals;

struct design_rig {
  explicit design_rig(network_graph graph, floorplan_params fpp = [] {
    floorplan_params p;
    p.rows = 3;
    p.racks_per_row = 12;
    return p;
  }())
      : g(std::move(graph)),
        fp(fpp),
        pl(block_placement(g, fp).value()),
        plan(plan_cabling(g, pl, fp, cat, {}).value()) {}

  [[nodiscard]] physical_design design() const {
    return {&g, &pl, &fp, &plan, &cat};
  }

  network_graph g;
  catalog cat = catalog::standard();
  floorplan fp;
  placement pl;
  cabling_plan plan;
};

TEST(constraints, clean_clos_design_has_no_errors) {
  design_rig r(build_fat_tree(4, 100_gbps));
  const auto v = run_all_checks(r.design());
  EXPECT_EQ(count_errors(v), 0u)
      << (v.empty() ? "" : v[0].check + ": " + v[0].detail);
}

TEST(constraints, power_overload_detected) {
  design_rig r(build_fat_tree(4, 100_gbps), [] {
    floorplan_params p;
    p.rows = 3;
    p.racks_per_row = 12;
    p.rack_power_budget = watts{300.0};  // a single switch busts this
    return p;
  }());
  const auto v = run_all_checks(r.design());
  bool saw = false;
  for (const auto& cv : v) {
    if (cv.check == "rack_power" &&
        cv.severity == violation_severity::error) {
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(constraints, plenum_pressure_reported) {
  design_rig r(build_fat_tree(6, 100_gbps), [] {
    floorplan_params p;
    p.rows = 3;
    p.racks_per_row = 12;
    p.rack_plenum = square_millimeters{400.0};
    return p;
  }());
  const auto v = run_all_checks(r.design());
  bool saw = false;
  for (const auto& cv : v) {
    if (cv.check == "plenum") saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(constraints, parallel_links_sharing_trays_flagged_as_spof) {
  // Two racks, two parallel links between the same switches: both runs
  // must ride the same single tray path -> physical SPOF warning.
  network_graph g;
  g.add_node({"a", node_kind::tor, 8, 100_gbps, 2, 0, 0});
  g.add_node({"b", node_kind::tor, 8, 100_gbps, 2, 0, 1});
  g.add_edge(node_id{0}, node_id{1}, 100_gbps);
  g.add_edge(node_id{0}, node_id{1}, 100_gbps);

  floorplan_params fpp;
  fpp.rows = 1;
  fpp.racks_per_row = 4;
  floorplan fp(fpp);
  placement pl(2, fp);
  ASSERT_TRUE(pl.assign(node_id{0}, rack_id{0}, 5).is_ok());
  ASSERT_TRUE(pl.assign(node_id{1}, rack_id{3}, 5).is_ok());
  const catalog cat = catalog::standard();
  const auto plan = plan_cabling(g, pl, fp, cat, {});
  ASSERT_TRUE(plan.is_ok());
  const physical_design d{&g, &pl, &fp, &plan.value(), &cat};
  const auto v = run_all_checks(d);
  bool saw = false;
  for (const auto& cv : v) {
    if (cv.check == "path_diversity") saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(envelope, clos_design_fits_clos_automation) {
  design_rig r(build_fat_tree(4, 100_gbps));
  const auto findings =
      capability_envelope::clos_automation().check_design(r.g, r.plan);
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? ""
                           : findings[0].dimension + ": " +
                                 findings[0].detail);
}

TEST(envelope, jellyfish_is_out_of_envelope) {
  jellyfish_params p;
  p.switches = 32;
  p.radix = 12;
  p.hosts_per_switch = 6;
  p.seed = 1;
  design_rig r(build_jellyfish(p));
  const auto findings =
      capability_envelope::clos_automation().check_design(r.g, r.plan);
  bool family_flagged = false;
  for (const auto& f : findings) {
    if (f.dimension == "topology_family") family_flagged = true;
  }
  EXPECT_TRUE(family_flagged);
}

TEST(envelope, scalar_range_checks) {
  capability_envelope e;
  e.set_range("x", 1.0, 2.0);
  EXPECT_TRUE(e.check_scalar("x", 1.5).empty());
  EXPECT_EQ(e.check_scalar("x", 2.5).size(), 1u);
  EXPECT_EQ(e.check_scalar("x", 0.5).size(), 1u);
  // Unknown dimensions are unconstrained.
  EXPECT_TRUE(e.check_scalar("y", 999.0).empty());
}

TEST(envelope, category_checks) {
  capability_envelope e;
  e.allow_value("media", "DAC");
  EXPECT_TRUE(e.check_category("media", "DAC").empty());
  EXPECT_EQ(e.check_category("media", "AOC").size(), 1u);
}

TEST(design_summary, measures_the_design) {
  design_rig r(build_fat_tree(4, 100_gbps));
  const design_summary s = summarize_design(r.g, r.plan);
  EXPECT_EQ(s.distinct_radixes, 1);  // fat-tree: uniform radix k
  EXPECT_EQ(s.distinct_link_rates, 1);
  EXPECT_DOUBLE_EQ(s.max_switch_radix, 4.0);
  EXPECT_GT(s.max_cable_length_m, 0.0);
  EXPECT_TRUE(s.topology_families.contains("fat_tree"));
  EXPECT_FALSE(s.media.empty());
}

TEST(twin_builder, builds_schema_valid_twin) {
  design_rig r(build_fat_tree(4, 100_gbps));
  const twin_model m = build_network_twin(r.g, r.pl, r.fp, r.plan, r.cat);
  EXPECT_EQ(m.entities_of_kind("switch").size(), r.g.node_count());
  EXPECT_EQ(m.entities_of_kind("cable").size(), r.plan.runs.size());
  EXPECT_EQ(m.entities_of_kind("rack").size(), r.fp.rack_count());
  const auto v = twin_schema::network_schema().validate(m);
  EXPECT_TRUE(v.empty()) << (v.empty() ? ""
                                       : v[0].rule + " on " + v[0].subject +
                                             ": " + v[0].detail);
}

}  // namespace
}  // namespace pn
