#include "twin/diff.h"

#include <gtest/gtest.h>

#include "physical/cabling.h"
#include "physical/placement.h"
#include "topology/generators/clos.h"
#include "twin/builder.h"
#include "twin/schema.h"

namespace pn {
namespace {

using namespace pn::literals;

twin_model base_model() {
  twin_model m;
  const entity_id r = m.add_entity("rack", "r0");
  m.set_attr(r, "rack_units", std::int64_t{42});
  m.set_attr(r, "power_budget_w", 17000.0);
  const entity_id s = m.add_entity("switch", "sw0");
  m.set_attr(s, "radix", std::int64_t{32});
  m.set_attr(s, "port_rate_gbps", 100.0);
  m.set_attr(s, "rack_units", std::int64_t{1});
  m.set_attr(s, "power_w", 450.0);
  (void)m.add_relation("placed_in", s, r);
  return m;
}

TEST(diff, identical_models_diff_empty) {
  const twin_model a = base_model();
  const twin_model b = base_model();
  const twin_diff d = diff_twins(a, b);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_TRUE(diff_to_ops(a, b).empty());
}

TEST(diff, detects_all_delta_kinds) {
  const twin_model a = base_model();
  twin_model b = base_model();
  // Entity added.
  const entity_id sw1 = b.add_entity("switch", "sw1");
  b.set_attr(sw1, "radix", std::int64_t{32});
  b.set_attr(sw1, "port_rate_gbps", 100.0);
  b.set_attr(sw1, "rack_units", std::int64_t{1});
  b.set_attr(sw1, "power_w", 450.0);
  // Relation added.
  (void)b.add_relation("placed_in", sw1, *b.find("rack", "r0"));
  // Attribute changed (sw0 upgraded to 400G).
  b.set_attr(*b.find("switch", "sw0"), "port_rate_gbps", 400.0);

  const twin_diff d = diff_twins(a, b);
  ASSERT_EQ(d.added_entities.size(), 1u);
  EXPECT_EQ(d.added_entities[0], "switch/sw1");
  EXPECT_TRUE(d.removed_entities.empty());
  ASSERT_EQ(d.added_relations.size(), 1u);
  EXPECT_EQ(d.added_relations[0], "placed_in: switch/sw1 -> rack/r0");
  ASSERT_EQ(d.changed_attrs.size(), 1u);
  EXPECT_EQ(d.changed_attrs[0],
            "switch/sw0.port_rate_gbps: 100 -> 400");
}

TEST(diff, removal_direction) {
  twin_model a = base_model();
  const twin_model b = base_model();
  const entity_id extra = a.add_entity("switch", "old");
  (void)a.add_relation("placed_in", extra, *a.find("rack", "r0"));
  const twin_diff d = diff_twins(a, b);
  ASSERT_EQ(d.removed_entities.size(), 1u);
  EXPECT_EQ(d.removed_entities[0], "switch/old");
  ASSERT_EQ(d.removed_relations.size(), 1u);
}

TEST(diff, parallel_relation_multiplicity) {
  twin_model a = base_model();
  twin_model b = base_model();
  const auto cable_a = a.add_entity("cable", "c0");
  const auto cable_b = b.add_entity("cable", "c0");
  // a: one termination; b: three (a multiplicity delta of 2).
  (void)a.add_relation("terminates_on", cable_a, *a.find("switch", "sw0"));
  for (int i = 0; i < 3; ++i) {
    (void)b.add_relation("terminates_on", cable_b,
                         *b.find("switch", "sw0"));
  }
  const twin_diff d = diff_twins(a, b);
  ASSERT_EQ(d.added_relations.size(), 1u);
  EXPECT_NE(d.added_relations[0].find("x2"), std::string::npos);
}

TEST(diff_to_ops, replays_to_the_proposed_model) {
  const twin_model current = base_model();
  twin_model proposed = base_model();
  // A realistic change: add a switch, rewire, retire another.
  const entity_id sw1 = proposed.add_entity("switch", "sw1");
  proposed.set_attr(sw1, "radix", std::int64_t{64});
  proposed.set_attr(sw1, "port_rate_gbps", 400.0);
  proposed.set_attr(sw1, "rack_units", std::int64_t{2});
  proposed.set_attr(sw1, "power_w", 900.0);
  (void)proposed.add_relation("placed_in", sw1,
                              *proposed.find("rack", "r0"));
  // Retire sw0 entirely.
  const auto sw0 = *proposed.find("switch", "sw0");
  ASSERT_TRUE(proposed
                  .remove_relation("placed_in", sw0,
                                   *proposed.find("rack", "r0"))
                  .is_ok());
  ASSERT_TRUE(proposed.remove_entity(sw0).is_ok());

  const auto plan = diff_to_ops(current, proposed);
  const twin_schema schema = twin_schema::network_schema();
  dry_run_engine eng(current, &schema);
  const auto report = eng.run(plan);
  ASSERT_TRUE(report.ok) << (report.failures.empty()
                                 ? ""
                                 : report.failures[0].description + ": " +
                                       report.failures[0]
                                           .op_status.to_string());
  // The engine's world now diffs clean against the proposal.
  EXPECT_TRUE(diff_twins(eng.model(), proposed).empty());
}

TEST(diff_to_ops, safe_ordering_removes_relations_before_entities) {
  twin_model current = base_model();
  auto mk_cable = [](twin_model& m) {
    const auto c = m.add_entity("cable", "c0");
    m.set_attr(c, "rate_gbps", 100.0);
    m.set_attr(c, "length_m", 3.0);
    m.set_attr(c, "diameter_mm", 6.7);
    m.set_attr(c, "medium", std::string("DAC"));
    return c;
  };
  const auto cable = mk_cable(current);
  (void)current.add_relation("terminates_on", cable,
                             *current.find("switch", "sw0"));
  // The proposal drops sw0 entirely but keeps the (now unterminated)
  // cable: a fresh model without sw0.
  twin_model bad;
  const entity_id r = bad.add_entity("rack", "r0");
  bad.set_attr(r, "rack_units", std::int64_t{42});
  bad.set_attr(r, "power_budget_w", 17000.0);
  mk_cable(bad);
  const auto plan = diff_to_ops(current, bad);
  const twin_schema schema = twin_schema::network_schema();
  dry_run_engine eng(current, &schema);
  dry_run_options opt;
  opt.validate_each_step = false;
  const auto report = eng.run(plan, opt);
  // Removing sw0 works here because diff_to_ops removes its relations
  // first (they vanish from the proposal too) — so this plan actually
  // passes; the point is it passes *because* the ordering is safe.
  EXPECT_TRUE(report.ok);
  EXPECT_FALSE(eng.model().find("switch", "sw0").has_value());
}

TEST(diff_to_ops, full_fabric_expansion_round_trip) {
  // Diff two fabric twins (k=4 fat-tree vs the same plus a spare rack's
  // worth of attribute churn) and replay.
  const network_graph g = build_fat_tree(4, 100_gbps);
  floorplan_params fpp;
  fpp.rows = 2;
  fpp.racks_per_row = 8;
  floorplan fp(fpp);
  const auto pl = block_placement(g, fp);
  const catalog cat = catalog::standard();
  const auto plan = plan_cabling(g, pl.value(), fp, cat, {});
  const twin_model current =
      build_network_twin(g, pl.value(), fp, plan.value(), cat);

  twin_model proposed = current;
  for (entity_id sw : proposed.entities_of_kind("switch")) {
    proposed.set_attr(sw, "drained", false);  // new attribute everywhere
  }
  const auto ops = diff_to_ops(current, proposed);
  EXPECT_EQ(ops.size(), proposed.entities_of_kind("switch").size());
  const twin_schema schema = twin_schema::network_schema();
  dry_run_engine eng(current, &schema);
  dry_run_options opt;
  opt.validate_each_step = false;
  EXPECT_TRUE(eng.run(ops, opt).ok);
  EXPECT_TRUE(diff_twins(eng.model(), proposed).empty());
}

}  // namespace
}  // namespace pn
