#include "twin/views.h"

#include <gtest/gtest.h>

#include "physical/cabling.h"
#include "physical/placement.h"
#include "topology/generators/clos.h"
#include "twin/builder.h"
#include "twin/serialize.h"

namespace pn {
namespace {

using namespace pn::literals;

// A hand-built model: 4 switches in 2 pods, cables within and across.
twin_model pod_model() {
  twin_model m;
  auto mk_switch = [&](const std::string& name, std::int64_t pod,
                       double power) {
    const entity_id e = m.add_entity("switch", name);
    m.set_attr(e, "pod", pod);
    m.set_attr(e, "power_w", power);
    return e;
  };
  const entity_id a0 = mk_switch("a0", 0, 100.0);
  const entity_id a1 = mk_switch("a1", 0, 150.0);
  const entity_id b0 = mk_switch("b0", 1, 200.0);
  const entity_id b1 = mk_switch("b1", 1, 250.0);

  auto mk_cable = [&](const std::string& name, entity_id x, entity_id y) {
    const entity_id c = m.add_entity("cable", name);
    (void)m.add_relation("terminates_on", c, x);
    (void)m.add_relation("terminates_on", c, y);
  };
  mk_cable("intra_a", a0, a1);   // becomes pod-internal
  mk_cable("cross_1", a0, b0);   // becomes pod0 <-> pod1 (via cable)
  mk_cable("cross_2", a1, b1);
  return m;
}

TEST(roll_up, groups_and_sums) {
  const auto rolled = roll_up(pod_model(), {"switch", "pod", "pod",
                                            {"power_w"}});
  ASSERT_TRUE(rolled.is_ok());
  const twin_model& m = rolled.value().model;
  EXPECT_EQ(rolled.value().aggregates, 2u);
  const auto pod0 = m.find("pod", "pod0");
  const auto pod1 = m.find("pod", "pod1");
  ASSERT_TRUE(pod0.has_value() && pod1.has_value());
  EXPECT_EQ(m.attr_number(*pod0, "power_w"), 250.0);
  EXPECT_EQ(m.attr_number(*pod1, "power_w"), 450.0);
  EXPECT_EQ(m.attr_number(*pod0, "members"), 2.0);
  // Drill-down map.
  EXPECT_EQ(rolled.value().member_of.at("a0"), "pod0");
  EXPECT_EQ(rolled.value().member_of.at("b1"), "pod1");
}

TEST(roll_up, repoints_relations_and_keeps_passthrough) {
  const auto rolled = roll_up(pod_model(), {"switch", "pod", "pod",
                                            {"power_w"}});
  ASSERT_TRUE(rolled.is_ok());
  const twin_model& m = rolled.value().model;
  // Cables are pass-through entities, re-pointed at pods.
  EXPECT_EQ(m.entities_of_kind("cable").size(), 3u);
  const auto cross = m.find("cable", "cross_1");
  ASSERT_TRUE(cross.has_value());
  const auto ends = m.related(*cross, "terminates_on");
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_NE(m.entity(ends[0]).name, m.entity(ends[1]).name);
  // The intra-pod cable now has both ends on pod0 — a multigraph
  // parallel, not a dropped relation (the cable entity survives).
  const auto intra = m.find("cable", "intra_a");
  ASSERT_TRUE(intra.has_value());
  EXPECT_EQ(m.related(*intra, "terminates_on").size(), 2u);
}

TEST(roll_up, missing_group_attr_forms_singletons) {
  twin_model m;
  const entity_id e = m.add_entity("switch", "orphan");
  m.set_attr(e, "power_w", 10.0);
  const auto rolled = roll_up(m, {"switch", "pod", "pod", {"power_w"}});
  ASSERT_TRUE(rolled.is_ok());
  EXPECT_EQ(rolled.value().aggregates, 1u);
  EXPECT_TRUE(
      rolled.value().model.find("pod", "podsolo_orphan").has_value());
}

TEST(roll_up, kind_collision_rejected) {
  twin_model m;
  m.add_entity("pod", "pod_exists");
  m.add_entity("switch", "s");
  const auto rolled = roll_up(m, {"switch", "pod", "pod", {}});
  ASSERT_FALSE(rolled.is_ok());
  EXPECT_EQ(rolled.error().code(), status_code::invalid_argument);
}

TEST(roll_up, fabric_twin_rolls_to_rack_level) {
  // Roll a full fabric twin: switches grouped by their rack via the
  // placed_in relation is the natural rollup, but roll_up groups by
  // attribute — so group cables by medium as a synthetic check instead.
  const network_graph g = build_fat_tree(4, 100_gbps);
  floorplan_params fpp;
  fpp.rows = 2;
  fpp.racks_per_row = 8;
  floorplan fp(fpp);
  const auto pl = block_placement(g, fp);
  const catalog cat = catalog::standard();
  const auto plan = plan_cabling(g, pl.value(), fp, cat, {});
  const twin_model twin =
      build_network_twin(g, pl.value(), fp, plan.value(), cat);

  const auto rolled =
      roll_up(twin, {"cable", "medium", "cable_class", {"length_m"}});
  ASSERT_TRUE(rolled.is_ok());
  // One aggregate per medium in use; switches/racks pass through.
  EXPECT_GE(rolled.value().aggregates, 1u);
  EXPECT_EQ(rolled.value().model.entities_of_kind("switch").size(),
            g.node_count());
  // Rolled model serializes like any other.
  const auto text = serialize_twin(rolled.value().model);
  EXPECT_TRUE(parse_twin(text).is_ok());
}

TEST(roll_up, internal_relation_counts) {
  // Direct switch-to-switch relations inside a group become internal
  // counters on the aggregate.
  twin_model m;
  auto mk = [&](const std::string& name, std::int64_t pod) {
    const entity_id e = m.add_entity("switch", name);
    m.set_attr(e, "pod", pod);
    return e;
  };
  const entity_id a = mk("a", 0);
  const entity_id b = mk("b", 0);
  const entity_id c = mk("c", 1);
  (void)m.add_relation("peers", a, b);  // intra-pod
  (void)m.add_relation("peers", a, c);  // inter-pod
  const auto rolled = roll_up(m, {"switch", "pod", "pod", {}});
  ASSERT_TRUE(rolled.is_ok());
  const auto pod0 = rolled.value().model.find("pod", "pod0");
  ASSERT_TRUE(pod0.has_value());
  EXPECT_EQ(rolled.value().model.attr_number(*pod0, "internal_peers"),
            1.0);
  EXPECT_EQ(rolled.value().model.relations_of_kind("peers").size(), 1u);
}

}  // namespace
}  // namespace pn
