#include <gtest/gtest.h>

#include "twin/model.h"
#include "twin/schema.h"

namespace pn {
namespace {

TEST(twin_model, entities_and_lookup) {
  twin_model m;
  const entity_id r = m.add_entity("rack", "r00.00");
  const entity_id s = m.add_entity("switch", "tor0");
  EXPECT_TRUE(m.entity_alive(r));
  EXPECT_EQ(m.entity(s).kind, "switch");
  EXPECT_EQ(m.find("rack", "r00.00"), r);
  EXPECT_EQ(m.find("rack", "nope"), std::nullopt);
  EXPECT_EQ(m.entities_of_kind("switch").size(), 1u);
  EXPECT_EQ(m.live_entity_count(), 2u);
}

TEST(twin_model, attributes) {
  twin_model m;
  const entity_id s = m.add_entity("switch", "tor0");
  m.set_attr(s, "radix", std::int64_t{32});
  m.set_attr(s, "rate", 100.5);
  m.set_attr(s, "vendor", std::string("acme"));
  m.set_attr(s, "drained", false);
  EXPECT_EQ(m.attr_number(s, "radix"), 32.0);
  EXPECT_EQ(m.attr_number(s, "rate"), 100.5);
  EXPECT_EQ(m.attr_number(s, "vendor"), std::nullopt);  // not numeric
  EXPECT_EQ(m.attr(s, "missing"), std::nullopt);
  EXPECT_EQ(attr_to_string(*m.attr(s, "vendor")), "acme");
  EXPECT_EQ(attr_to_string(*m.attr(s, "drained")), "false");
}

TEST(twin_model, relations_and_queries) {
  twin_model m;
  const entity_id c = m.add_entity("cable", "c0");
  const entity_id a = m.add_entity("switch", "a");
  const entity_id b = m.add_entity("switch", "b");
  ASSERT_TRUE(m.add_relation("terminates_on", c, a).is_ok());
  ASSERT_TRUE(m.add_relation("terminates_on", c, b).is_ok());
  EXPECT_EQ(m.related(c, "terminates_on").size(), 2u);
  EXPECT_EQ(m.related_in(a, "terminates_on").size(), 1u);
  EXPECT_EQ(m.relations_of(a).size(), 1u);
  EXPECT_EQ(m.live_relation_count(), 2u);
}

TEST(twin_model, referential_integrity_blocks_removal) {
  twin_model m;
  const entity_id c = m.add_entity("cable", "c0");
  const entity_id a = m.add_entity("switch", "a");
  ASSERT_TRUE(m.add_relation("terminates_on", c, a).is_ok());
  // The switch cannot be removed while the cable still lands on it.
  const status s = m.remove_entity(a);
  EXPECT_EQ(s.code(), status_code::unavailable);
  EXPECT_TRUE(m.entity_alive(a));
  // Remove the relation, then removal succeeds.
  ASSERT_TRUE(m.remove_relation("terminates_on", c, a).is_ok());
  EXPECT_TRUE(m.remove_entity(a).is_ok());
  EXPECT_FALSE(m.entity_alive(a));
  EXPECT_EQ(m.find("switch", "a"), std::nullopt);
}

TEST(twin_model, double_removal_reports_unavailable) {
  twin_model m;
  const entity_id a = m.add_entity("switch", "a");
  ASSERT_TRUE(m.remove_entity(a).is_ok());
  EXPECT_EQ(m.remove_entity(a).code(), status_code::unavailable);
}

TEST(twin_model, relation_to_dead_entity_rejected) {
  twin_model m;
  const entity_id a = m.add_entity("switch", "a");
  const entity_id b = m.add_entity("switch", "b");
  ASSERT_TRUE(m.remove_entity(b).is_ok());
  EXPECT_EQ(m.add_relation("peers", a, b).code(), status_code::not_found);
}

TEST(twin_model, remove_missing_relation) {
  twin_model m;
  const entity_id a = m.add_entity("switch", "a");
  const entity_id b = m.add_entity("switch", "b");
  EXPECT_EQ(m.remove_relation("peers", a, b).code(),
            status_code::not_found);
}

class schema_test : public ::testing::Test {
 protected:
  twin_schema schema = twin_schema::network_schema();
};

TEST_F(schema_test, knows_network_kinds) {
  EXPECT_TRUE(schema.knows_entity_kind("rack"));
  EXPECT_TRUE(schema.knows_entity_kind("switch"));
  EXPECT_TRUE(schema.knows_entity_kind("cable"));
  EXPECT_TRUE(schema.knows_relation_kind("placed_in"));
  EXPECT_FALSE(schema.knows_entity_kind("antigravity_lift"));
}

TEST_F(schema_test, valid_model_passes) {
  twin_model m;
  const entity_id r = m.add_entity("rack", "r0");
  m.set_attr(r, "rack_units", std::int64_t{42});
  m.set_attr(r, "power_budget_w", 17000.0);
  const entity_id s = m.add_entity("switch", "sw0");
  m.set_attr(s, "radix", std::int64_t{32});
  m.set_attr(s, "port_rate_gbps", 100.0);
  m.set_attr(s, "rack_units", std::int64_t{1});
  m.set_attr(s, "power_w", 450.0);
  ASSERT_TRUE(m.add_relation("placed_in", s, r).is_ok());
  EXPECT_TRUE(schema.validate(m).empty());
}

TEST_F(schema_test, missing_required_attr_reported) {
  twin_model m;
  m.add_entity("rack", "r0");  // no attrs at all
  const auto v = schema.validate(m);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].rule, "missing_attr");
}

TEST_F(schema_test, type_mismatch_reported) {
  twin_model m;
  const entity_id r = m.add_entity("rack", "r0");
  m.set_attr(r, "rack_units", std::string("forty-two"));
  m.set_attr(r, "power_budget_w", 17000.0);
  const auto v = schema.validate(m);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].rule, "attr_type");
}

TEST_F(schema_test, out_of_range_attr_is_out_of_envelope) {
  // §5.2: a design that cannot be represented within the schema's ranges
  // is exactly the "out-of-envelope" signal.
  twin_model m;
  const entity_id s = m.add_entity("switch", "monster");
  m.set_attr(s, "radix", std::int64_t{1024});  // schema max 512
  m.set_attr(s, "port_rate_gbps", 100.0);
  m.set_attr(s, "rack_units", std::int64_t{1});
  m.set_attr(s, "power_w", 450.0);
  const auto v = schema.validate(m);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "attr_range");
  EXPECT_EQ(v[0].subject, "monster");
}

TEST_F(schema_test, unknown_kinds_reported) {
  twin_model m;
  m.add_entity("quantum_repeater", "q0");
  const entity_id a = m.add_entity("switch", "a");
  const entity_id b = m.add_entity("switch", "b");
  ASSERT_TRUE(m.add_relation("entangled_with", a, b).is_ok());
  const auto v = schema.validate(m);
  bool saw_entity = false, saw_relation = false;
  for (const auto& viol : v) {
    if (viol.rule == "unknown_entity_kind") saw_entity = true;
    if (viol.rule == "unknown_relation_kind") saw_relation = true;
  }
  EXPECT_TRUE(saw_entity);
  EXPECT_TRUE(saw_relation);
}

TEST_F(schema_test, wrong_relation_endpoints_reported) {
  twin_model m;
  const entity_id r = m.add_entity("rack", "r0");
  m.set_attr(r, "rack_units", std::int64_t{42});
  m.set_attr(r, "power_budget_w", 1000.0);
  const entity_id r2 = m.add_entity("rack", "r1");
  m.set_attr(r2, "rack_units", std::int64_t{42});
  m.set_attr(r2, "power_budget_w", 1000.0);
  // placed_in must be switch -> rack, not rack -> rack.
  ASSERT_TRUE(m.add_relation("placed_in", r, r2).is_ok());
  const auto v = schema.validate(m);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].rule, "relation_endpoints");
}

TEST_F(schema_test, cardinality_enforced) {
  twin_model m;
  auto mk_rack = [&](const std::string& name) {
    const entity_id r = m.add_entity("rack", name);
    m.set_attr(r, "rack_units", std::int64_t{42});
    m.set_attr(r, "power_budget_w", 1000.0);
    return r;
  };
  const entity_id s = m.add_entity("switch", "sw0");
  m.set_attr(s, "radix", std::int64_t{32});
  m.set_attr(s, "port_rate_gbps", 100.0);
  m.set_attr(s, "rack_units", std::int64_t{1});
  m.set_attr(s, "power_w", 450.0);
  // A switch can be placed in at most one rack.
  ASSERT_TRUE(m.add_relation("placed_in", s, mk_rack("r0")).is_ok());
  ASSERT_TRUE(m.add_relation("placed_in", s, mk_rack("r1")).is_ok());
  const auto v = schema.validate(m);
  bool saw = false;
  for (const auto& viol : v) {
    if (viol.rule == "cardinality" && viol.subject == "sw0") saw = true;
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace pn
