#include "twin/serialize.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "physical/cabling.h"
#include "topology/generators/clos.h"
#include "twin/builder.h"
#include "twin/schema.h"

namespace pn {
namespace {

using namespace pn::literals;

twin_model sample_model() {
  twin_model m;
  const entity_id r = m.add_entity("rack", "r00.00");
  m.set_attr(r, "rack_units", std::int64_t{42});
  m.set_attr(r, "power_budget_w", 17000.5);
  const entity_id s = m.add_entity("switch", "tor0");
  m.set_attr(s, "vendor", std::string("acme networks"));
  m.set_attr(s, "drained", false);
  (void)m.add_relation("placed_in", s, r);
  return m;
}

TEST(serialize, renders_all_record_types) {
  const std::string text = serialize_twin(sample_model());
  EXPECT_NE(text.find("entity rack r00.00"), std::string::npos);
  EXPECT_NE(text.find("attr rack r00.00 rack_units int 42"),
            std::string::npos);
  EXPECT_NE(text.find("attr switch tor0 vendor str acme networks"),
            std::string::npos);
  EXPECT_NE(text.find("attr switch tor0 drained bool false"),
            std::string::npos);
  EXPECT_NE(text.find("relation placed_in switch tor0 rack r00.00"),
            std::string::npos);
}

TEST(serialize, round_trip_preserves_everything) {
  const twin_model original = sample_model();
  const auto parsed = parse_twin(serialize_twin(original));
  ASSERT_TRUE(parsed.is_ok());
  const twin_model& m = parsed.value();
  EXPECT_EQ(m.live_entity_count(), original.live_entity_count());
  EXPECT_EQ(m.live_relation_count(), original.live_relation_count());
  const auto s = m.find("switch", "tor0");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(std::get<std::string>(*m.attr(*s, "vendor")), "acme networks");
  EXPECT_EQ(std::get<bool>(*m.attr(*s, "drained")), false);
  const auto r = m.find("rack", "r00.00");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(m.attr_number(*r, "power_budget_w"), 17000.5);
  EXPECT_EQ(m.related(*s, "placed_in").size(), 1u);
}

TEST(serialize, round_trip_is_a_fixed_point) {
  const std::string once = serialize_twin(sample_model());
  const auto parsed = parse_twin(once);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(serialize_twin(parsed.value()), once);
}

TEST(serialize, dead_entities_are_omitted) {
  twin_model m = sample_model();
  const auto s = m.find("switch", "tor0");
  ASSERT_TRUE(m.remove_relation("placed_in", *s, *m.find("rack", "r00.00"))
                  .is_ok());
  ASSERT_TRUE(m.remove_entity(*s).is_ok());
  const std::string text = serialize_twin(m);
  EXPECT_EQ(text.find("tor0"), std::string::npos);
}

TEST(parse, reports_line_numbers_on_errors) {
  const auto bad = parse_twin("entity rack r0\nfrobnicate x y\n");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.error().message().find("line 2"), std::string::npos);
}

TEST(parse, rejects_duplicates_and_dangling_references) {
  EXPECT_FALSE(parse_twin("entity rack r0\nentity rack r0\n").is_ok());
  EXPECT_FALSE(
      parse_twin("attr rack r0 rack_units int 42\n").is_ok());
  EXPECT_FALSE(
      parse_twin("entity rack r0\nrelation feeds power_feed f0 rack r0\n")
          .is_ok());
  EXPECT_FALSE(parse_twin("entity rack r0\nattr rack r0 u int forty\n")
                   .is_ok());
  EXPECT_FALSE(parse_twin("entity rack r0\nattr rack r0 u blob 1\n")
                   .is_ok());
}

TEST(parse, tolerates_comments_and_blank_lines) {
  const auto m = parse_twin("# a comment\n\nentity rack r0\n");
  ASSERT_TRUE(m.is_ok());
  EXPECT_TRUE(m.value().find("rack", "r0").has_value());
}

TEST(serialize, str_values_with_newlines_round_trip) {
  // A raw newline in a str value used to split the record across two
  // lines, corrupting the parse; it must be escaped on write and restored
  // on read.
  twin_model m;
  const entity_id s = m.add_entity("switch", "tor0");
  m.set_attr(s, "note", std::string("line one\nline two"));
  m.set_attr(s, "crlf", std::string("before\r\nafter"));
  m.set_attr(s, "slash", std::string("a\\b\\\\c"));
  m.set_attr(s, "empty", std::string());
  m.set_attr(s, "spacey", std::string("  padded  "));

  const std::string text = serialize_twin(m);
  // Every record stays on its own line: 1 entity + 5 attrs.
  EXPECT_EQ(split(text, '\n').size(), 7u);  // incl. empty tail after last \n

  const auto parsed = parse_twin(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.error().to_string();
  const auto e = parsed.value().find("switch", "tor0");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(std::get<std::string>(*parsed.value().attr(*e, "note")),
            "line one\nline two");
  EXPECT_EQ(std::get<std::string>(*parsed.value().attr(*e, "crlf")),
            "before\r\nafter");
  EXPECT_EQ(std::get<std::string>(*parsed.value().attr(*e, "slash")),
            "a\\b\\\\c");
  EXPECT_EQ(std::get<std::string>(*parsed.value().attr(*e, "empty")), "");
  EXPECT_EQ(std::get<std::string>(*parsed.value().attr(*e, "spacey")),
            "  padded  ");
  // Idempotence: re-serializing the parse reproduces the bytes.
  EXPECT_EQ(serialize_twin(parsed.value()), text);
}

TEST(parse, strips_crlf_line_endings) {
  // A twin file that passed through a Windows tool (or a git checkout
  // with autocrlf) must parse identically to its LF original.
  const std::string lf =
      "entity rack r0\n"
      "attr rack r0 vendor str acme networks\n"
      "attr rack r0 rack_units int 42\n";
  std::string crlf;
  for (const char c : lf) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  const auto a = parse_twin(lf);
  const auto b = parse_twin(crlf);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok()) << b.error().to_string();
  EXPECT_EQ(serialize_twin(a.value()), serialize_twin(b.value()));
  const auto e = b.value().find("rack", "r0");
  ASSERT_TRUE(e.has_value());
  // Without the \r strip this would have parsed as "acme networks\r".
  EXPECT_EQ(std::get<std::string>(*b.value().attr(*e, "vendor")),
            "acme networks");
}

TEST(serialize, full_fabric_twin_round_trips_and_validates) {
  const network_graph g = build_fat_tree(4, 100_gbps);
  floorplan_params fpp;
  fpp.rows = 2;
  fpp.racks_per_row = 8;
  floorplan fp(fpp);
  const auto pl = block_placement(g, fp);
  ASSERT_TRUE(pl.is_ok());
  const catalog cat = catalog::standard();
  const auto plan = plan_cabling(g, pl.value(), fp, cat, {});
  ASSERT_TRUE(plan.is_ok());
  const twin_model m =
      build_network_twin(g, pl.value(), fp, plan.value(), cat);

  const auto back = parse_twin(serialize_twin(m));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().live_entity_count(), m.live_entity_count());
  EXPECT_EQ(back.value().live_relation_count(), m.live_relation_count());
  EXPECT_TRUE(twin_schema::network_schema().validate(back.value()).empty());
}

}  // namespace
}  // namespace pn
