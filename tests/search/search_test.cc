// The search subsystem's suite: space parse/serialize fixed point,
// candidate building against the registry, Pareto dominance (incremental
// front vs the O(n²) reference oracle), engine determinism across --jobs,
// checkpoint/resume byte-identity for both strategies, and the local
// vs --via-serve differential against a real in-process server.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/sweep.h"
#include "search/backend.h"
#include "search/engine.h"
#include "search/pareto.h"
#include "search/space.h"
#include "service/server.h"
#include "topology/generators/families.h"
#include "twin/design_codec.h"
#include "twin/serialize.h"

namespace pn {
namespace {

// A small grid (8 jellyfish + 2 fat-tree + 2 leaf-spine candidates at
// tiny sizes) that still exercises multiple families, a categorical
// dimension, constraints, and an infeasible corner.
constexpr const char* kSpaceText = R"(physnet-search-space v1
name unit
seed 11
option repair off
constraint min_hosts 24
family jellyfish
dim switches range 8 12 4
dim radix choice 12
dim strategy choice block random
end
family fat_tree
dim k range 4 6 2
end
family leaf_spine
dim leaves range 4 6 2
end
)";

search_space parse_or_die(const std::string& text) {
  auto s = parse_space(text);
  EXPECT_TRUE(s.is_ok()) << (s.is_ok() ? "" : s.error().to_string());
  return std::move(s).value();
}

TEST(SearchSpace, SerializeParseFixedPoint) {
  const search_space s = parse_or_die(kSpaceText);
  const std::string once = serialize_space(s);
  const search_space again = parse_or_die(once);
  EXPECT_EQ(once, serialize_space(again));
  EXPECT_EQ(again.name, "unit");
  EXPECT_EQ(again.seed, 11u);
  EXPECT_FALSE(again.repair);
  EXPECT_TRUE(again.throughput);
  ASSERT_EQ(again.constraints.size(), 1u);
  EXPECT_EQ(again.constraints[0].kind, constraint_kind::min_hosts);
  EXPECT_EQ(again.constraints[0].bound, 24.0);
  ASSERT_EQ(again.families.size(), 3u);
  EXPECT_EQ(again.families[0].dims.size(), 3u);
}

TEST(SearchSpace, GridSizeAndEnumeration) {
  const search_space s = parse_or_die(kSpaceText);
  EXPECT_EQ(s.grid_size(), 2u * 1u * 2u + 2u + 2u);
  const auto grid = enumerate_grid(s);
  ASSERT_EQ(grid.size(), s.grid_size());
  // Later dimensions vary fastest; families in file order.
  EXPECT_EQ(candidate_label(s, grid[0]),
            "jellyfish/switches=8/radix=12/strategy=block");
  EXPECT_EQ(candidate_label(s, grid[1]),
            "jellyfish/switches=8/radix=12/strategy=random");
  EXPECT_EQ(candidate_label(s, grid[2]),
            "jellyfish/switches=12/radix=12/strategy=block");
  EXPECT_EQ(candidate_label(s, grid[4]), "fat_tree/k=4");
  EXPECT_EQ(candidate_label(s, grid[7]), "leaf_spine/leaves=6");
  EXPECT_EQ(candidate_strategy(s, grid[1]), "random");
  EXPECT_EQ(candidate_strategy(s, grid[4]), "block");
}

TEST(SearchSpace, DimensionValues) {
  search_dimension d;
  d.kind = dim_kind::int_range;
  d.lo = 24;
  d.hi = 48;
  d.step = 8;
  ASSERT_EQ(d.value_count(), 4u);
  EXPECT_EQ(d.int_value(0), 24);
  EXPECT_EQ(d.int_value(3), 48);
  EXPECT_EQ(d.value_token(1), "32");
}

TEST(SearchSpace, ParseErrorsNameTheLine) {
  const auto missing_header = parse_space("name x\n");
  ASSERT_FALSE(missing_header.is_ok());
  EXPECT_NE(missing_header.error().message().find("line 1"),
            std::string::npos);

  const auto bad_dim = parse_space(
      "physnet-search-space v1\nfamily fat_tree\ndim nope range 1 2 1\n");
  ASSERT_FALSE(bad_dim.is_ok());
  EXPECT_NE(bad_dim.error().message().find("line 3"), std::string::npos);
  EXPECT_NE(bad_dim.error().message().find("unknown dimension"),
            std::string::npos);

  const auto unclosed = parse_space(
      "physnet-search-space v1\nfamily fat_tree\ndim k range 4 6 2\n");
  ASSERT_FALSE(unclosed.is_ok());
  EXPECT_NE(unclosed.error().message().find("not closed"),
            std::string::npos);

  const auto no_main = parse_space(
      "physnet-search-space v1\nfamily fat_tree\n"
      "dim strategy choice block\nend\n");
  ASSERT_FALSE(no_main.is_ok());
  EXPECT_NE(no_main.error().message().find("needs dimension k"),
            std::string::npos);

  const auto bad_family = parse_space(
      "physnet-search-space v1\nfamily moebius\nend\n");
  ASSERT_FALSE(bad_family.is_ok());
  EXPECT_NE(bad_family.error().message().find("unknown family"),
            std::string::npos);

  const auto bad_step = parse_space(
      "physnet-search-space v1\nfamily fat_tree\ndim k range 6 4 2\nend\n");
  ASSERT_FALSE(bad_step.is_ok());

  const auto bad_strategy = parse_space(
      "physnet-search-space v1\nfamily fat_tree\ndim k range 4 6 2\n"
      "dim strategy choice sideways\nend\n");
  ASSERT_FALSE(bad_strategy.is_ok());
  EXPECT_NE(bad_strategy.error().message().find("placement strategy"),
            std::string::npos);
}

TEST(SearchSpace, CrlfAndCommentsTolerated) {
  const std::string crlf =
      "# leading comment\r\nphysnet-search-space v1\r\nseed 3\r\n"
      "family fat_tree\r\ndim k range 4 6 2\r\nend\r\n";
  const search_space s = parse_or_die(crlf);
  EXPECT_EQ(s.seed, 3u);
}

TEST(SearchSpace, ConstraintKinds) {
  EXPECT_EQ(constraint_kind_from_name("min_hosts"),
            constraint_kind::min_hosts);
  EXPECT_EQ(constraint_kind_from_name("max_time_to_deploy_h"),
            constraint_kind::max_time_to_deploy_h);
  EXPECT_FALSE(constraint_kind_from_name("min_vibes").has_value());

  deployability_report r;
  r.hosts = 100;
  r.bisection_gbps_per_host = 3.0;
  search_constraint c{constraint_kind::min_hosts, 128.0};
  EXPECT_FALSE(c.satisfied_by(r));
  c.bound = 100.0;
  EXPECT_TRUE(c.satisfied_by(r));
  c = {constraint_kind::min_bisection_gbps_per_host, 4.0};
  EXPECT_FALSE(c.satisfied_by(r));
}

TEST(SearchSpace, BuildCandidateMatchesRegistryDefaults) {
  // A block naming only the main dimension must build exactly the graph
  // build_family builds — byte-equal as twins.
  const search_space s = parse_or_die(
      "physnet-search-space v1\nseed 5\n"
      "family jellyfish\ndim switches range 16 16 1\nend\n"
      "family fat_tree\ndim k range 4 4 1\nend\n"
      "family leaf_spine\ndim leaves range 6 6 1\nend\n");
  const auto grid = enumerate_grid(s);
  const int sizes[] = {16, 4, 6};
  for (std::size_t i = 0; i < grid.size(); ++i) {
    auto mine = build_candidate(s, grid[i], s.seed);
    ASSERT_TRUE(mine.is_ok());
    auto registry =
        build_family(s.families[i].family, sizes[i], s.seed);
    ASSERT_TRUE(registry.is_ok());
    EXPECT_EQ(serialize_twin(design_to_twin(mine.value())),
              serialize_twin(design_to_twin(registry.value())))
        << s.families[i].family;
  }
}

TEST(SearchSpace, BuildCandidateStructuredFailures) {
  const search_space odd_k = parse_or_die(
      "physnet-search-space v1\nfamily fat_tree\ndim k choice 5\nend\n");
  auto g = build_candidate(odd_k, enumerate_grid(odd_k)[0], 1);
  ASSERT_FALSE(g.is_ok());
  EXPECT_EQ(g.error().code(), status_code::invalid_argument);

  const search_space thin = parse_or_die(
      "physnet-search-space v1\nfamily jellyfish\n"
      "dim switches choice 16\ndim radix choice 9\n"
      "dim hosts_per_switch choice 8\nend\n");
  auto thin_g = build_candidate(thin, enumerate_grid(thin)[0], 1);
  ASSERT_FALSE(thin_g.is_ok());
  EXPECT_NE(thin_g.error().message().find("radix"), std::string::npos);

  // Inter-switch degree >= switch count would PN_CHECK-abort inside the
  // generator; the search must turn it into a structured failure.
  const search_space dense = parse_or_die(
      "physnet-search-space v1\nfamily jellyfish\n"
      "dim switches choice 8\nend\n");
  auto dense_g = build_candidate(dense, enumerate_grid(dense)[0], 1);
  ASSERT_FALSE(dense_g.is_ok());
  EXPECT_NE(dense_g.error().message().find("degree"), std::string::npos);
}

TEST(SearchSpace, RewiresEstimate) {
  const search_space s = parse_or_die(kSpaceText);
  const auto grid = enumerate_grid(s);
  // jellyfish radix 12, default hosts_per_switch 8: degree 4 -> 2.0.
  EXPECT_EQ(expansion_rewires_estimate(s, grid[0]), 2.0);
  EXPECT_EQ(expansion_rewires_estimate(s, grid[4]), 0.0);  // fat_tree
  EXPECT_EQ(expansion_rewires_estimate(s, grid[6]), 0.0);  // leaf_spine
}

TEST(Pareto, DominanceRules) {
  const pareto_objectives base{100.0, 10.0, 1.0, 4.0};
  pareto_objectives better = base;
  better.cost_usd = 90.0;
  EXPECT_TRUE(dominates(better, base));
  EXPECT_FALSE(dominates(base, better));
  // Equal on every objective: neither dominates.
  EXPECT_FALSE(dominates(base, base));
  // Trades: cheaper but less bisection — incomparable.
  pareto_objectives trade = base;
  trade.cost_usd = 50.0;
  trade.bisection = 2.0;
  EXPECT_FALSE(dominates(trade, base));
  EXPECT_FALSE(dominates(base, trade));
  // Bisection is maximized.
  pareto_objectives fat = base;
  fat.bisection = 8.0;
  EXPECT_TRUE(dominates(fat, base));
}

TEST(Pareto, IncrementalMatchesReferenceOracle) {
  rng r(99);
  std::vector<pareto_entry> population;
  for (std::size_t i = 0; i < 200; ++i) {
    pareto_objectives o;
    o.cost_usd = static_cast<double>(r.next_index(40));
    o.time_h = static_cast<double>(r.next_index(40));
    o.rewires = static_cast<double>(r.next_index(4));
    o.bisection = static_cast<double>(r.next_index(40));
    population.push_back(pareto_entry{i, o});
  }
  pareto_front front;
  for (const pareto_entry& e : population) front.insert(e.ordinal, e.obj);
  std::vector<std::size_t> incremental;
  for (const pareto_entry& e : front.entries()) {
    incremental.push_back(e.ordinal);
  }
  std::sort(incremental.begin(), incremental.end());
  std::vector<std::size_t> reference = reference_front(population);
  std::sort(reference.begin(), reference.end());
  EXPECT_EQ(incremental, reference);
}

TEST(Pareto, TiedEntriesBothSurvive) {
  pareto_front front;
  EXPECT_TRUE(front.insert(0, pareto_objectives{10, 1, 0, 4}));
  EXPECT_TRUE(front.insert(1, pareto_objectives{10, 1, 0, 4}));
  EXPECT_EQ(front.entries().size(), 2u);
  // A dominating insert evicts both.
  EXPECT_TRUE(front.insert(2, pareto_objectives{9, 1, 0, 4}));
  ASSERT_EQ(front.entries().size(), 1u);
  EXPECT_EQ(front.entries()[0].ordinal, 2u);
}

search_results run_or_die(const search_space& space, search_backend& backend,
                          const search_run_options& opt) {
  auto res = run_search(space, backend, opt);
  EXPECT_TRUE(res.is_ok()) << (res.is_ok() ? "" : res.error().to_string());
  return std::move(res).value();
}

TEST(SearchEngine, GridJobsByteIdentical) {
  const search_space s = parse_or_die(kSpaceText);
  search_run_options opt;
  local_search_backend serial{local_backend_options{}};
  const search_results a = run_or_die(s, serial, opt);

  local_backend_options par;
  par.jobs = 4;
  local_search_backend parallel{par};
  const search_results b = run_or_die(s, parallel, opt);

  EXPECT_EQ(search_trace_csv(a), search_trace_csv(b));
  EXPECT_EQ(search_front_csv(a), search_front_csv(b));
  EXPECT_EQ(a.records.size(), s.grid_size());
  EXPECT_GE(a.front.size(), 2u);
}

TEST(SearchEngine, LocalJobsByteIdentical) {
  const search_space s = parse_or_die(kSpaceText);
  search_run_options opt;
  opt.strategy = search_strategy::local;
  opt.local.restarts = 2;
  local_search_backend serial{local_backend_options{}};
  const search_results a = run_or_die(s, serial, opt);

  local_backend_options par;
  par.jobs = 4;
  local_search_backend parallel{par};
  const search_results b = run_or_die(s, parallel, opt);

  EXPECT_EQ(search_trace_csv(a), search_trace_csv(b));
  EXPECT_EQ(search_front_csv(a), search_front_csv(b));
  // The memo keeps re-proposed candidates to one record each.
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].ordinal, i);
    for (std::size_t j = i + 1; j < a.records.size(); ++j) {
      EXPECT_NE(a.records[i].label, a.records[j].label);
    }
  }
}

TEST(SearchEngine, InfeasibleAndFailedStayOffFront) {
  // fat_tree k=4 (16 hosts) violates min_hosts 24; k=5 fails to build.
  const search_space s = parse_or_die(
      "physnet-search-space v1\nconstraint min_hosts 24\n"
      "family fat_tree\ndim k choice 4 5 6\nend\n");
  local_search_backend backend{local_backend_options{}};
  const search_results res = run_or_die(s, backend, search_run_options{});
  ASSERT_EQ(res.records.size(), 3u);
  EXPECT_EQ(res.records[0].st, search_record::state::ok);
  EXPECT_FALSE(res.records[0].feasible);
  EXPECT_EQ(res.records[1].st, search_record::state::failed);
  EXPECT_EQ(res.records[2].st, search_record::state::ok);
  EXPECT_TRUE(res.records[2].feasible);
  ASSERT_EQ(res.front.size(), 1u);
  EXPECT_EQ(res.front[0], 2u);
  // The trace shows all three; the front CSV only the survivor.
  EXPECT_NE(search_trace_csv(res).find("failed"), std::string::npos);
  EXPECT_EQ(search_front_csv(res).find("failed"), std::string::npos);
}

class checkpoint_cleanup {
 public:
  explicit checkpoint_cleanup(std::string path) : path_(std::move(path)) {
    ::unlink(path_.c_str());
  }
  ~checkpoint_cleanup() { ::unlink(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string unique_tmp(const char* stem) {
  static std::atomic<int> counter{0};
  return std::string("/tmp/pn_search_test_") + stem + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

TEST(SearchEngine, GridResumeByteIdentical) {
  const search_space s = parse_or_die(kSpaceText);
  local_search_backend plain{local_backend_options{}};
  const search_results full = run_or_die(s, plain, search_run_options{});

  checkpoint_cleanup ckpt(unique_tmp("grid"));
  // Interrupted run: cancel fires after 4 completions.
  {
    local_backend_options lopt;
    lopt.cancel_after = 4;
    local_search_backend backend{lopt};
    search_run_options opt;
    opt.checkpoint_path = ckpt.path();
    opt.cancel = lopt.cancel;
    const search_results partial = run_or_die(s, backend, opt);
    EXPECT_TRUE(partial.cancelled);
  }
  auto loaded = load_sweep_checkpoint(ckpt.path());
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().entries.size(), 4u);

  local_search_backend backend{local_backend_options{}};
  search_run_options opt;
  opt.resume = &loaded.value();
  opt.checkpoint_path = ckpt.path();
  const search_results resumed = run_or_die(s, backend, opt);
  EXPECT_EQ(resumed.restored, 4u);
  EXPECT_FALSE(resumed.cancelled);
  EXPECT_EQ(search_trace_csv(resumed), search_trace_csv(full));
  EXPECT_EQ(search_front_csv(resumed), search_front_csv(full));
}

TEST(SearchEngine, LocalResumeByteIdentical) {
  const search_space s = parse_or_die(kSpaceText);
  search_run_options base;
  base.strategy = search_strategy::local;
  base.local.restarts = 2;
  local_search_backend plain{local_backend_options{}};
  const search_results full = run_or_die(s, plain, base);

  checkpoint_cleanup ckpt(unique_tmp("local"));
  {
    local_backend_options lopt;
    lopt.cancel_after = 3;
    local_search_backend backend{lopt};
    search_run_options opt = base;
    opt.checkpoint_path = ckpt.path();
    opt.cancel = lopt.cancel;
    const search_results partial = run_or_die(s, backend, opt);
    EXPECT_TRUE(partial.cancelled);
  }
  auto loaded = load_sweep_checkpoint(ckpt.path());
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().point_count, 0u);  // open-ended trajectory

  local_search_backend backend{local_backend_options{}};
  search_run_options opt = base;
  opt.resume = &loaded.value();
  opt.checkpoint_path = ckpt.path();
  const search_results resumed = run_or_die(s, backend, opt);
  EXPECT_GE(resumed.restored, 3u);
  EXPECT_EQ(search_trace_csv(resumed), search_trace_csv(full));
  EXPECT_EQ(search_front_csv(resumed), search_front_csv(full));
}

TEST(SearchEngine, ForeignCheckpointRejected) {
  const search_space s = parse_or_die(kSpaceText);
  sweep_checkpoint foreign;
  foreign.base_seed = s.seed + 1;
  foreign.point_count = s.grid_size();
  local_search_backend backend{local_backend_options{}};
  search_run_options opt;
  opt.resume = &foreign;
  auto res = run_search(s, backend, opt);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.error().code(), status_code::invalid_argument);

  // Right seed, tampered per-point seed.
  foreign.base_seed = s.seed;
  sweep_checkpoint_entry e;
  e.point_index = 0;
  e.seed = 1234;  // != sweep_point_seed(s.seed, 0)
  e.ok = false;
  e.label = "jellyfish/switches=8/radix=12/strategy=block";
  foreign.entries[0] = e;
  auto res2 = run_search(s, backend, opt);
  ASSERT_FALSE(res2.is_ok());
  EXPECT_NE(res2.error().message().find("foreign"), std::string::npos);
}

// --- local vs serve differential ---------------------------------------

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/pn_search_srv_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

class server_fixture {
 public:
  server_fixture() {
    server_config cfg;
    spec_ = "unix:" + unique_socket_path();
    cfg.listen = spec_;
    // Must cover the widest backend connection count below: handlers are
    // thread-per-connection, and a search backend keeps every channel
    // open for the whole run.
    cfg.conn_threads = 4;
    server_ = std::make_unique<eval_server>(std::move(cfg));
    bind_status_ = server_->bind();
    if (bind_status_.is_ok()) {
      loop_ = std::make_unique<thread_pool>(1);
      loop_->submit([this] { serve_status_ = server_->serve(cancel_); });
    }
  }
  ~server_fixture() {
    if (loop_) {
      cancel_.request_cancel();
      loop_->wait_idle();
      loop_.reset();
    }
  }

  [[nodiscard]] const status& bind_status() const { return bind_status_; }
  [[nodiscard]] const std::string& spec() const { return spec_; }

 private:
  std::string spec_;
  std::unique_ptr<eval_server> server_;
  std::unique_ptr<thread_pool> loop_;
  cancel_token cancel_;
  status bind_status_;
  status serve_status_;
};

TEST(SearchServe, ViaServeByteIdenticalToLocal) {
  const search_space s = parse_or_die(kSpaceText);
  local_search_backend local{local_backend_options{}};
  const search_results want = run_or_die(s, local, search_run_options{});

  server_fixture srv;
  ASSERT_TRUE(srv.bind_status().is_ok()) << srv.bind_status().to_string();
  serve_backend_options sopt;
  sopt.endpoint = srv.spec();
  sopt.connections = 3;
  auto backend = serve_search_backend::connect(std::move(sopt));
  ASSERT_TRUE(backend.is_ok()) << backend.error().to_string();

  const search_results got =
      run_or_die(s, *backend.value(), search_run_options{});
  EXPECT_EQ(search_trace_csv(got), search_trace_csv(want));
  EXPECT_EQ(search_front_csv(got), search_front_csv(want));
}

TEST(SearchServe, LocalStrategyViaServeByteIdentical) {
  const search_space s = parse_or_die(kSpaceText);
  search_run_options opt;
  opt.strategy = search_strategy::local;
  opt.local.restarts = 2;
  local_search_backend local{local_backend_options{}};
  const search_results want = run_or_die(s, local, opt);

  server_fixture srv;
  ASSERT_TRUE(srv.bind_status().is_ok()) << srv.bind_status().to_string();
  serve_backend_options sopt;
  sopt.endpoint = srv.spec();
  auto backend = serve_search_backend::connect(std::move(sopt));
  ASSERT_TRUE(backend.is_ok()) << backend.error().to_string();

  const search_results got = run_or_die(s, *backend.value(), opt);
  EXPECT_EQ(search_trace_csv(got), search_trace_csv(want));
  EXPECT_EQ(search_front_csv(got), search_front_csv(want));
}

}  // namespace
}  // namespace pn
